"""Tests for the extension features: bipolar ops, P2LSG, SCRIMP comparison."""

import numpy as np
import pytest

from repro.analysis.experiments import write_based_sng_comparison
from repro.core import ops
from repro.core.bitstream import Bitstream
from repro.core.encoding import bipolar_to_prob, prob_to_bipolar
from repro.core.rng import P2lsgRng
from repro.core.sng import ComparatorSng


class TestBipolarMultiplication:
    def test_xnor_multiplies_bipolar_values(self):
        # x = +0.5, y = -0.5 in bipolar -> product -0.25.
        px = float(bipolar_to_prob(0.5))
        py = float(bipolar_to_prob(-0.5))
        sng = ComparatorSng()
        a, b = sng.generate_pair(px, py, 32_768, correlated=False)
        out = ops.mul_xnor(a, b)
        assert float(prob_to_bipolar(float(out.value()))) == pytest.approx(
            -0.25, abs=0.03)

    def test_xnor_identity_with_ones(self):
        s = Bitstream.bernoulli(0.7, 4096, rng=0)
        ones = Bitstream.ones(4096)   # bipolar +1
        out = ops.mul_xnor(s, ones)
        assert np.array_equal(out.bits, s.bits)

    def test_xnor_negation_with_zeros(self):
        s = Bitstream.bernoulli(0.7, 4096, rng=0)
        zeros = Bitstream.zeros(4096)  # bipolar -1
        out = ops.mul_xnor(s, zeros)
        assert np.array_equal(out.bits, (~s).bits)


class TestP2lsg:
    def test_low_discrepancy(self):
        vals = P2lsgRng(8).integers(256)
        assert len(set(int(v) for v in vals)) == 256

    def test_offsets_differ(self):
        a = P2lsgRng(8, offset=0).integers(64)
        b = P2lsgRng(8, offset=0x5A).integers(64)
        assert not np.array_equal(a, b)
        assert len(set(int(v) for v in b)) == 64

    def test_reset(self):
        r = P2lsgRng(8, offset=3)
        first = r.integers(16)
        r.reset()
        assert np.array_equal(r.integers(16), first)

    def test_sng_accuracy_comparable_to_sobol(self):
        from repro.core.accuracy import sng_mse
        from repro.core.rng import SobolRng
        p2 = sng_mse(ComparatorSng(P2lsgRng(8)), 256, samples=4_000, seed=0)
        so = sng_mse(ComparatorSng(SobolRng(8)), 256, samples=4_000, seed=0)
        assert p2 < 3 * so + 1e-3


class TestWriteBasedComparison:
    def test_endurance_ordering(self):
        result = write_based_sng_comparison()
        imsng = result["IMSNG-opt (read-based)"]
        scrimp = result["SCRIMP-style (per 8-bit operand)"]
        assert imsng["cell_writes"] < scrimp["cell_writes"]
        assert imsng["latency_ns"] < scrimp["latency_ns"]

    def test_fields_present(self):
        result = write_based_sng_comparison(length=128)
        for row in result.values():
            assert set(row) == {"latency_ns", "energy_nj", "cell_writes"}
            assert all(v >= 0 for v in row.values())
