"""Sparse fault-mask sampling: scatter primitive, statistical conformance
against the dense oracle, faulty-mode golden values, executor fixes.

Contract under test (see :mod:`repro.imsc.engine`):

* ``fault_sampling='dense'`` stays the bit-exact oracle — its seeded
  faulty filter MSEs are pinned here per backend (the faulty ``run_app``
  quality values are pinned in ``tests/test_backend_equivalence.py``);
* ``fault_sampling='sparse'`` is *statistically* conformant: per-gate flip
  rates match in mean and variance, and seeded faulty-app quality agrees
  within a pinned tolerance band — but the RNG draw sequence differs, so
  no bit-identity is promised.
"""

import numpy as np
import pytest

from repro.apps import run_app
from repro.apps.executor import run_tiled
from repro.apps.filters import (
    contrast_stretch_float,
    contrast_stretch_inputs,
    contrast_stretch_sc,
    gamma_correct_float,
    gamma_correct_sc,
    mean_filter_float,
    mean_filter_sc,
    roberts_cross_float,
    roberts_cross_sc,
)
from repro.apps.images import natural_scene
from repro.core.backend import PackedBackend, use_backend
from repro.core.streambatch import StreamBatch
from repro.imsc.engine import EngineFactory, InMemorySCEngine
from repro.reram.faults import DEFAULT_FAULT_RATES, GateFaultRates

BACKENDS = ("unpacked", "packed")
LENGTHS = (1, 7, 64, 127, 1000)
BATCH_SHAPES = ((), (3,), (2, 5))


# ----------------------------------------------------------------------
# StreamBatch.flip_at / backend scatter_flip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("batch", BATCH_SHAPES)
class TestFlipAt:
    def test_matches_dense_mask(self, name, length, batch):
        rng = np.random.default_rng(31)
        bits = rng.integers(0, 2, size=batch + (length,), dtype=np.uint8)
        sb = StreamBatch.from_bits(bits, name)
        n = int(np.prod(sb.shape))
        sites = rng.choice(n, size=min(n, 17), replace=False)
        mask = np.zeros(n, dtype=np.uint8)
        mask[sites] = 1
        got = sb.flip_at(sites).bits
        np.testing.assert_array_equal(got, bits ^ mask.reshape(sb.shape))
        # The source payload is never mutated.
        np.testing.assert_array_equal(sb.bits, bits)

    def test_duplicates_cancel(self, name, length, batch):
        rng = np.random.default_rng(32)
        bits = rng.integers(0, 2, size=batch + (length,), dtype=np.uint8)
        sb = StreamBatch.from_bits(bits, name)
        n = int(np.prod(sb.shape))
        sites = rng.integers(0, n, size=9)
        twice = np.concatenate([sites, sites])
        np.testing.assert_array_equal(sb.flip_at(twice).bits, bits)

    def test_empty_and_bounds(self, name, length, batch):
        bits = np.zeros(batch + (length,), dtype=np.uint8)
        sb = StreamBatch.from_bits(bits, name)
        assert sb.flip_at(np.empty(0, dtype=np.int64)) is sb
        n = int(np.prod(sb.shape))
        with pytest.raises(IndexError, match="flip sites"):
            sb.flip_at(np.array([n]))
        with pytest.raises(IndexError, match="flip sites"):
            sb.flip_at(np.array([-1]))


def test_packed_flip_at_keeps_canonical_tail():
    """Scattered flips near the stream end must not touch tail-word bits."""
    sb = StreamBatch.zeros((2,), 70, "packed")
    flipped = sb.flip_at(np.array([69, 70 + 69]))  # last valid bit per row
    np.testing.assert_array_equal(flipped.popcount(), [1, 1])
    # NOT-ing twice exposes any tail contamination as extra popcount.
    assert int((~(~flipped.to_bitstream())).popcount().sum()) == 2


# ----------------------------------------------------------------------
# Engine validation
# ----------------------------------------------------------------------
class TestFaultSamplingValidation:
    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="fault_sampling"):
            InMemorySCEngine(fault_sampling="bogus")

    def test_sparse_requires_word_domain(self):
        with pytest.raises(ValueError, match="fault_domain='word'"):
            InMemorySCEngine(fault_sampling="sparse", fault_domain="bit")

    def test_engine_factory_validates_eagerly_and_rejects_rng(self):
        with pytest.raises(ValueError, match="fault_sampling"):
            EngineFactory(fault_sampling="bogus")
        with pytest.raises(ValueError, match="rng"):
            EngineFactory(rng=3)
        factory = EngineFactory(fault_rates=DEFAULT_FAULT_RATES,
                                fault_sampling="sparse")
        eng = factory(np.random.SeedSequence(5))
        assert eng.fault_sampling == "sparse"
        assert eng.fault_rates is DEFAULT_FAULT_RATES


# ----------------------------------------------------------------------
# Statistical conformance: sparse vs dense flip rates
# ----------------------------------------------------------------------
class TestFlipRateConformance:
    """Sparse and dense sampling agree on flip-count mean and variance."""

    @pytest.mark.parametrize("p", (1e-3, 5e-3, 0.02))
    def test_mean_and_variance_match_bernoulli(self, p):
        rates = GateFaultRates(and2=p, or2=p, xor2=p, maj3=p, read=p)
        batch, length, trials = (64,), 2048, 80
        n = batch[0] * length
        for mode in ("dense", "sparse"):
            eng = InMemorySCEngine(fault_rates=rates, rng=11,
                                   fault_sampling=mode)
            zero = StreamBatch.zeros(batch, length)
            counts = np.array([
                int(eng._flip_batch(zero, "and").popcount().sum())
                for _ in range(trials)], dtype=np.float64)
            mean, var = counts.mean(), counts.var(ddof=1)
            # Bernoulli model: E = n p, Var = n p (1-p).  The variance
            # estimate over `trials` runs has relative sd ~ sqrt(2/trials)
            # ~ 16%; the bands below leave ~3-sigma headroom.
            assert mean == pytest.approx(n * p, rel=0.1), mode
            assert var == pytest.approx(n * p * (1 - p), rel=0.55), mode

    def test_sparse_sites_are_spread_across_streams(self):
        # Guards the flat-index -> (stream, bit) mapping: flips must land
        # in distinct streams, not pile into the first payload rows.
        p = 0.01
        rates = GateFaultRates(and2=p, or2=p, xor2=p, maj3=p, read=p)
        eng = InMemorySCEngine(fault_rates=rates, rng=13,
                               fault_sampling="sparse")
        zero = StreamBatch.zeros((32,), 4096)
        per_stream = sum(eng._flip_batch(zero, "and").popcount()
                         for _ in range(10))
        assert int(np.count_nonzero(per_stream)) == 32
        assert per_stream.mean() == pytest.approx(10 * 4096 * p, rel=0.15)

    @pytest.mark.parametrize("divider", ("cordiv", "jk"))
    def test_sequential_divider_read_flips_conform(self, divider):
        # Sparse read upsets perturb the quotient like dense ones do.
        rates = GateFaultRates(and2=0.0, or2=0.0, xor2=0.0, maj3=0.0,
                               read=0.01)
        vals = {}
        for mode in ("dense", "sparse"):
            eng = InMemorySCEngine(fault_rates=rates, rng=17,
                                   fault_sampling=mode, ideal_stob=True)
            x = np.full(256, 0.3)
            y = np.full(256, 0.75)
            sx, sy = eng.generate_pair(x, y, 512, correlated=True)
            fn = eng.divide if divider == "cordiv" else eng.divide_jk
            vals[mode] = float(np.mean(fn(sx, sy).to_value()))
        assert vals["sparse"] == pytest.approx(vals["dense"], abs=0.02)


# ----------------------------------------------------------------------
# JK divider: the dense word path matches the per-bit oracle
# ----------------------------------------------------------------------
class TestDivideJk:
    def test_dense_word_matches_bit_oracle(self):
        rates = GateFaultRates(and2=0.02, or2=0.015, xor2=0.03, maj3=0.02,
                               read=0.01)
        for name in BACKENDS:
            with use_backend(name):
                ref = None
                for domain in ("bit", "word"):
                    eng = InMemorySCEngine(fault_rates=rates, rng=23,
                                           fault_domain=domain)
                    j = eng.generate(np.linspace(0.1, 0.6, 7), 97)
                    k = eng.generate(np.linspace(0.2, 0.7, 7), 97)
                    got = eng.divide_jk(j, k).bits
                    if ref is None:
                        ref = got
                    else:
                        np.testing.assert_array_equal(
                            got, ref, err_msg=f"{name}/{domain}")

    def test_fault_free_value(self):
        eng = InMemorySCEngine(rng=29, ideal_stob=True)
        j = eng.generate(np.full(128, 0.2), 2048)
        k = eng.generate(np.full(128, 0.3), 2048)
        got = float(np.mean(eng.divide_jk(j, k).to_value()))
        assert got == pytest.approx(0.4, abs=0.03)  # j / (j + k)


# ----------------------------------------------------------------------
# Faulty-mode golden values: the dense oracle stays pinned per backend
# ----------------------------------------------------------------------
# Seeded MSE(%) vs the float reference of each filter under the derived
# DEFAULT_FAULT_RATES (natural_scene 12x12 seed 21, N=128, engine rng=7,
# per-bit S-to-B, dense word-domain fault sampling), recorded at the sparse
# fault-sampling introduction.  Identical under every backend; any drift
# means the faulty stream bits (or the fault-model RNG consumption)
# changed.
PINNED_FAULTY_FILTER_MSE = {
    "roberts_cross": 0.28964678487447165,
    "mean_filter": 0.09905166669686759,
    "gamma_correct": 0.17946157037309618,
    "contrast_stretch": 0.1987359245095738,
}

_FILTER_FNS = {
    "roberts_cross": (roberts_cross_sc, roberts_cross_float),
    "mean_filter": (mean_filter_sc, mean_filter_float),
    "gamma_correct": (gamma_correct_sc, gamma_correct_float),
    "contrast_stretch": (contrast_stretch_sc, contrast_stretch_float),
}


class TestFaultyGoldens:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("filt", sorted(PINNED_FAULTY_FILTER_MSE))
    def test_dense_faulty_filter_mse_pinned(self, name, filt):
        image = natural_scene(12, 12, np.random.default_rng(21))
        sc_fn, ref_fn = _FILTER_FNS[filt]
        with use_backend(name):
            eng = InMemorySCEngine(rng=7, fault_rates=DEFAULT_FAULT_RATES)
            out = sc_fn(eng, image, 128)
        mse = float(np.mean((out - ref_fn(image)) ** 2)) * 100.0
        assert mse == pytest.approx(PINNED_FAULTY_FILTER_MSE[filt], rel=1e-9)

    @pytest.mark.parametrize("app", ("matting", "interpolation"))
    def test_sparse_app_quality_within_band_of_dense(self, app):
        """Seeded faulty-app quality: sparse within a pinned band of dense.

        Observed deltas across seeds are <= ~0.8 SSIM points / 0.5 dB;
        the band leaves ~2.5x headroom without masking real regressions.
        """
        vals = {}
        with use_backend("packed"):
            for mode in ("dense", "sparse"):
                r = run_app(app, "sc", length=64, size=24, seed=3,
                            faulty=True, fault_sampling=mode)
                vals[mode] = (r.ssim_pct, r.psnr_db)
        assert vals["sparse"][0] == pytest.approx(vals["dense"][0], abs=2.0)
        assert vals["sparse"][1] == pytest.approx(vals["dense"][1], abs=1.5)

    def test_sparse_is_seed_deterministic(self):
        a = run_app("matting", "sc", length=32, size=16, seed=11,
                    faulty=True, fault_sampling="sparse")
        b = run_app("matting", "sc", length=32, size=16, seed=11,
                    faulty=True, fault_sampling="sparse")
        np.testing.assert_array_equal(a.output, b.output)


# ----------------------------------------------------------------------
# No unpack on the sparse packed path
# ----------------------------------------------------------------------
def test_no_unpack_on_sparse_packed_path(monkeypatch):
    """Sparse fault injection must scatter into words, never unpack."""
    def boom(self, data, length):
        raise AssertionError("silent unpack on the sparse packed path")

    monkeypatch.setattr(PackedBackend, "unpack", boom)
    rates = GateFaultRates(and2=0.01, or2=0.01, xor2=0.01, maj3=0.01,
                           read=0.01)
    with use_backend("packed"):
        eng = InMemorySCEngine(fault_rates=rates, rng=37,
                               fault_sampling="sparse", cell_model="column")
        x = eng.generate_correlated(np.linspace(0.1, 0.9, 8), 96)
        y = eng.generate(np.linspace(0.2, 0.8, 8), 96)
        r = eng.generate(np.full(8, 0.5), 96)
        eng.multiply(x, y)
        eng.maj(x, y, r)
        eng.mux(r, x, y)
        eng.divide(eng.minimum(x, y), eng.maximum(x, y))
        eng.divide_jk(x, y)
        eng.to_binary(x)


# ----------------------------------------------------------------------
# Executor satellites: worker cap + upfront kwarg validation
# ----------------------------------------------------------------------
class TestPoolMapWorkerCap:
    def test_workers_capped_at_task_count(self, monkeypatch):
        # pool_map's one-shot path now goes through serve.pool.WorkerPool;
        # the worker cap must survive the extraction.
        seen = {}

        import repro.apps.executor as executor
        import repro.serve.pool as serve_pool

        real_pool = serve_pool.WorkerPool

        class RecordingPool(real_pool):
            def __init__(self, jobs, **kw):
                seen["jobs"] = jobs
                super().__init__(jobs, **kw)

        monkeypatch.setattr(serve_pool, "WorkerPool", RecordingPool)
        out = executor.pool_map(abs, [-1, -2, -3], jobs=8)
        assert out == [1, 2, 3]
        assert seen["jobs"] == 3

    def test_single_task_runs_in_process(self, monkeypatch):
        import repro.apps.executor as executor
        import repro.serve.pool as serve_pool

        def no_pool(*a, **kw):
            raise AssertionError("a single task must not spawn a pool")

        monkeypatch.setattr(serve_pool, "WorkerPool", no_pool)
        assert executor.pool_map(abs, [-7], jobs=4) == [7]
        assert executor.pool_map(abs, [], jobs=4) == []


class TestRunTiledValidation:
    def _inputs(self):
        image = natural_scene(8, 8, np.random.default_rng(2))
        return contrast_stretch_inputs(image)

    def test_unknown_engine_kwarg_named_in_parent(self):
        with pytest.raises(ValueError, match="fault_sampling_typo"):
            run_tiled("contrast_stretch", self._inputs(), 32, tile=4,
                      engine_kwargs={"fault_sampling_typo": "sparse"})

    def test_engine_rng_rejected(self):
        with pytest.raises(ValueError, match="SeedSequence"):
            run_tiled("contrast_stretch", self._inputs(), 32, tile=4,
                      engine_kwargs={"rng": 3})

    def test_bad_engine_value_rejected_in_parent(self):
        with pytest.raises(ValueError, match="fault_sampling"):
            run_tiled("contrast_stretch", self._inputs(), 32, tile=4,
                      engine_kwargs={"fault_sampling": "bogus"})

    def test_unknown_kernel_kwarg_named_in_parent(self):
        with pytest.raises(ValueError, match="gamma"):
            run_tiled("contrast_stretch", self._inputs(), 32, tile=4,
                      kernel_kwargs={"gamma": 0.5})

    def test_kernel_kwarg_input_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            run_tiled("contrast_stretch", self._inputs(), 32, tile=4,
                      kernel_kwargs={"image": np.zeros(4)})

    def test_unknown_input_name_rejected_in_parent(self):
        with pytest.raises(ValueError, match="unknown input"):
            run_tiled("contrast_stretch",
                      {"picture": natural_scene(
                          8, 8, np.random.default_rng(2))}, 32, tile=4)

    def test_missing_required_input_rejected_in_parent(self):
        # Previously surfaced only as a pickled in-worker TypeError (and,
        # via the serving scheduler, consumed pool slots before failing).
        scene = natural_scene(8, 8, np.random.default_rng(2))
        with pytest.raises(ValueError, match="missing required.*foreground"):
            run_tiled("matting",
                      {"composite": scene, "background": scene * 0.5},
                      32, tile=4)

    def test_valid_kwargs_still_run(self):
        out, _ = run_tiled(
            "contrast_stretch", self._inputs(), 32, tile=4,
            engine_kwargs={"fault_rates": DEFAULT_FAULT_RATES,
                           "fault_sampling": "sparse"},
            kernel_kwargs={"lo": 0.25, "hi": 0.75})
        assert out.shape == (8, 8)
        assert np.all((out >= 0.0) & (out <= 1.0))
