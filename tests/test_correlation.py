"""Unit tests for repro.core.correlation (SCC metric)."""

import numpy as np
import pytest

from repro.core.bitstream import Bitstream
from repro.core.correlation import (
    correlation_matrix,
    decorrelate,
    overlap_probability,
    scc,
)
from repro.core.sng import ComparatorSng, unary_stream
from repro.core.rng import SoftwareRng


class TestScc:
    def test_identical_streams_scc_one(self):
        s = Bitstream.bernoulli(0.5, 1024, rng=0)
        assert float(scc(s, s)) == pytest.approx(1.0)

    def test_complementary_streams_scc_minus_one(self):
        s = Bitstream.bernoulli(0.5, 1024, rng=0)
        assert float(scc(s, ~s)) == pytest.approx(-1.0)

    def test_independent_streams_near_zero(self):
        a = Bitstream.bernoulli(0.5, 16384, rng=1)
        b = Bitstream.bernoulli(0.5, 16384, rng=2)
        assert abs(float(scc(a, b))) < 0.05

    def test_constant_stream_convention_zero(self):
        a = Bitstream.ones(64)
        b = Bitstream.bernoulli(0.5, 64, rng=0)
        assert float(scc(a, b)) == 0.0

    def test_unary_maximal_overlap(self):
        a = unary_stream(0.3, 128)
        b = unary_stream(0.7, 128)
        assert float(scc(a, b)) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            scc(Bitstream.zeros(8), Bitstream.zeros(4))

    def test_batch_output_shape(self):
        a = Bitstream.bernoulli(np.full(5, 0.5), 512, rng=3)
        b = Bitstream.bernoulli(np.full(5, 0.5), 512, rng=4)
        assert scc(a, b).shape == (5,)


class TestOverlap:
    def test_overlap_probability(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        assert float(overlap_probability(a, b)) == 0.25


class TestDecorrelate:
    def test_preserves_value(self):
        s = Bitstream.bernoulli(0.42, 1024, rng=5)
        assert float(decorrelate(s).value()) == pytest.approx(
            float(s.value()))

    def test_reduces_scc(self):
        sng = ComparatorSng(SoftwareRng(8, seed=6))
        a, b = sng.generate_pair(0.5, 0.5, 4096, correlated=True)
        assert float(scc(a, decorrelate(b))) < 0.3


class TestCorrelationMatrix:
    def test_diagonal_and_symmetry(self):
        bits = np.stack([
            Bitstream.bernoulli(0.5, 1024, rng=i).bits for i in range(3)])
        m = correlation_matrix(Bitstream(bits))
        assert m.shape == (3, 3)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    def test_requires_flat_batch(self):
        with pytest.raises(ValueError):
            correlation_matrix(Bitstream(np.zeros((2, 2, 8), dtype=np.uint8)))
