"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fixed-seed generator for reproducible randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_image(rng):
    """A 16x16 float image in [0, 1] with texture."""
    from repro.apps.images import natural_scene
    return natural_scene(16, 16, rng)
