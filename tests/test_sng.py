"""Unit tests for repro.core.sng."""

import numpy as np
import pytest

from repro.core.correlation import scc
from repro.core.rng import SobolRng, SoftwareRng
from repro.core.sng import (
    BiasedBitSource,
    ComparatorSng,
    IdealBitSource,
    SegmentSng,
    unary_stream,
)


class TestComparatorSng:
    def test_mean_value(self):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        s = sng.generate(0.3, 20_000)
        assert abs(float(s.value()) - 0.3) < 0.02

    def test_batch_shape(self):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        x = np.full((3, 4), 0.5)
        s = sng.generate(x, 64)
        assert s.shape == (3, 4, 64)

    def test_sobol_exact_at_full_period(self):
        # 8-bit Sobol over N=256 represents any 8-bit value exactly.
        sng = ComparatorSng(SobolRng(8))
        s = sng.generate(100 / 256.0, 256)
        assert float(s.value()) == pytest.approx(100 / 256.0)

    def test_correlated_pair_scc_one(self):
        sng = ComparatorSng(SoftwareRng(8, seed=1))
        a, b = sng.generate_pair(0.4, 0.7, 4096, correlated=True)
        assert float(scc(a, b)) == pytest.approx(1.0, abs=0.05)

    def test_uncorrelated_pair_scc_zero(self):
        sng = ComparatorSng(SoftwareRng(8, seed=1))
        a, b = sng.generate_pair(0.4, 0.7, 8192, correlated=False)
        assert abs(float(scc(a, b))) < 0.1

    def test_generate_correlated_shares_rn_across_batch(self):
        sng = ComparatorSng(SoftwareRng(8, seed=1))
        s = sng.generate_correlated(np.array([0.5, 0.5]), 512)
        # Identical values + shared RN => identical streams.
        assert np.array_equal(s.bits[0], s.bits[1])

    def test_pair_batch_size_mismatch(self):
        sng = ComparatorSng()
        with pytest.raises(ValueError):
            sng.generate_pair(np.zeros(2), np.zeros(3), 8, correlated=True)


class TestSegmentSng:
    def test_mean_value(self):
        sng = SegmentSng(IdealBitSource(seed=0), segment_bits=8)
        s = sng.generate(0.7, 20_000)
        assert abs(float(s.value()) - 0.7) < 0.02

    def test_small_m_quantises(self):
        # M=5 sees only 32 levels: 0.7 -> floor(0.7*32)/32.
        sng = SegmentSng(IdealBitSource(seed=0), segment_bits=5)
        s = sng.generate(0.7, 50_000)
        assert abs(float(s.value()) - 22 / 32) < 0.01

    def test_correlated_pair(self):
        sng = SegmentSng(IdealBitSource(seed=2))
        a, b = sng.generate_pair(0.3, 0.8, 4096, correlated=True)
        assert float(scc(a, b)) == pytest.approx(1.0, abs=0.05)

    def test_bad_segment_bits(self):
        with pytest.raises(ValueError):
            SegmentSng(segment_bits=0)

    def test_biased_source_biases_streams(self):
        # A positively biased TRNG makes random numbers larger, so the
        # comparison X > RN fires less often.
        fair = SegmentSng(BiasedBitSource(0.0, seed=3), segment_bits=8)
        skew = SegmentSng(BiasedBitSource(0.2, seed=3), segment_bits=8)
        v_fair = float(fair.generate(0.5, 30_000).value())
        v_skew = float(skew.generate(0.5, 30_000).value())
        assert v_skew < v_fair


class TestBitSources:
    def test_ideal_balance(self):
        bits = IdealBitSource(seed=0).random_bits(100_000)
        assert abs(bits.mean() - 0.5) < 0.01

    def test_biased_mean(self):
        bits = BiasedBitSource(bias=0.1, seed=0).random_bits(100_000)
        assert abs(bits.mean() - 0.6) < 0.01

    def test_bias_bounds(self):
        with pytest.raises(ValueError):
            BiasedBitSource(bias=0.6)
        with pytest.raises(ValueError):
            BiasedBitSource(autocorr=1.5)

    def test_autocorrelation_sign(self):
        bits = BiasedBitSource(autocorr=0.5, seed=0).random_bits(20_000)
        x = bits.astype(float) - bits.mean()
        rho = float(np.sum(x[:-1] * x[1:]) / np.sum(x * x))
        assert rho > 0.2


class TestUnary:
    def test_thermometer_shape(self):
        s = unary_stream(0.5, 8)
        assert list(s.bits) == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_exact_value(self):
        for x in (0.0, 0.25, 1.0):
            assert float(unary_stream(x, 32).value()) == pytest.approx(x)

    def test_range_check(self):
        with pytest.raises(ValueError):
            unary_stream(1.2, 8)

    def test_pairwise_scc_positive(self):
        a = unary_stream(0.4, 64)
        b = unary_stream(0.8, 64)
        assert float(scc(a, b)) == pytest.approx(1.0)
