"""Unit tests for repro.core.bitstream."""

import numpy as np
import pytest

from repro.core.bitstream import Bitstream


class TestConstruction:
    def test_from_list(self):
        bs = Bitstream([1, 0, 1, 0])
        assert bs.length == 4
        assert bs.batch_shape == ()

    def test_from_2d(self):
        bs = Bitstream(np.zeros((3, 8), dtype=np.uint8))
        assert bs.length == 8
        assert bs.batch_shape == (3,)

    def test_bool_input_coerced(self):
        bs = Bitstream(np.array([True, False, True]))
        assert bs.bits.dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Bitstream([0, 1, 2])

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            Bitstream(np.array([0.5, 0.5]))

    def test_scalar_becomes_length_one(self):
        bs = Bitstream(np.uint8(1))
        assert bs.length == 1

    def test_zeros_ones(self):
        assert float(Bitstream.zeros(16).value()) == 0.0
        assert float(Bitstream.ones(16).value()) == 1.0


class TestValueRecovery:
    def test_value(self):
        assert float(Bitstream([1, 0, 1, 0, 1]).value()) == pytest.approx(0.6)

    def test_popcount_batch(self):
        bs = Bitstream([[1, 1, 0], [0, 0, 0]])
        assert list(bs.popcount()) == [2, 0]

    def test_bipolar(self):
        assert float(Bitstream([1, 1, 1, 1]).bipolar_value()) == 1.0
        assert float(Bitstream([0, 0, 0, 0]).bipolar_value()) == -1.0
        assert float(Bitstream([1, 0, 1, 0]).bipolar_value()) == 0.0


class TestBernoulli:
    def test_scalar_probability(self):
        bs = Bitstream.bernoulli(0.5, 10_000, rng=0)
        assert abs(float(bs.value()) - 0.5) < 0.02

    def test_array_probability_shape(self):
        p = np.array([0.1, 0.9])
        bs = Bitstream.bernoulli(p, 64, rng=0)
        assert bs.shape == (2, 64)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Bitstream.bernoulli(1.5, 8)

    def test_extreme_probabilities(self):
        assert float(Bitstream.bernoulli(0.0, 128, rng=1).value()) == 0.0
        assert float(Bitstream.bernoulli(1.0, 128, rng=1).value()) == 1.0


class TestLogic:
    def test_and_or_xor_invert(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        assert (a & b) == Bitstream([1, 0, 0, 0])
        assert (a | b) == Bitstream([1, 1, 1, 0])
        assert (a ^ b) == Bitstream([0, 1, 1, 0])
        assert (~a) == Bitstream([0, 0, 1, 1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitstream([1, 0]) & Bitstream([1, 0, 1])

    def test_type_error_on_raw_array(self):
        with pytest.raises(TypeError):
            Bitstream([1, 0]) & np.array([1, 0])


class TestStructure:
    def test_roll_preserves_value(self):
        bs = Bitstream.bernoulli(0.37, 256, rng=3)
        assert float(bs.roll(7).value()) == pytest.approx(float(bs.value()))

    def test_concat_doubles_length(self):
        a = Bitstream([1, 0])
        b = Bitstream([1, 1])
        assert a.concat(b).length == 4

    def test_packed_roundtrip(self):
        bs = Bitstream.bernoulli(0.5, 37, rng=5)   # non-multiple of 8
        back = Bitstream.from_packed(bs.packed(), 37)
        assert back == bs

    def test_stack(self):
        s = Bitstream.stack([Bitstream([1, 0]), Bitstream([0, 1])])
        assert s.shape == (2, 2)

    def test_reshape(self):
        bs = Bitstream(np.zeros((6, 8), dtype=np.uint8))
        assert bs.reshape(2, 3).shape == (2, 3, 8)

    def test_getitem(self):
        bs = Bitstream([[1, 0], [0, 1]])
        assert bs[0] == Bitstream([1, 0])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Bitstream([1]))

    def test_repr_short_and_batch(self):
        assert "1010" in repr(Bitstream([1, 0, 1, 0]))
        assert "batch" in repr(Bitstream(np.zeros((2, 64), dtype=np.uint8)))


class TestFromPackedTailMask:
    """Dedicated round-trip coverage for non-multiple-of-8 lengths."""

    @pytest.mark.parametrize("length", [1, 2, 7, 8, 9, 15, 16, 17, 37, 127])
    def test_roundtrip_every_tail_length(self, length):
        bs = Bitstream.bernoulli(0.5, length, rng=length)
        back = Bitstream.from_packed(bs.packed(), length)
        assert back == bs
        np.testing.assert_array_equal(back.bits, bs.bits)

    def test_batch_roundtrip_odd_length(self):
        bs = Bitstream.bernoulli(np.array([0.2, 0.8]), 13, rng=2)
        back = Bitstream.from_packed(bs.packed(), 13)
        assert back == bs

    def test_stray_tail_bits_are_masked(self):
        # length 5 occupies the top 5 bits of one byte; the low 3 bits are
        # garbage and must not leak into the stream or its popcount.
        packed = np.array([0b10110111], dtype=np.uint8)
        bs = Bitstream.from_packed(packed, 5)
        np.testing.assert_array_equal(bs.bits, [1, 0, 1, 1, 0])
        assert int(bs.popcount()) == 3

    def test_byte_count_mismatch_raises(self):
        packed = np.packbits(np.ones(16, dtype=np.uint8))  # 2 bytes
        with pytest.raises(ValueError, match="requires exactly"):
            Bitstream.from_packed(packed, 24)   # needs 3 bytes
        with pytest.raises(ValueError, match="requires exactly"):
            Bitstream.from_packed(packed, 8)    # needs 1 byte

    def test_non_positive_length_raises(self):
        with pytest.raises(ValueError, match="positive"):
            Bitstream.from_packed(np.array([0], dtype=np.uint8), 0)

    def test_packed_output_is_independent_copy(self):
        bs = Bitstream([1, 0, 1, 1, 0, 1, 0, 1, 1])
        packed = bs.packed()
        packed[...] = 0
        assert int(bs.popcount()) == 6  # mutation must not alias the payload

    @pytest.mark.parametrize("backend", ["unpacked", "packed"])
    @pytest.mark.parametrize("length", [64, 63, 128])
    def test_from_packed_does_not_alias_input(self, backend, length):
        bs = Bitstream.bernoulli(0.5, length, rng=4)
        packed = bs.packed()
        rebuilt = Bitstream.from_packed(packed, length, backend=backend)
        before = int(rebuilt.popcount())
        packed[...] = 0  # caller reuses its buffer; stream must not change
        assert int(rebuilt.popcount()) == before
        assert rebuilt == bs
