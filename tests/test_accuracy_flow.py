"""Unit tests for repro.core.accuracy and repro.core.flow."""

import numpy as np
import pytest

from repro.core import ops
from repro.core.accuracy import OP_SPECS, op_mse, sng_mse
from repro.core.flow import ScFlow
from repro.core.rng import SobolRng, SoftwareRng
from repro.core.sng import ComparatorSng


class TestSngMse:
    def test_software_matches_binomial_variance(self):
        # E[(p_hat - p)^2] = p(1-p)/N; averaged over uniform p -> 1/(6N).
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        for n in (32, 128):
            got = sng_mse(sng, n, samples=20_000, seed=1)
            expected = 100.0 / (6 * n)
            assert got == pytest.approx(expected, rel=0.15)

    def test_sobol_much_better_than_software(self):
        sw = sng_mse(ComparatorSng(SoftwareRng(8, seed=0)), 256, 5_000)
        qr = sng_mse(ComparatorSng(SobolRng(8)), 256, 5_000)
        assert qr < sw / 20

    def test_mse_decreases_with_length(self):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        m32 = sng_mse(sng, 32, 10_000, seed=2)
        m256 = sng_mse(sng, 256, 10_000, seed=2)
        assert m256 < m32 / 4


class TestOpMse:
    @pytest.mark.parametrize("op", list(OP_SPECS))
    def test_all_ops_finite_and_small(self, op):
        sng = ComparatorSng(SoftwareRng(8, seed=3))
        m = op_mse(op, sng, 64, samples=2_000, seed=4)
        assert 0.0 <= m < 5.0

    def test_division_worst(self):
        # Division has the highest MSE of the basic ops (Table II row order).
        sng = ComparatorSng(SoftwareRng(8, seed=5))
        div = op_mse("division", sng, 32, samples=3_000, seed=6)
        mul = op_mse("multiplication", sng, 32, samples=3_000, seed=6)
        assert div > mul

    def test_mux_and_maj_addition_agree(self):
        sng = ComparatorSng(SoftwareRng(8, seed=7))
        maj = op_mse("scaled_addition", sng, 64, samples=3_000, seed=8)
        mux = op_mse("scaled_addition_mux", sng, 64, samples=3_000, seed=8)
        assert maj == pytest.approx(mux, rel=0.5)


def _sng_factory(seed_seq):
    """Module-level (picklable) per-chunk SNG factory for sharded op_mse."""
    return ComparatorSng(
        SoftwareRng(8, seed=int(seed_seq.generate_state(1)[0])))


class TestOpMseSharded:
    def test_jobs_do_not_change_result(self):
        # Chunk determinism: per-chunk SeedSequence children make the MSE a
        # pure function of (seed, chunk), independent of the worker count.
        base = op_mse("multiplication", _sng_factory, 64, samples=2_000,
                      seed=9, chunk=512, jobs=1)
        fan = op_mse("multiplication", _sng_factory, 64, samples=2_000,
                     seed=9, chunk=512, jobs=3)
        assert fan == base

    def test_sharded_matches_expected_magnitude(self):
        m = op_mse("multiplication", _sng_factory, 64, samples=2_000,
                   seed=10, chunk=512, jobs=2)
        assert 0.0 < m < 5.0

    def test_uneven_tail_chunk_counted_once(self):
        # samples not divisible by chunk: the tail chunk is smaller, and
        # the normalisation must still be by the true sample count.
        a = op_mse("minimum", _sng_factory, 32, samples=1_000, seed=11,
                   chunk=384, jobs=1)
        b = op_mse("minimum", _sng_factory, 32, samples=1_000, seed=11,
                   chunk=384, jobs=2)
        assert a == b and 0.0 <= a < 5.0

    def test_shared_sng_rejects_jobs(self):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        with pytest.raises(ValueError, match="factory"):
            op_mse("multiplication", sng, 64, samples=100, jobs=2)

    def test_sharded_requires_spec_key(self):
        with pytest.raises(ValueError, match="OP_SPECS key"):
            op_mse(OP_SPECS["multiplication"], _sng_factory, 64,
                   samples=100, jobs=2)


class TestSngMseSharded:
    def test_jobs_do_not_change_result(self):
        # Same determinism contract as sharded op_mse: per-chunk
        # SeedSequence children make the MSE a pure function of
        # (seed, chunk), independent of the worker count.
        base = sng_mse(_sng_factory, 64, samples=2_000, seed=12, chunk=512,
                       jobs=1)
        fan = sng_mse(_sng_factory, 64, samples=2_000, seed=12, chunk=512,
                      jobs=3)
        assert fan == base

    def test_sharded_matches_expected_magnitude(self):
        # Binomial variance averaged over uniform p: 100 / (6 N).
        got = sng_mse(_sng_factory, 128, samples=10_000, seed=13,
                      chunk=2048, jobs=2)
        assert got == pytest.approx(100.0 / (6 * 128), rel=0.2)

    def test_uneven_tail_chunk_counted_once(self):
        a = sng_mse(_sng_factory, 32, samples=1_000, seed=14, chunk=384,
                    jobs=1)
        b = sng_mse(_sng_factory, 32, samples=1_000, seed=14, chunk=384,
                    jobs=2)
        assert a == b and 0.0 < a < 5.0

    def test_shared_sng_rejects_jobs(self):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        with pytest.raises(ValueError, match="factory"):
            sng_mse(sng, 64, samples=100, jobs=2)

    def test_engine_factory_shards_faulty_sweeps(self):
        # EngineFactory threads any engine axis (here: sparse fault
        # sampling) through the sharded Monte-Carlo harness.
        from repro.imsc.engine import EngineFactory
        from repro.reram.faults import DEFAULT_FAULT_RATES

        factory = EngineFactory(fault_rates=DEFAULT_FAULT_RATES,
                                fault_sampling="sparse", ideal_stob=True)
        base = sng_mse(factory, 64, samples=600, seed=15, chunk=256, jobs=1)
        fan = sng_mse(factory, 64, samples=600, seed=15, chunk=256, jobs=2)
        assert fan == base and 0.0 < base < 5.0


class TestScFlow:
    def test_multiplication_flow(self):
        flow = ScFlow(lambda s: ops.mul_and(s["a"], s["b"]),
                      sng=ComparatorSng(SoftwareRng(8, seed=0)))
        res = flow.run({"a": 0.5, "b": 0.5}, length=8192)
        assert float(res.value) == pytest.approx(0.25, abs=0.03)

    def test_correlated_group_subtraction(self):
        flow = ScFlow(lambda s: ops.sub_xor(s["x"], s["y"]),
                      correlated_groups=[("x", "y")],
                      sng=ComparatorSng(SoftwareRng(8, seed=1)))
        res = flow.run({"x": 0.8, "y": 0.3}, length=8192)
        assert float(res.value) == pytest.approx(0.5, abs=0.03)

    def test_duplicate_group_membership_rejected(self):
        with pytest.raises(ValueError):
            ScFlow(lambda s: s["a"], correlated_groups=[("a",), ("a", "b")])

    def test_keep_streams(self):
        flow = ScFlow(lambda s: s["a"])
        res = flow.run({"a": 0.5}, length=64, keep_streams=True)
        assert "a" in res.streams
        assert res.output_stream is not None

    def test_batch_inputs(self):
        flow = ScFlow(lambda s: ops.mul_and(s["a"], s["b"]))
        res = flow.run({"a": np.full(10, 0.6), "b": np.full(10, 0.5)},
                       length=4096)
        assert res.value.shape == (10,)
        assert np.allclose(res.value, 0.3, atol=0.05)
