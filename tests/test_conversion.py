"""Unit tests for repro.core.conversion (S-to-B models)."""

import numpy as np
import pytest

from repro.core.bitstream import Bitstream
from repro.core.conversion import (
    CounterConverter,
    ExactConverter,
    QuantizingConverter,
)


class TestExact:
    def test_value(self):
        assert float(ExactConverter().convert(Bitstream([1, 0, 1, 1]))) == 0.75


class TestCounter:
    def test_exact_when_wide_enough(self):
        s = Bitstream.bernoulli(0.6, 256, rng=0)
        assert float(CounterConverter().convert(s)) == float(s.value())

    def test_saturation(self):
        s = Bitstream.ones(64)
        # A 4-bit counter saturates at 15 of 64 ones.
        assert float(CounterConverter(width=4).convert(s)) == 15 / 64

    def test_cycles_equal_length(self):
        s = Bitstream.zeros(128)
        assert CounterConverter().cycles(s) == 128

    def test_bad_width(self):
        with pytest.raises(ValueError):
            CounterConverter(width=0)


class TestQuantizing:
    def test_noiseless_quantisation_error_bounded(self):
        s = Bitstream.bernoulli(0.37, 1000, rng=1)
        conv = QuantizingConverter(resolution_bits=8, noise_sigma=0.0)
        out = float(conv.convert(s))
        assert abs(out - float(s.value())) <= 1.0 / 255 + 1e-9

    def test_low_resolution_coarse(self):
        s = Bitstream.bernoulli(0.5, 1024, rng=2)
        conv = QuantizingConverter(resolution_bits=2)
        assert float(conv.convert(s)) in (0.0, 1 / 3, 2 / 3, 1.0)

    def test_noise_perturbs(self):
        s = Bitstream.bernoulli(0.5, 256, rng=3)
        a = QuantizingConverter(8, noise_sigma=0.0).convert(s)
        outs = [float(QuantizingConverter(8, noise_sigma=10.0, rng=i)
                      .convert(s)) for i in range(20)]
        assert np.std(outs) > 0.0

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            QuantizingConverter(resolution_bits=0)
