"""Serving observability + JSON front-end strictness suite.

Covers the PR 6 contracts layered on top of :mod:`repro.serve`:

* the :class:`~repro.serve.metrics.ServeMetrics` registry — its tile
  counters agree with the scheduler's ``dispatch_log`` ground truth,
  requests are finalized exactly once (ok / failed / cancelled), and
  every snapshot is strict RFC 8259 JSON;
* ``{"type": "stats"}`` round-trips through both front-ends
  (``ServingClient.stats()`` and the ``serve_stdio`` JSON loop);
* a worker death mid-stream shows ``pool_restarts == 1`` and every
  surviving response stays bit-identical to ``run_tiled(jobs=1)``;
* ``decode_request`` strictness — ``backend`` threads through instead of
  being silently dropped, unknown keys are rejected by name, a
  null/float seed is rejected (silent nondeterminism), and
  ``fault_rates`` objects decode into :class:`GateFaultRates`;
* ``encode_response`` strictness — non-finite values become JSON
  ``null`` with a ``nonfinite`` count, never bare ``NaN`` literals;
* :meth:`WorkerPool.warmup` barriers until every worker is provably up;
* the ``BENCH_*.json`` record schema (:mod:`repro.report`) and the load
  harness's trace/oracle/summary plumbing (``benchmarks/loadgen.py``).
"""

import asyncio
import dataclasses
import importlib.util
import io
import json
import os
import pathlib
import signal
import types

import numpy as np
import pytest

from repro.apps.executor import run_tiled
from repro.apps.filters import gamma_correct_inputs, mean_filter_inputs
from repro.apps.images import natural_scene
from repro.core.backend import use_backend
from repro.report import (
    BENCH_SCHEMA_VERSION,
    bench_record,
    load_bench_record,
    validate_bench_record,
    write_bench_record,
)
from repro.reram.faults import DEFAULT_FAULT_RATES, GateFaultRates
from repro.serve import (
    BrokenProcessPool,
    Scheduler,
    ServeMetrics,
    ServingClient,
    WorkerPool,
)
from repro.serve.metrics import Gauge, Window
from repro.serve.service import decode_request, encode_response, serve_stdio

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _image(size=6, seed=3):
    return natural_scene(size, size, np.random.default_rng(seed))


def _raw_request(**overrides):
    """A valid stdio run-request object; ``overrides`` mutate it."""
    raw = {"id": 0, "kernel": "gamma_correct",
           "inputs": {"image": _image().tolist()}, "length": 32, "tile": 3,
           "seed": 1, "kernel_kwargs": {"gamma": 0.5}}
    raw.update(overrides)
    return raw


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------
class TestMetricPrimitives:
    def test_window_percentiles_count_and_sum(self):
        w = Window("w", "h")
        for v in range(1, 101):
            w.observe(v)
        snap = w.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["max"] == 100.0
        arr = np.arange(1, 101, dtype=np.float64)
        for q in (50, 90, 99):
            assert snap[f"p{q}"] == pytest.approx(np.percentile(arr, q))

    def test_empty_window_snapshots_none_not_nan(self):
        snap = Window("w", "h").snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0
        assert all(snap[k] is None
                   for k in ("p50", "p90", "p99", "mean", "max"))
        json.dumps(snap, allow_nan=False)   # must be strict JSON

    def test_window_eviction_keeps_exact_count_and_sum(self):
        w = Window("w", "h", maxlen=4)
        for v in range(10):
            w.observe(v)
        # percentiles cover only the surviving reservoir (6, 7, 8, 9) …
        assert w.percentiles()["p50"] == pytest.approx(7.5)
        # … while count/sum stay exact for the whole lifetime
        assert w.count == 10
        assert w.sum == pytest.approx(sum(range(10)))

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge("g", "h")
        g.inc(3)
        g.dec(2)
        g.inc()
        assert g.value == 2
        assert g.hwm == 3

    def test_render_prometheus_exposition(self):
        m = ServeMetrics()
        m.on_admit()
        m.on_dispatch(queue_wait=0.25)
        m.on_tile_done()
        m.on_request_done(True, exec_s=0.5, latency_s=0.75)
        text = m.render_prometheus()
        assert "# TYPE serve_requests_admitted_total counter" in text
        assert "serve_requests_admitted_total 1" in text
        assert "serve_tiles_dispatched_total 1" in text
        assert "# TYPE serve_requests_inflight gauge" in text
        assert "serve_requests_inflight_hwm 1" in text
        assert 'serve_latency_seconds{quantile="0.5"} 0.75' in text
        assert "serve_queue_wait_seconds_count 1" in text
        assert text.endswith("\n")

    def test_fresh_snapshot_is_strict_json(self):
        json.dumps(ServeMetrics().snapshot(), allow_nan=False)


# ----------------------------------------------------------------------
# scheduler integration
# ----------------------------------------------------------------------
class TestSchedulerMetrics:
    def test_counters_match_dispatch_log(self):
        img = _image(8, seed=9)
        inputs = mean_filter_inputs(img)

        async def main():
            with WorkerPool(2) as pool:
                scheduler = Scheduler(pool)
                await asyncio.gather(
                    scheduler.submit_app("mean_filter", inputs, 32,
                                         tile=4, seed=1),
                    scheduler.submit_app("mean_filter", inputs, 32,
                                         tile=4, seed=2))
                await scheduler.drain()
                return (list(scheduler.dispatch_log), scheduler.stats(),
                        scheduler.metrics.render_prometheus())

        log, snap, prom = asyncio.run(main())
        # two 8x8 requests at tile=4 -> 4 tiles each
        assert len(log) == 8
        assert snap["tiles"]["dispatched"] == len(log)
        assert snap["tiles"]["completed"] == len(log)
        assert snap["tiles"]["inflight"] == 0
        assert 1 <= snap["tiles"]["inflight_hwm"] <= 2   # pool capacity
        assert snap["requests"]["admitted"] == 2
        assert snap["requests"]["ok"] == 2
        assert snap["requests"]["failed"] == 0
        assert snap["requests"]["inflight"] == 0
        assert 1 <= snap["requests"]["inflight_hwm"] <= 2
        # one queue-wait observation per request (its first dispatch),
        # one exec/latency observation per successful request
        assert snap["queue_wait_s"]["count"] == 2
        assert snap["exec_s"]["count"] == 2
        assert snap["latency_s"]["count"] == 2
        assert snap["latency_s"]["p50"] >= snap["exec_s"]["p50"] >= 0.0
        assert snap["pool_restarts"] == 0
        assert snap["pool"]["capacity"] == 2
        assert snap["pool"]["restarts"] == 0
        json.dumps(snap, allow_nan=False)
        assert "serve_tiles_dispatched_total 8" in prom

    def test_build_rejected_request_is_not_admitted(self):
        img = _image()

        async def main():
            with WorkerPool(1) as pool:
                scheduler = Scheduler(pool)
                with pytest.raises(ValueError, match="fault_sampling"):
                    await scheduler.submit_app(
                        "mean_filter", mean_filter_inputs(img), 32, tile=3,
                        engine_kwargs={"fault_sampling": "bogus"})
                return scheduler.stats()

        snap = asyncio.run(main())
        # rejected during task building: touched neither pool nor metrics
        assert snap["requests"]["admitted"] == 0
        assert snap["requests"]["failed"] == 0
        assert snap["tiles"]["dispatched"] == 0

    def test_cancelled_request_counted_failed_exactly_once(self):
        big = _image(16, seed=1)     # 64 tiles at tile=2
        small = _image(6, seed=2)

        async def main():
            with WorkerPool(2) as pool:
                pool.warmup()
                scheduler = Scheduler(pool)
                t_big = asyncio.ensure_future(scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(big), 64, tile=2,
                    seed=1))
                await asyncio.sleep(0.02)
                t_big.cancel()
                await scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(small), 32, tile=3,
                    seed=0)
                with pytest.raises(asyncio.CancelledError):
                    await t_big
                await scheduler.drain()
                return scheduler.stats()

        snap = asyncio.run(main())
        assert snap["requests"]["admitted"] == 2
        assert snap["requests"]["ok"] == 1
        assert snap["requests"]["failed"] == 1
        assert snap["requests"]["inflight"] == 0
        # latency/exec windows only record successful requests
        assert snap["latency_s"]["count"] == 1
        assert snap["exec_s"]["count"] == 1

    def test_zero_tile_request_counts_ok(self):
        empty = {"image": np.zeros((1, 0))}

        async def main():
            with WorkerPool(1) as pool:
                scheduler = Scheduler(pool)
                await scheduler.submit_app("gamma_correct", empty, 32,
                                           tile=4,
                                           kernel_kwargs={"gamma": 0.5})
                return scheduler.stats()

        snap = asyncio.run(main())
        assert snap["requests"]["admitted"] == 1
        assert snap["requests"]["ok"] == 1
        assert snap["tiles"]["dispatched"] == 0


# ----------------------------------------------------------------------
# stats round-trips
# ----------------------------------------------------------------------
class TestStatsRoundTrips:
    def test_client_stats_reflects_served_requests(self):
        img = _image(8, seed=4)
        inputs = gamma_correct_inputs(img)
        with ServingClient(jobs=2) as client:
            for seed in (1, 2):
                client.request("gamma_correct", inputs, 32, tile=4,
                               seed=seed, kernel_kwargs={"gamma": 0.5})
            snap = client.stats()
        assert snap["requests"]["admitted"] == 2
        assert snap["requests"]["ok"] == 2
        assert snap["requests"]["failed"] == 0
        assert snap["tiles"]["dispatched"] == 8    # 2 requests x 4 tiles
        assert snap["pool"]["capacity"] == 2
        assert snap["pool"]["restarts"] == 0
        assert snap["pool"]["broken"] is False
        json.dumps(snap, allow_nan=False)

    def test_stats_roundtrip_through_stdio(self):
        # jobs=1 + max_pending=1 force sequential handling, so the stats
        # response deterministically reflects the completed run request.
        run = _raw_request(id="r")
        stats_req = {"id": "s", "type": "stats"}
        stdin = io.StringIO(json.dumps(run) + "\n"
                            + json.dumps(stats_req) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=1, max_pending=1) == 0
        raw = stdout.getvalue()
        assert "NaN" not in raw and "Infinity" not in raw
        got = {r["id"]: r for r in map(json.loads, raw.splitlines())}
        assert got["r"]["ok"] is True
        assert got["s"]["ok"] is True
        snap = got["s"]["stats"]
        assert snap["requests"]["admitted"] == 1
        assert snap["requests"]["ok"] == 1
        assert snap["tiles"]["dispatched"] == 4    # 6x6 scene at tile=3
        assert snap["pool_restarts"] == 0
        assert snap["pool"]["capacity"] == 1

    def test_unknown_request_type_rejected(self):
        stdin = io.StringIO(json.dumps({"id": 1, "type": "bogus"}) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=1) == 0
        resp = json.loads(stdout.getvalue())
        assert resp["id"] == 1
        assert resp["ok"] is False
        assert "bogus" in resp["error"]


# ----------------------------------------------------------------------
# worker death mid-stream
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_death_restarts_pool_once_and_survivors_stay_bit_exact(self):
        img = _image(10, seed=5)
        inputs = mean_filter_inputs(img)
        refs = {s: run_tiled("mean_filter", inputs, 48, tile=2, jobs=1,
                             seed=s)[0] for s in range(4)}
        with ServingClient(jobs=2) as client:
            victims = client.pool.worker_pids()
            assert len(victims) == 2   # warmup=True spawned the fleet
            futures = {s: client.submit("mean_filter", inputs, 48, tile=2,
                                        seed=s) for s in range(4)}
            os.kill(victims[0], signal.SIGKILL)
            survivors = {}
            for s, fut in futures.items():
                try:
                    survivors[s] = fut.result(timeout=300)[0]
                except BrokenProcessPool:
                    pass   # in flight at the kill: expected casualty
            # the scheduler respawned the workers; the pool still serves
            post, _ = client.request("mean_filter", inputs, 48, tile=2,
                                     seed=0)
            snap = client.stats()
        np.testing.assert_array_equal(post, refs[0])
        for s, out in survivors.items():
            np.testing.assert_array_equal(out, refs[s])
        assert snap["pool_restarts"] == 1
        assert snap["pool"]["restarts"] == 1
        assert snap["pool"]["broken"] is False
        assert snap["requests"]["ok"] + snap["requests"]["failed"] == 5
        assert snap["requests"]["inflight"] == 0


# ----------------------------------------------------------------------
# request decoding strictness
# ----------------------------------------------------------------------
class TestRequestDecoding:
    def test_backend_threads_through(self):
        assert decode_request(_raw_request(backend="packed"))["backend"] \
            == "packed"
        assert decode_request(_raw_request())["backend"] is None

    def test_unknown_keys_rejected_by_name(self):
        with pytest.raises(ValueError) as err:
            decode_request(_raw_request(jobz=2, Backend="packed"))
        assert "'jobz'" in str(err.value)
        assert "'Backend'" in str(err.value)

    @pytest.mark.parametrize("seed", [None, 1.5, True, "7"])
    def test_non_integer_seed_rejected(self, seed):
        with pytest.raises(ValueError, match="seed"):
            decode_request(_raw_request(seed=seed))

    def test_non_string_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            decode_request(_raw_request(backend=3))

    def test_fault_rates_object_decodes_to_dataclass(self):
        raw = _raw_request(engine_kwargs={
            "fault_rates": dataclasses.asdict(DEFAULT_FAULT_RATES)})
        decoded = decode_request(raw)["engine_kwargs"]["fault_rates"]
        assert isinstance(decoded, GateFaultRates)
        assert decoded == DEFAULT_FAULT_RATES

    def test_bad_fault_rates_field_rejected(self):
        raw = _raw_request(engine_kwargs={"fault_rates": {"nand9": 0.1}})
        with pytest.raises(ValueError, match="fault_rates"):
            decode_request(raw)

    def test_stdio_backend_pins_request_backend(self):
        img = _image(6, seed=8)
        inputs = gamma_correct_inputs(img)
        refs = {}
        for backend in ("unpacked", "packed"):
            with use_backend(backend):
                refs[backend], _ = run_tiled(
                    "gamma_correct", inputs, 32, tile=3, jobs=1, seed=2,
                    kernel_kwargs={"gamma": 0.5})
        base = {"kernel": "gamma_correct",
                "inputs": {"image": img.tolist()}, "length": 32, "tile": 3,
                "seed": 2, "kernel_kwargs": {"gamma": 0.5}}
        requests = [dict(base, id="u", backend="unpacked"),
                    dict(base, id="p", backend="packed"),
                    dict(base, id="x", backend="nope")]
        stdin = io.StringIO("\n".join(map(json.dumps, requests)) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=2) == 0
        got = {r["id"]: r
               for r in map(json.loads, stdout.getvalue().splitlines())}
        # pre-fix behaviour silently dropped "backend"; now it must pin
        # the execution backend (and an unknown name must fail loudly)
        assert got["u"]["ok"] is True and got["p"]["ok"] is True
        np.testing.assert_array_equal(np.array(got["u"]["output"]),
                                      refs["unpacked"])
        np.testing.assert_array_equal(np.array(got["p"]["output"]),
                                      refs["packed"])
        assert got["x"]["ok"] is False and "nope" in got["x"]["error"]


# ----------------------------------------------------------------------
# response encoding strictness
# ----------------------------------------------------------------------
class TestStrictEncoding:
    def test_nonfinite_values_become_null_and_counted(self):
        ledger = types.SimpleNamespace(energy_j=float("nan"),
                                       latency_s=float("inf"))
        img = np.array([[1.0, np.nan], [np.inf, 2.0]])
        line = encode_response(7, img, ledger)
        assert "NaN" not in line and "Infinity" not in line
        payload = json.loads(line)   # strict by default: literals explode
        assert payload["ok"] is True
        assert payload["nonfinite"] == 4
        assert payload["output"][0] == [1.0, None]
        assert payload["output"][1] == [None, 2.0]
        assert payload["energy_j"] is None
        assert payload["latency_s"] is None

    def test_finite_response_has_no_nonfinite_field(self):
        ledger = types.SimpleNamespace(energy_j=1.5e-9, latency_s=2.5e-6)
        payload = json.loads(encode_response(1, np.ones((2, 2)), ledger))
        assert "nonfinite" not in payload
        assert payload["output"] == [[1.0, 1.0], [1.0, 1.0]]


# ----------------------------------------------------------------------
# warmup barrier
# ----------------------------------------------------------------------
class TestWarmupBarrier:
    def test_warmup_returns_every_worker_pid(self):
        with WorkerPool(3) as pool:
            warmed = pool.warmup()
            assert len(warmed) == 3
            assert warmed == set(pool.worker_pids())


# ----------------------------------------------------------------------
# BENCH_*.json record schema
# ----------------------------------------------------------------------
class TestBenchRecords:
    def test_write_load_roundtrip_coerces_numpy(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_record(path, "x", config={"jobs": np.int64(4)},
                           results={"speedup": np.float64(2.5),
                                    "curve": np.arange(3.0)})
        record = load_bench_record(path)
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["config"]["jobs"] == 4
        assert record["results"]["speedup"] == 2.5
        assert record["results"]["curve"] == [0.0, 1.0, 2.0]

    @pytest.mark.parametrize("mutate, match", [
        (lambda r: r.pop("utc"), "missing"),
        (lambda r: r.__setitem__("schema", 99), "schema"),
        (lambda r: r.__setitem__("bench", "No Caps!"), "bench name"),
        (lambda r: r.__setitem__("utc", "yesterday"), "timestamp"),
        (lambda r: r.__setitem__("config", [1, 2]), "config"),
        (lambda r: r["results"].__setitem__("x", float("nan")),
         "strict JSON"),
    ])
    def test_validator_rejects_malformed_records(self, mutate, match):
        record = bench_record("ok", {"a": 1}, {"b": 2.0})
        mutate(record)
        with pytest.raises(ValueError, match=match):
            validate_bench_record(record)

    def test_nan_result_fails_at_write_time(self, tmp_path):
        with pytest.raises(ValueError, match="strict JSON"):
            write_bench_record(tmp_path / "BENCH_bad.json", "bad",
                               config={}, results={"x": float("nan")})

    def test_existing_root_records_are_schema_valid(self):
        # run_report.py fails loudly on a malformed trajectory record;
        # this pins the same property in tier 1 for whatever records the
        # working tree currently holds.
        for path in sorted(ROOT.glob("BENCH_*.json")):
            record = load_bench_record(path)
            assert record["bench"]


# ----------------------------------------------------------------------
# load harness plumbing (benchmarks/ is not a package: load by path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def loadgen():
    spec = importlib.util.spec_from_file_location(
        "loadgen", ROOT / "benchmarks" / "loadgen.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLoadHarness:
    def test_trace_mixes_templates_and_seeds(self, loadgen):
        templates = loadgen.build_templates(6, 10, 32, 3)
        names = [t["name"] for t in templates]
        assert len(set(names)) == len(templates) == 4
        assert {t["backend"] for t in templates} == {"packed", "unpacked"}
        assert any("fault_rates" in t["engine_kwargs"] for t in templates)
        trace = loadgen.build_trace(16, templates)
        assert {tidx for tidx, _ in trace} == set(range(len(templates)))
        assert all(0 <= seed < loadgen.SEED_CYCLE for _, seed in trace)
        assert trace == loadgen.build_trace(16, templates)   # deterministic

    def test_reference_cache_caches_run_tiled_oracle(self, loadgen):
        templates = loadgen.build_templates(6, 10, 32, 3)
        refs = loadgen.ReferenceCache(templates)
        first = refs.get(0, 1)
        assert refs.get(0, 1) is first   # cached, not recomputed
        t = templates[0]
        with use_backend(t["backend"]):
            direct, _ = run_tiled(t["kernel"], t["inputs"], t["length"],
                                  tile=t["tile"], jobs=1, seed=1,
                                  engine_kwargs=t["engine_kwargs"],
                                  kernel_kwargs=t["kernel_kwargs"])
        np.testing.assert_array_equal(first, direct)

    def test_summarise_flags_mangled_response(self, loadgen):
        templates = loadgen.build_templates(6, 10, 32, 3)
        refs = loadgen.ReferenceCache(templates)
        good = refs.get(0, 0)
        records = [
            {"tidx": 0, "seed": 0, "ok": True, "output": good,
             "t_submit": 0.0, "t_done": 0.1},
            {"tidx": 0, "seed": 0, "ok": True, "output": good + 1.0,
             "t_submit": 0.0, "t_done": 0.3},
        ]
        raw = {"records": records, "elapsed_s": 0.3, "stats": {},
               "killed_workers": 0}
        results = loadgen.summarise(raw, [(0, 0), (0, 0)], templates, 0.0)
        assert results["ok"] == 2
        assert results["incorrect"] == 1   # the mangled response
        assert results["latency_s"]["p50"] == pytest.approx(0.2)
        assert results["elapsed_s"] == pytest.approx(0.3)
        assert results["saturation_rps"] == pytest.approx(2 / 0.3)
