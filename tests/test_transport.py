"""Shared-memory scene transport: identity, caching, hygiene, fast paths.

Covers the contracts of :mod:`repro.serve.transport` and the satellites
that ride with it:

* the content-addressed :class:`SceneStore` — publish/hit/release
  refcounting, ``put_scene`` pins, LRU eviction, close-is-final;
* shm-reference transport is **bit-identical** to the copy transport and
  to ``run_tiled(jobs=1)``, including through scene handles;
* shared-memory **hygiene**: no orphaned ``/dev/shm`` segments and no
  ``resource_tracker`` noise after normal shutdown, after a cancelled
  request, and after a SIGKILL'd worker mid-request;
* the cached ``_validate_task_kwargs`` introspection probes a throwaway
  engine once per distinct engine-kwargs combination (and never caches
  failures);
* the sparse fault scatter short-circuits a zero-site draw at every
  layer (engine, ``StreamBatch.flip_at``, backend ``scatter_flip``)
  without touching the payload.
"""

import asyncio
import gc
import multiprocessing
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.apps import executor
from repro.apps.executor import KERNELS, run_tiled
from repro.apps.filters import gamma_correct_inputs
from repro.apps.images import natural_scene
from repro.core.backend import get_backend, use_backend
from repro.core.streambatch import StreamBatch
from repro.imsc.engine import InMemorySCEngine
from repro.serve import SceneStore, Scheduler, ServingClient, WorkerPool
from repro.serve.transport import SCENE_PREFIX, fetch_tile, scene_digest

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="test kernels are registered in-process and reach "
                         "the workers only under the fork start method")


@pytest.fixture(autouse=True)
def _collect_stray_stores():
    """Schedulers left to the garbage collector by other test modules
    unlink their scene store through a ``weakref.finalize`` callback; run
    the collector first so the ``/dev/shm`` census below only ever sees
    segments created by the current test."""
    gc.collect()
    yield


def _image(size=12, seed=3):
    return natural_scene(size, size, np.random.default_rng(seed))


def _my_segments():
    """Live /dev/shm scene segments created by *this* process."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        pytest.skip("no /dev/shm on this platform")
    tag = f"-{os.getpid()}-"
    return sorted(n for n in os.listdir(shm_dir)
                  if n.startswith(SCENE_PREFIX) and tag in n)


# ----------------------------------------------------------------------
# SceneStore: content addressing + refcounted lifetime
# ----------------------------------------------------------------------
class TestSceneStore:
    def test_digest_is_order_invariant_and_content_sensitive(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.ones((2, 3))
        d1 = scene_digest({"x": a, "y": b})
        d2 = scene_digest({"y": b, "x": a})
        assert d1 == d2
        assert scene_digest({"x": a + 1, "y": b}) != d1
        assert scene_digest({"z": a, "y": b}) != d1

    def test_publish_hit_release_unlink(self):
        inputs = {"image": _image(8)}
        with SceneStore(max_cached_scenes=0) as store:
            t1 = store.publish(inputs)
            assert not t1.hit and t1.bytes_shipped == inputs["image"].nbytes
            assert len(_my_segments()) == 1
            t2 = store.publish(inputs)
            assert t2.hit and t2.bytes_shipped == 0
            assert t2.digest == t1.digest
            store.release(t1.digest)
            assert store.resident == 1   # t2's ref still holds it
            store.release(t2.digest)
            assert store.resident == 0
            assert _my_segments() == []
        assert _my_segments() == []

    def test_cache_keeps_idle_scene_resident_for_next_request(self):
        inputs = {"image": _image(8)}
        with SceneStore() as store:
            t1 = store.publish(inputs)
            store.release(t1.digest)
            assert store.resident == 1   # cached across requests
            t2 = store.publish(inputs)
            assert t2.hit
            store.release(t2.digest)
        assert _my_segments() == []

    def test_lru_eviction_only_touches_idle_scenes(self):
        with SceneStore(max_cached_scenes=1) as store:
            busy = store.publish({"image": _image(8, seed=1)})   # ref held
            idle = store.publish({"image": _image(8, seed=2)})
            store.release(idle.digest)
            store.release(store.publish({"image": _image(8, seed=3)}).digest)
            # the idle seed=2 scene was evicted; the busy one survives
            assert store.resident == 2
            with pytest.raises(KeyError, match="unknown or expired"):
                store.checkout(idle.digest)
            store.checkout(busy.digest)
            store.release(busy.digest)
            store.release(busy.digest)

    def test_pin_survives_eviction_until_unpin(self):
        inputs = {"image": _image(8)}
        with SceneStore(max_cached_scenes=0) as store:
            digest = store.pin(inputs).digest
            assert store.resident == 1
            fields, shape = store.checkout(digest)
            assert shape == inputs["image"].shape
            assert [f[0] for f in fields] == ["image"]
            store.release(digest)
            assert store.resident == 1   # the pin holds it
            store.unpin(digest)
            assert store.resident == 0
        assert _my_segments() == []

    def test_close_is_final_and_idempotent(self):
        store = SceneStore()
        store.publish({"image": _image(8)})
        store.close()
        store.close()
        assert _my_segments() == []
        with pytest.raises(RuntimeError, match="closed"):
            store.publish({"image": _image(8)})

    def test_dropped_store_unlinks_via_finalizer(self):
        store = SceneStore()
        store.publish({"image": _image(8)})
        assert len(_my_segments()) == 1
        del store
        import gc
        gc.collect()
        assert _my_segments() == []

    def test_fetch_tile_matches_parent_side_slice(self):
        img = _image(10)
        aux = img * 0.5
        with SceneStore() as store:
            t = store.publish({"image": img, "aux": aux})
            ref = store.tile_ref(t.digest, (2, 7, 1, 9))
            got = fetch_tile(ref)
            np.testing.assert_array_equal(
                got["image"], img[2:7, 1:9].copy().ravel())
            np.testing.assert_array_equal(
                got["aux"], aux[2:7, 1:9].copy().ravel())
            # copies, not shm views: mutating the result is kernel-safe
            got["image"][:] = -1.0
            np.testing.assert_array_equal(
                fetch_tile(ref)["image"], img[2:7, 1:9].ravel())
            store.release(t.digest)


# ----------------------------------------------------------------------
# bit-identity: shm transport == copy transport == run_tiled(jobs=1)
# ----------------------------------------------------------------------
class TestTransportIdentity:
    @pytest.mark.parametrize("backend", ("unpacked", "packed"))
    def test_run_tiled_scene_store_matches_in_process(self, backend):
        img = _image(10, seed=8)
        inputs = gamma_correct_inputs(img)
        kwargs = dict(tile=4, seed=6, kernel_kwargs={"gamma": 0.5})
        with use_backend(backend):
            base, led1 = run_tiled("gamma_correct", inputs, 32, jobs=1,
                                   **kwargs)
            with SceneStore() as store, WorkerPool(2) as pool:
                via_shm, led2 = run_tiled("gamma_correct", inputs, 32,
                                          pool=pool, scene_store=store,
                                          **kwargs)
        np.testing.assert_array_equal(base, via_shm)
        assert led2.energy_j == pytest.approx(led1.energy_j)
        assert _my_segments() == []

    def test_scheduler_shm_and_copy_agree_and_count_hits(self):
        img = _image(10)
        inputs = gamma_correct_inputs(img)
        base, _ = run_tiled("gamma_correct", inputs, 32, tile=4, jobs=1,
                            seed=5, kernel_kwargs={"gamma": 0.7})
        backend = get_backend().name

        async def serve(transport):
            with WorkerPool(2) as pool:
                scheduler = Scheduler(pool, transport=transport)
                out = await asyncio.gather(*[
                    scheduler.submit_app(
                        "gamma_correct", inputs, 32, tile=4, seed=5,
                        kernel_kwargs={"gamma": 0.7}, backend=backend)
                    for _ in range(3)])
                stats = scheduler.stats()
                await scheduler.drain()
                scheduler.close()
                return out, stats

        for transport in ("shm", "copy"):
            served, stats = asyncio.run(serve(transport))
            for img_out, _ in served:
                np.testing.assert_array_equal(base, img_out)
            cache = stats["scene_cache"]
            assert stats["transport"] == transport
            if transport == "shm":
                # same scene three times: one miss, then hits, and only
                # the miss shipped bytes
                assert cache["misses"] == 1 and cache["hits"] == 2
                total = sum(int(a.nbytes) for a in inputs.values())
                assert cache["bytes_shipped"] == total
                assert stats["scene_store"]["hits"] >= 2
            else:
                assert cache["hits"] == 0 and cache["misses"] == 3
        assert _my_segments() == []

    def test_put_scene_handle_round_trip(self):
        img = _image(10)
        inputs = gamma_correct_inputs(img)
        base, _ = run_tiled("gamma_correct", inputs, 32, tile=4, seed=2,
                            kernel_kwargs={"gamma": 0.4})
        with ServingClient(jobs=2) as client:
            digest = client.put_scene(inputs)
            out1, _ = client.request("gamma_correct", None, 32, tile=4,
                                     seed=2, kernel_kwargs={"gamma": 0.4},
                                     scene=digest)
            out2, _ = client.request("gamma_correct", None, 32, tile=4,
                                     seed=2, kernel_kwargs={"gamma": 0.4},
                                     scene=digest)
            client.drop_scene(digest)
            stats = client.stats()
        np.testing.assert_array_equal(base, out1)
        np.testing.assert_array_equal(base, out2)
        # handle requests are pure hits: nothing shipped after the pin
        assert stats["scene_cache"]["hits"] == 2
        assert stats["scene_cache"]["misses"] == 0
        assert _my_segments() == []

    def test_unknown_scene_handle_fails_cleanly(self):
        with ServingClient(jobs=1) as client:
            with pytest.raises(Exception, match="unknown or expired"):
                client.request("gamma_correct", None, 32, tile=4,
                               scene="deadbeef" * 8)
            # the pool is not poisoned
            img = _image(8)
            out, _ = client.request("gamma_correct",
                                    gamma_correct_inputs(img), 32, tile=4)
            assert out.shape == img.shape
        assert _my_segments() == []


# ----------------------------------------------------------------------
# hygiene: teardown paths must not leak segments
# ----------------------------------------------------------------------
def _slow_kernel(engine, image, length):
    import time
    time.sleep(0.05)
    return image * 0.0


def _kill_kernel(engine, image, length):
    os._exit(13)


class TestShmHygiene:
    def test_no_segments_after_normal_shutdown(self):
        img = _image(10)
        with ServingClient(jobs=2) as client:
            for _ in range(2):
                client.request("gamma_correct", gamma_correct_inputs(img),
                               32, tile=4)
            assert len(_my_segments()) >= 1   # scene resident (cached)
        assert _my_segments() == []

    @needs_fork
    def test_no_segments_after_cancelled_request(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "slow", _slow_kernel)
        img = _image(12)

        async def cancel_mid_flight(pool):
            scheduler = Scheduler(pool)
            task = asyncio.ensure_future(scheduler.submit_app(
                "slow", {"image": img}, 16, tile=3))
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await scheduler.drain()
            scheduler.close()

        with WorkerPool(2, mp_context="fork") as pool:
            asyncio.run(cancel_mid_flight(pool))
        assert _my_segments() == []

    @needs_fork
    def test_no_segments_after_worker_death_mid_request(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "die", _kill_kernel)
        img = _image(10)

        async def die_then_recover(pool):
            scheduler = Scheduler(pool)
            with pytest.raises(Exception):
                await scheduler.submit_app("die", {"image": img}, 16,
                                           tile=4)
            # pool respawned: a real request still works, over shm
            out, _ = await scheduler.submit_app(
                "gamma_correct", gamma_correct_inputs(img), 32, tile=4)
            assert out.shape == img.shape
            await scheduler.drain()
            scheduler.close()

        with WorkerPool(2, mp_context="fork") as pool:
            asyncio.run(die_then_recover(pool))
        assert _my_segments() == []

    def test_pool_close_tears_down_adopted_store(self):
        store = SceneStore()
        store.publish({"image": _image(8)})
        pool = WorkerPool(1, scene_store=store)
        pool.close()
        assert store.closed
        assert _my_segments() == []

    @pytest.mark.parametrize("mp_context", [
        None,
        pytest.param("fork", marks=needs_fork),
    ])
    def test_subprocess_serving_emits_no_tracker_warnings(self, mp_context):
        """A full client lifecycle leaves no tracker noise on stderr.

        Runs in a subprocess because resource_tracker warnings surface at
        interpreter exit — exactly where an in-process test can't look.
        The fork variant guards the nastiest tracker trap: workers forked
        before the parent's tracker exists would each spawn a private
        tracker on a ``SharedMemory`` attach and emit bogus "leaked
        shared_memory" warnings at exit; the mmap attach path must not.
        """
        code = textwrap.dedent(f"""
            import numpy as np
            from repro.apps.filters import gamma_correct_inputs
            from repro.apps.images import natural_scene
            from repro.serve import ServingClient
            img = natural_scene(10, 10, np.random.default_rng(0))
            inputs = gamma_correct_inputs(img)
            with ServingClient(jobs=2, mp_context={mp_context!r}) as client:
                digest = client.put_scene(inputs)
                for _ in range(2):
                    client.request("gamma_correct", None, 16, tile=4,
                                   scene=digest)
                client.request("gamma_correct", inputs, 16, tile=4)
                client.drop_scene(digest)
            print("DONE")
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "DONE" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


# ----------------------------------------------------------------------
# satellite: cached request validation
# ----------------------------------------------------------------------
class TestValidationCache:
    def test_probe_engine_constructed_once_per_kwargs(self, monkeypatch):
        executor._engine_param_names()   # warm with the real signature
        calls = {"n": 0}
        real = executor.InMemorySCEngine

        class Counting(real):
            def __init__(self, *args, **kwargs):
                calls["n"] += 1
                super().__init__(*args, **kwargs)

        # the probe resolves the engine from its home module at call time
        monkeypatch.setattr("repro.imsc.engine.InMemorySCEngine", Counting)
        executor._ENGINE_PROBE_CACHE.clear()
        kwargs = {"cell_model": "column", "fault_sampling": "sparse"}
        for _ in range(3):
            executor._validate_task_kwargs("gamma_correct", ["image"],
                                           dict(kwargs), {"gamma": 0.5})
        assert calls["n"] == 1
        executor._validate_task_kwargs("gamma_correct", ["image"],
                                       {}, {"gamma": 0.5})
        assert calls["n"] == 2
        executor._ENGINE_PROBE_CACHE.clear()

    def test_invalid_engine_values_raise_every_time(self, monkeypatch):
        executor._engine_param_names()
        calls = {"n": 0}
        real = executor.InMemorySCEngine

        class Counting(real):
            def __init__(self, *args, **kwargs):
                calls["n"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr("repro.imsc.engine.InMemorySCEngine", Counting)
        executor._ENGINE_PROBE_CACHE.clear()
        for _ in range(2):
            with pytest.raises(ValueError, match="cell_model"):
                executor._validate_task_kwargs(
                    "gamma_correct", ["image"],
                    {"cell_model": "bogus"}, {"gamma": 0.5})
        assert calls["n"] == 2   # failures are never cached
        executor._ENGINE_PROBE_CACHE.clear()

    def test_kernel_signature_cache_follows_rebinding(self, monkeypatch):
        def narrow_kernel(engine, image, length):
            return image

        def wide_kernel(engine, image, extra, length):
            return image

        monkeypatch.setitem(KERNELS, "gamma_correct", narrow_kernel)
        executor._validate_task_kwargs("gamma_correct", ["image"], {}, {})
        with pytest.raises(ValueError, match="missing required"):
            monkeypatch.setitem(KERNELS, "gamma_correct", wide_kernel)
            executor._validate_task_kwargs("gamma_correct", ["image"],
                                           {}, {})


# ----------------------------------------------------------------------
# satellite: zero-site sparse fault draw is a no-op fast path
# ----------------------------------------------------------------------
class TestZeroFlipShortCircuit:
    @pytest.mark.parametrize("backend", ("unpacked", "packed"))
    def test_scatter_flip_empty_sites_returns_payload_unchanged(
            self, backend):
        with use_backend(backend):
            rng = np.random.default_rng(0)
            sb = StreamBatch.from_bits(
                (rng.random((2, 3, 70)) < 0.5).astype(np.uint8))
            empty = np.empty(0, dtype=np.int64)
            out = sb.backend.scatter_flip(sb.data, empty, sb.length)
            assert out is sb.data   # no copy, no round-trip
            assert sb.flip_at(empty) is sb

    @pytest.mark.parametrize("backend", ("unpacked", "packed"))
    def test_zero_site_draw_skips_scatter_and_keeps_bits(self, backend,
                                                         monkeypatch):
        with use_backend(backend):
            eng = InMemorySCEngine(fault_sampling="sparse", rng=7)
            rng = np.random.default_rng(1)
            sb = StreamBatch.from_bits(
                (rng.random((2, 4, 64)) < 0.5).astype(np.uint8))
            before = np.array(sb.data, copy=True)

            def boom(*args, **kwargs):
                raise AssertionError("scatter_flip must not run for k=0")

            monkeypatch.setattr(type(sb.backend), "scatter_flip", boom)
            out = eng._flip_sparse(sb, 0.0)   # Binomial(n, 0) == 0
            assert out is sb
            np.testing.assert_array_equal(out.data, before)
