"""Unit/integration tests for repro.analysis (tables, experiments, sweeps)."""

import pytest

from repro.analysis.tables import dict_grid_to_rows, format_value, render_table
from repro.analysis.sweep import grid, run_sweep
from repro.analysis import experiments as ex


class TestTables:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value("x") == "x"
        assert format_value(3) == "3"
        assert format_value(0.125) == "0.125"
        assert "e" in format_value(1.2e-7)

    def test_render(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "2.500" in out and "-" in out

    def test_row_length_check(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_dict_grid(self):
        rows = dict_grid_to_rows({"r": {"x": 1, "y": 2}}, ["y", "x"])
        assert rows == [["r", 2, 1]]


class TestSweep:
    def test_grid(self):
        pts = grid(a=[1, 2], b=["x"])
        assert pts == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_run_sweep(self):
        recs = run_sweep(lambda a: a * 2, grid(a=[1, 2, 3]))
        assert [r["result"] for r in recs] == [2, 4, 6]


class TestTable1:
    def test_structure_and_orderings(self):
        t1 = ex.table1_sng_mse(lengths=(32, 128), segment_sizes=(8,),
                               samples=4_000, seed=0)
        assert set(t1) == {"IMSNG M=8", "Software", "PRNG (LFSR)",
                          "QRNG (Sobol)"}
        for row in t1.values():
            # MSE decreases with stream length for every source.
            assert row[128] < row[32]
        # QRNG is by far the best; LFSR the worst at short lengths.
        assert t1["QRNG (Sobol)"][32] < t1["Software"][32] / 5
        assert t1["PRNG (LFSR)"][32] > t1["Software"][32]
        # IMSNG tracks the software baseline within 2x.
        assert t1["IMSNG M=8"][32] < 2 * t1["Software"][32]

    def test_jobs_do_not_change_the_table(self):
        # The runner routes through the factory-sharded harness: every
        # cell is a pure function of (seed, chunk), so fanning the
        # Monte-Carlo chunks over workers cannot move the table.
        kwargs = dict(lengths=(32,), segment_sizes=(8,), samples=10_000,
                      seed=3)   # > one 8192-sample chunk, so jobs=3 fans out
        assert ex.table1_sng_mse(jobs=1, **kwargs) == \
            ex.table1_sng_mse(jobs=3, **kwargs)


class TestTable2:
    def test_structure(self):
        t2 = ex.table2_ops_mse(lengths=(32,), ops=("multiplication",
                                                   "division"),
                               sources=("software", "sobol"),
                               samples=2_000, seed=1)
        assert set(t2) == {"multiplication", "division"}
        assert t2["multiplication"]["sobol"][32] < \
            t2["multiplication"]["software"][32]
        assert t2["division"]["software"][32] > \
            t2["multiplication"]["software"][32]

    def test_jobs_do_not_change_the_table(self):
        kwargs = dict(lengths=(32,), ops=("multiplication",),
                      sources=("software", "lfsr"), samples=6_000,
                      seed=2)   # > one 4096-sample chunk, so jobs=2 fans out
        assert ex.table2_ops_mse(jobs=1, **kwargs) == \
            ex.table2_ops_mse(jobs=2, **kwargs)


class TestTable3:
    def test_all_designs_present(self):
        t3 = ex.table3_hw_cost()
        assert set(t3) == {"CMOS (LFSR)", "CMOS (Sobol)", "ReRAM (IMSNG-opt)"}
        for rows in t3.values():
            assert set(rows) == {"Multiplication", "Addition", "Subtraction",
                                 "Division"}

    def test_headline_relations(self):
        t3 = ex.table3_hw_cost()
        # ReRAM single-cycle ops beat the bit-serial CMOS latency.
        assert (t3["ReRAM (IMSNG-opt)"]["Multiplication"]["latency_ns"]
                < t3["CMOS (LFSR)"]["Multiplication"]["latency_ns"])
        # CORDIV division is the ReRAM design's latency outlier.
        assert (t3["ReRAM (IMSNG-opt)"]["Division"]["latency_ns"]
                > 100 * t3["ReRAM (IMSNG-opt)"]["Multiplication"]["latency_ns"])


class TestTable4:
    def test_grid_and_claims(self):
        t4 = ex.table4_quality(lengths=(32, 128), runs=1, size=24, seed=0)
        assert "Binary CIM [ideal]" in t4
        assert "SC N=32 [faulty]" in t4
        # Binary CIM ideal is near-perfect.
        assert t4["Binary CIM [ideal]"]["compositing"][0] > 99
        # SC quality rises with N (fault-free matting).
        assert (t4["SC N=128 [ideal]"]["matting"][1]
                > t4["SC N=32 [ideal]"]["matting"][1])
        drops = ex.quality_drop_summary(t4)
        # The headline: binary CIM collapses under faults, SC does not.
        assert drops["bincim_avg_ssim_drop_pct"] > \
            4 * drops["sc_avg_ssim_drop_pct"]


class TestFigures:
    def test_fig4_orderings(self):
        f4 = ex.fig4_energy()
        for app in ("compositing", "interpolation", "matting"):
            reram = f4[app]["ReRAM SC"]
            # ReRAM SC savings decrease monotonically with N.
            ns = sorted(reram)
            assert all(reram[a] > reram[b] for a, b in zip(ns, ns[1:]))
            # ReRAM beats CMOS at N = 32 and 64 (paper Sec. IV-B).
            for n in (32, 64):
                assert reram[n] > f4[app]["CMOS SC"][n]
        # Bilinear interpolation: ReRAM wins at every length.
        for n, v in f4["interpolation"]["ReRAM SC"].items():
            assert v > f4["interpolation"]["CMOS SC"][n]
        # At N = 256 compositing flips to CMOS (SBS write cost dominates).
        assert (f4["compositing"]["CMOS SC"][256]
                > f4["compositing"]["ReRAM SC"][256])

    def test_fig5_orderings(self):
        f5 = ex.fig5_throughput()
        # ReRAM SC throughput beats binary CIM for MAJ/MUX-based apps.
        for app in ("compositing", "interpolation"):
            for v in f5[app]["ReRAM SC"].values():
                assert v > 1.0
        # CORDIV's serial recurrence makes matting the slow case.
        assert f5["matting"]["ReRAM SC"][256] < 1.0

    def test_headline_factors(self):
        s = ex.summarize_figures(ex.fig4_energy(), ex.fig5_throughput())
        # Paper: 2.8x energy and 2.16x throughput vs binary CIM;
        # 1.15x energy and 1.39x throughput vs CMOS.  Shapes must hold
        # within a factor-2 band.
        assert 1.4 < s["reram_energy_savings_vs_bincim"] < 5.6
        assert 1.1 < s["reram_throughput_vs_bincim"] < 4.4
        assert 0.6 < s["reram_vs_cmos_energy"] < 2.3
        assert 0.7 < s["reram_vs_cmos_throughput"] < 2.8


class TestImsngVariants:
    def test_paper_numbers(self):
        v = ex.imsng_variants()
        assert v["IMSNG-naive"]["latency_ns"] == pytest.approx(395.4, rel=0.01)
        assert v["IMSNG-opt"]["latency_ns"] == pytest.approx(78.2, rel=0.01)
        assert v["IMSNG-naive"]["energy_nj"] == pytest.approx(10.23, rel=0.01)
        assert v["IMSNG-opt"]["energy_nj"] == pytest.approx(3.42, rel=0.02)
        # The optimisation is ~5x latency and ~3x energy.
        assert v["IMSNG-naive"]["latency_ns"] / \
            v["IMSNG-opt"]["latency_ns"] > 4.5
