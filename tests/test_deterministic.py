"""Tests for repro.core.deterministic (exact SC via exhaustive pairing)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deterministic import (
    clock_division_pair,
    deterministic_multiply,
    relatively_prime_pair,
    rotation_pair,
    unary_bits,
)


class TestUnaryBits:
    def test_pattern(self):
        assert list(unary_bits(0.5, 4)) == [1, 1, 0, 0]

    def test_range(self):
        with pytest.raises(ValueError):
            unary_bits(1.5, 4)


def _exact(x, y, lx, ly):
    return (round(x * lx) / lx) * (round(y * ly) / ly)


class TestPairings:
    @pytest.mark.parametrize("x,y", [(0.5, 0.25), (0.3, 0.7), (1.0, 0.2),
                                     (0.0, 0.9)])
    def test_relatively_prime_exact(self, x, y):
        a, b = relatively_prime_pair(x, y, 15, 16)
        assert float((a & b).value()) == pytest.approx(_exact(x, y, 15, 16))

    def test_relatively_prime_requires_coprime(self):
        with pytest.raises(ValueError):
            relatively_prime_pair(0.5, 0.5, 8, 16)

    @pytest.mark.parametrize("x,y", [(0.5, 0.25), (0.3, 0.7), (0.9, 0.1)])
    def test_rotation_exact(self, x, y):
        a, b = rotation_pair(x, y, 16)
        assert float((a & b).value()) == pytest.approx(_exact(x, y, 16, 16))

    @pytest.mark.parametrize("x,y", [(0.5, 0.25), (0.3, 0.7)])
    def test_clock_division_exact(self, x, y):
        a, b = clock_division_pair(x, y, 16)
        assert float((a & b).value()) == pytest.approx(_exact(x, y, 16, 16))

    def test_lengths(self):
        a, b = rotation_pair(0.5, 0.5, 8)
        assert a.length == b.length == 64


class TestDeterministicMultiply:
    @pytest.mark.parametrize("scheme", ["rotation", "clock_division",
                                        "relatively_prime"])
    def test_schemes_agree(self, scheme):
        # Quantisation differs per scheme (relatively-prime uses a 17-level
        # grid for the second operand), so allow one grid step.
        got = deterministic_multiply(0.5, 0.5, 16, scheme)
        assert got == pytest.approx(0.25, abs=1 / 16 / 4 + 1e-9)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            deterministic_multiply(0.5, 0.5, 16, "telepathy")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 16), st.integers(0, 16))
    def test_rotation_property_exact_on_grid(self, kx, ky):
        # On the exact L-grid the result has zero error.
        x = kx / 16
        y = ky / 16
        assert deterministic_multiply(x, y, 16, "rotation") == pytest.approx(
            x * y, abs=1e-12)
