"""Unit tests for repro.apps (images, metrics, the three applications)."""

import numpy as np
import pytest

from repro.apps import (
    checkerboard,
    composite_bincim,
    composite_float,
    composite_sc,
    from_uint8,
    gradient_image,
    matting_bincim,
    matting_float,
    matting_sc,
    mse,
    natural_scene,
    neighbour_grid,
    psnr,
    quality_pair,
    run_app,
    scene_triplet,
    soft_alpha_matte,
    ssim,
    to_uint8,
    upscale_bincim,
    upscale_float,
    upscale_sc,
)
from repro.bincim.design import BinaryCimDesign
from repro.imsc.engine import InMemorySCEngine


class TestImages:
    def test_ranges(self, rng):
        for img in (gradient_image(16, 16), checkerboard(16, 16, 4),
                    natural_scene(16, 16, rng), soft_alpha_matte(16, 16, rng=rng)):
            assert img.shape == (16, 16)
            assert img.min() >= 0.0 and img.max() <= 1.0

    def test_gradient_monotone(self):
        img = gradient_image(8, 8, angle_deg=0.0)
        assert np.all(np.diff(img, axis=1) >= 0)

    def test_checkerboard_two_levels(self):
        img = checkerboard(8, 8, 2, low=0.1, high=0.9)
        assert set(np.unique(img)) == {0.1, 0.9}

    def test_alpha_matte_has_soft_edge(self, rng):
        a = soft_alpha_matte(32, 32, rng=rng)
        interior = np.mean((a > 0.05) & (a < 0.95))
        assert interior > 0.02   # a band of intermediate alphas exists

    def test_scene_triplet_shapes(self, rng):
        b, f, a = scene_triplet(12, 12, rng)
        assert b.shape == f.shape == a.shape == (12, 12)

    def test_uint8_roundtrip(self):
        img = np.linspace(0, 1, 256).reshape(16, 16)
        back = from_uint8(to_uint8(img))
        assert np.max(np.abs(back - img)) <= 0.5 / 255 + 1e-9

    def test_uint8_range_check(self):
        with pytest.raises(ValueError):
            to_uint8(np.array([1.5]))


class TestMetrics:
    def test_identical_images(self, small_image):
        assert mse(small_image, small_image) == 0.0
        assert psnr(small_image, small_image) == float("inf")
        assert ssim(small_image, small_image) == pytest.approx(1.0)

    def test_noise_decreases_both(self, small_image, rng):
        noisy = np.clip(small_image + rng.normal(0, 0.1, small_image.shape),
                        0, 1)
        assert psnr(small_image, noisy) < 25
        assert ssim(small_image, noisy) < 0.95

    def test_psnr_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_quality_pair_format(self, small_image):
        s, p = quality_pair(small_image, small_image)
        assert s == pytest.approx(100.0)


class TestCompositing:
    def test_float_reference_bounds(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        c = composite_float(f, b, a)
        assert c.min() >= 0 and c.max() <= 1

    def test_alpha_extremes(self, rng):
        b, f, _ = scene_triplet(16, 16, rng)
        assert np.allclose(composite_float(f, b, np.ones_like(b)), f)
        assert np.allclose(composite_float(f, b, np.zeros_like(b)), b)

    def test_sc_accuracy(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        engine = InMemorySCEngine(rng=0, ideal_stob=True)
        out = composite_sc(engine, f, b, a, 512)
        assert psnr(composite_float(f, b, a), out) > 25

    def test_sc_mux_ablation_similar(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        ref = composite_float(f, b, a)
        maj = composite_sc(InMemorySCEngine(rng=0, ideal_stob=True),
                           f, b, a, 512)
        mux = composite_sc(InMemorySCEngine(rng=0, ideal_stob=True),
                           f, b, a, 512, use_mux=True)
        assert abs(psnr(ref, maj) - psnr(ref, mux)) < 6

    def test_bincim_near_exact(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        out = composite_bincim(BinaryCimDesign(), f, b, a)
        assert psnr(composite_float(f, b, a), out) > 40


class TestInterpolation:
    def test_neighbour_grid_shapes(self, small_image):
        i11, i12, i21, i22, dx, dy, shape = neighbour_grid(small_image, 2)
        assert shape == (32, 32)
        assert i11.size == 32 * 32
        assert dx.min() >= 0 and dx.max() < 1

    def test_float_preserves_source_pixels(self, small_image):
        up = upscale_float(small_image, 2)
        assert up.shape == (32, 32)
        # Align-corners: source pixel (0,0) maps to output (0,0).
        assert up[0, 0] == pytest.approx(small_image[0, 0])

    def test_float_constant_image(self):
        img = np.full((8, 8), 0.4)
        assert np.allclose(upscale_float(img, 2), 0.4)

    def test_sc_accuracy(self, small_image):
        ref = upscale_float(small_image, 2)
        out = upscale_sc(InMemorySCEngine(rng=1, ideal_stob=True),
                         small_image, 512, 2)
        assert psnr(ref, out) > 22

    def test_sc_mux_tree_variant(self, small_image):
        ref = upscale_float(small_image, 2)
        out = upscale_sc(InMemorySCEngine(rng=1, ideal_stob=True),
                         small_image, 512, 2, first_level_maj=False)
        assert psnr(ref, out) > 20

    def test_bincim_near_exact(self, small_image):
        ref = upscale_float(small_image, 2)
        out = upscale_bincim(BinaryCimDesign(), small_image, 2)
        assert psnr(ref, out) > 40


class TestMatting:
    def test_float_recovers_alpha(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        comp = composite_float(f, b, a)
        est = matting_float(comp, b, f)
        # Alpha is recoverable where F and B differ.
        mask = np.abs(f - b) > 0.1
        assert np.abs((est - a)[mask]).mean() < 0.02

    def test_sc_estimation(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        comp = composite_float(f, b, a)
        est = matting_sc(InMemorySCEngine(rng=2, ideal_stob=True),
                         comp, b, f, 512)
        mask = np.abs(f - b) > 0.2
        assert np.abs((est - a)[mask]).mean() < 0.15

    def test_bincim_unclamped_alpha(self, rng):
        b, f, a = scene_triplet(16, 16, rng)
        comp = composite_float(f, b, a)
        est = matting_bincim(BinaryCimDesign(), comp, b, f)
        assert est.shape == a.shape


class TestRunApp:
    @pytest.mark.parametrize("app", ["compositing", "interpolation",
                                     "matting"])
    def test_float_backend_perfect(self, app):
        r = run_app(app, "float", size=16, seed=0)
        assert r.ssim_pct == pytest.approx(100.0, abs=0.1)

    def test_sc_backend_has_ledger(self):
        r = run_app("compositing", "sc", length=32, size=16, seed=0)
        assert r.ledger is not None and r.ledger.energy_j > 0

    def test_quality_improves_with_length(self):
        lo = run_app("compositing", "sc", length=16, size=16, seed=0)
        hi = run_app("compositing", "sc", length=256, size=16, seed=0)
        assert hi.psnr_db > lo.psnr_db

    def test_faults_degrade_bincim(self):
        clean = run_app("matting", "bincim", size=16, seed=0)
        dirty = run_app("matting", "bincim", faulty=True, size=16, seed=0)
        assert dirty.ssim_pct < clean.ssim_pct - 5

    def test_sc_robust_to_faults(self):
        clean = run_app("compositing", "sc", length=128, size=16, seed=0)
        dirty = run_app("compositing", "sc", length=128, faulty=True,
                        size=16, seed=0)
        assert dirty.ssim_pct > clean.ssim_pct - 15

    def test_validation(self):
        with pytest.raises(ValueError):
            run_app("sharpen", "sc")
        with pytest.raises(ValueError):
            run_app("matting", "gpu")
