"""Tests for the mapping layer, wear tracking and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.energy.nvmain import MemorySystem
from repro.imsc.mapping import ScProgram, map_program
from repro.reram.array import CrossbarArray
from repro.reram.wear import RotatingRowAllocator, wear_report


class TestScProgram:
    def test_build_and_streams(self):
        p = (ScProgram(length=64)
             .convert("f").convert("b").convert("a")
             .op("maj3", "c", "f", "b", "a")
             .to_binary("c"))
        assert p.streams == ["a", "b", "c", "f"]
        assert len(p.statements) == 5

    def test_use_before_define(self):
        p = ScProgram()
        with pytest.raises(ValueError):
            p.op("and", "z", "x", "y")

    def test_double_define(self):
        p = ScProgram().convert("x")
        with pytest.raises(ValueError):
            p.convert("x")

    def test_bad_arity(self):
        p = ScProgram().convert("x").convert("y")
        with pytest.raises(ValueError):
            p.op("and", "z", "x")
        with pytest.raises(ValueError):
            p.op("warp", "z", "x", "y")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            ScProgram(length=0)


class TestMapping:
    def _compositing_program(self):
        return (ScProgram(length=128)
                .convert("f").convert("b").convert("a")
                .op("maj3", "c", "f", "b", "a")
                .to_binary("c"))

    def test_rows_allocated(self):
        m = map_program(self._compositing_program(), n_banks=4)
        assert set(m.rows) == {"f", "b", "a", "c"}
        banks = {bank for bank, _ in m.rows.values()}
        assert 3 in banks                   # compute bank used
        assert any(b < 3 for b in banks)    # conversion banks used

    def test_trace_simulates(self):
        m = map_program(self._compositing_program(), n_banks=4)
        res = MemorySystem(4).simulate(m.trace)
        assert res.makespan_s > 0
        # Conversions pipeline: makespan well below the serial sum.
        serial = MemorySystem(2).simulate(
            map_program(self._compositing_program(), n_banks=2).trace)
        assert res.makespan_s < serial.makespan_s

    def test_division_program(self):
        p = (ScProgram(length=32)
             .convert("n").convert("d")
             .divide("q", "n", "d")
             .to_binary("q"))
        m = map_program(p, n_banks=3)
        div_steps = [t for t in m.trace if t.tag == "div"]
        assert len(div_steps) == 32

    def test_mux_three_steps(self):
        p = (ScProgram(length=16)
             .convert("a").convert("b").convert("s")
             .op("mux", "o", "s", "a", "b"))
        m = map_program(p, n_banks=3)
        mux_steps = [t for t in m.trace if t.tag == "mux"]
        assert len(mux_steps) == 3

    def test_row_exhaustion(self):
        p = ScProgram()
        for i in range(5):
            p.convert(f"s{i}")
        with pytest.raises(ValueError):
            map_program(p, n_banks=2, rows_per_mat=2)

    def test_min_banks(self):
        with pytest.raises(ValueError):
            map_program(ScProgram().convert("x"), n_banks=1)


class TestWear:
    def test_report_fields(self):
        arr = CrossbarArray(4, 16, rng=0)
        for i in range(20):
            arr.write_row(0, np.full(16, i % 2, dtype=np.uint8))
        rep = wear_report(arr, writes_per_conversion=1.0)
        assert rep.max_writes == 19
        assert rep.hottest_row == 0
        assert 0 < rep.endurance_fraction < 1
        assert rep.lifetime_conversions == arr.device.params.write_endurance

    def test_rotation_balances(self):
        alloc = RotatingRowAllocator(start_row=8, region_size=4)
        for _ in range(40):
            row = alloc.next_row()
            assert 8 <= row < 12
        assert alloc.imbalance() == pytest.approx(1.0)
        assert alloc.total_allocations == 40
        assert set(alloc.writes_per_row().values()) == {10}

    def test_region_validation(self):
        with pytest.raises(ValueError):
            RotatingRowAllocator(0, 0)


class TestCli:
    def test_table3(self, capsys):
        assert cli_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "ReRAM (IMSNG-opt)" in out

    def test_imsng(self, capsys):
        assert cli_main(["imsng"]) == 0
        out = capsys.readouterr().out
        assert "IMSNG-naive" in out and "SCRIMP" in out

    def test_fig4(self, capsys):
        assert cli_main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_table1_quick(self, capsys):
        assert cli_main(["table1", "--samples", "500"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_bad_target(self):
        with pytest.raises(SystemExit):
            cli_main(["table9"])
