"""Unit tests for repro.core.ops (SC arithmetic semantics)."""

import numpy as np
import pytest

from repro.core import ops
from repro.core.bitstream import Bitstream
from repro.core.sng import ComparatorSng
from repro.core.rng import SoftwareRng


def _sng(seed=0):
    return ComparatorSng(SoftwareRng(8, seed=seed))


N = 16384
TOL = 0.03


class TestMultiplication:
    def test_expectation(self):
        sng = _sng()
        x, y = sng.generate_pair(0.6, 0.5, N, correlated=False)
        assert float(ops.mul_and(x, y).value()) == pytest.approx(0.3, abs=TOL)

    def test_zero_one_identities(self):
        z = Bitstream.zeros(64)
        o = Bitstream.ones(64)
        s = Bitstream.bernoulli(0.5, 64, rng=0)
        assert float(ops.mul_and(s, z).value()) == 0.0
        assert np.array_equal(ops.mul_and(s, o).bits, s.bits)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ops.mul_and(Bitstream.zeros(8), Bitstream.zeros(16))


class TestScaledAddition:
    def test_mux_expectation(self):
        sng = _sng(1)
        x, y = sng.generate_pair(0.8, 0.2, N, correlated=False)
        sel = sng.generate(0.5, N)
        out = ops.scaled_add_mux(x, y, sel)
        assert float(out.value()) == pytest.approx(0.5, abs=TOL)

    def test_maj_expectation(self):
        sng = _sng(2)
        x, y = sng.generate_pair(0.9, 0.1, N, correlated=False)
        r = sng.generate(0.5, N)
        out = ops.scaled_add_maj(x, y, r)
        assert float(out.value()) == pytest.approx(0.5, abs=TOL)

    def test_maj_is_bitwise_majority(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        c = Bitstream([0, 1, 1, 0])
        assert list(ops.scaled_add_maj(a, b, c).bits) == [1, 1, 1, 0]

    def test_mux2_general_blend(self):
        sng = _sng(3)
        a = sng.generate(0.2, N)
        b = sng.generate(0.9, N)
        sel = sng.generate(0.25, N)
        out = ops.mux2(sel, a, b)
        assert float(out.value()) == pytest.approx(
            0.75 * 0.2 + 0.25 * 0.9, abs=TOL)


class TestMux4:
    def test_bilinear_blend(self):
        sng = _sng(4)
        i00 = sng.generate(0.1, N)
        i01 = sng.generate(0.3, N)
        i10 = sng.generate(0.7, N)
        i11 = sng.generate(0.9, N)
        s0 = sng.generate(0.5, N)
        s1 = sng.generate(0.25, N)
        out = ops.mux4(s0, s1, i00, i01, i10, i11)
        expected = (0.5 * (0.75 * 0.1 + 0.25 * 0.3)
                    + 0.5 * (0.75 * 0.7 + 0.25 * 0.9))
        assert float(out.value()) == pytest.approx(expected, abs=TOL)


class TestOrAddition:
    def test_small_operands(self):
        sng = _sng(5)
        x, y = sng.generate_pair(0.2, 0.3, N, correlated=False)
        # exact is x + y - xy = 0.44
        assert float(ops.add_or(x, y).value()) == pytest.approx(0.44, abs=TOL)


class TestSubtraction:
    def test_correlated_abs_difference(self):
        sng = _sng(6)
        x, y = sng.generate_pair(0.7, 0.25, N, correlated=True)
        assert float(ops.sub_xor(x, y).value()) == pytest.approx(0.45, abs=TOL)

    def test_uncorrelated_gives_wrong_answer(self):
        # Sanity check of the correlation requirement itself.
        sng = _sng(7)
        x, y = sng.generate_pair(0.7, 0.25, N, correlated=False)
        v = float(ops.sub_xor(x, y).value())
        assert abs(v - 0.45) > 0.1   # p + q - 2pq = 0.6


class TestMinMax:
    def test_min(self):
        sng = _sng(8)
        x, y = sng.generate_pair(0.35, 0.8, N, correlated=True)
        assert float(ops.min_and(x, y).value()) == pytest.approx(0.35, abs=TOL)

    def test_max(self):
        sng = _sng(9)
        x, y = sng.generate_pair(0.35, 0.8, N, correlated=True)
        assert float(ops.max_or(x, y).value()) == pytest.approx(0.8, abs=TOL)


class TestDivision:
    def test_cordiv_ratio(self):
        sng = _sng(10)
        x, y = sng.generate_pair(0.3, 0.6, N, correlated=True)
        assert float(ops.div_cordiv(x, y).value()) == pytest.approx(
            0.5, abs=0.05)

    def test_cordiv_batch(self):
        sng = _sng(11)
        xs = np.array([0.2, 0.45])
        ys = np.array([0.8, 0.9])
        x, y = sng.generate_pair(xs, ys, N, correlated=True)
        out = ops.div_cordiv(x, y).value()
        assert np.allclose(out, xs / ys, atol=0.05)

    def test_jk_ratio(self):
        sng = _sng(12)
        j = sng.generate(0.3, N)
        k = sng.generate(0.6, N)
        # JK flip-flop settles at j / (j + k) = 1/3.
        assert float(ops.div_jk(j, k).value()) == pytest.approx(1 / 3, abs=0.05)

    def test_jk_truth_table(self):
        # J=1,K=0 sets; J=0,K=1 resets; J=K=1 toggles; J=K=0 holds.
        j = Bitstream([1, 0, 1, 1, 0])
        k = Bitstream([0, 1, 1, 1, 0])
        out = ops.div_jk(j, k, init=0)
        assert list(out.bits) == [1, 0, 1, 0, 0]


class TestNot:
    def test_complement(self):
        s = Bitstream.bernoulli(0.3, N, rng=0)
        assert float(ops.not_stream(s).value()) == pytest.approx(
            1 - float(s.value()))
