"""Golden regression fixtures for Table I (SNG MSE) and Table II (ops MSE).

These seeded Monte-Carlo values were produced by the unpacked reference
backend at the pinned sample counts and are asserted to ~1e-9 relative
tolerance.  They run under whatever backend ``REPRO_BACKEND`` selects, so a
``make test`` sweep proves that backend refactors cannot silently shift
accuracy: every backend must reproduce the reference numbers *bit-exactly*
(the SC math is integer popcounts; any drift means the stream bits changed).

If an intentional semantic change moves these numbers, regenerate the
constants with the recipe in each test's docstring and explain the shift in
the commit message.
"""

import pytest

from repro.core.accuracy import OP_SPECS, op_mse, sng_mse
from repro.core.rng import Lfsr, SobolRng, SoftwareRng
from repro.core.sng import ComparatorSng, IdealBitSource, SegmentSng

REL_TOL = 1e-9

# MSE(%) of stream generation, 2000 samples, seed 0 (Table I methodology).
GOLDEN_SNG_MSE = {
    "software": {32: 0.5252147526910572, 256: 0.06567379677362303},
    "lfsr": {32: 0.8980824068239716, 256: 0.0019965144851197608},
    "sobol": {32: 0.016630310382140884, 256: 0.0004978529158066859},
    "imsng": {32: 0.5040004616846477, 256: 0.06206222196312849},
}

# MSE(%) of each SC op with the software SNG, 1000 samples, seed 1
# (Table II methodology).
GOLDEN_OP_MSE = {
    "multiplication": {32: 0.4278207061894964, 256: 0.052685872854411106},
    "scaled_addition": {32: 0.65134653887571, 256: 0.08467053423842646},
    "scaled_addition_mux": {32: 0.6653347954573002, 256: 0.07885209489570993},
    "approx_addition": {32: 1.4877581868336616, 256: 0.7853345252676992},
    "abs_subtraction": {32: 0.5967205084152243, 256: 0.06518109842156226},
    "division": {32: 1.4537856932711155, 256: 0.1662297813988884},
    "minimum": {32: 0.5884670602715159, 256: 0.06408603958851622},
    "maximum": {32: 0.526353658564341, 256: 0.06540710584317458},
}

LENGTHS = (32, 256)


def _make_sng(source: str):
    """Fresh, deterministically seeded SNG per measurement."""
    if source == "software":
        return ComparatorSng(SoftwareRng(8, seed=42))
    if source == "lfsr":
        return ComparatorSng(Lfsr(seed=0x5A))
    if source == "sobol":
        return ComparatorSng(SobolRng(8, dim=0), pair_source=SobolRng(8, dim=1))
    if source == "imsng":
        return SegmentSng(IdealBitSource(seed=7), segment_bits=8)
    raise ValueError(source)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("source", sorted(GOLDEN_SNG_MSE))
def test_table1_sng_mse_pinned(source, length):
    """Regenerate with: sng_mse(_make_sng(source), length, samples=2000, seed=0)."""
    got = sng_mse(_make_sng(source), length, samples=2000, seed=0)
    assert got == pytest.approx(GOLDEN_SNG_MSE[source][length], rel=REL_TOL)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("op", sorted(GOLDEN_OP_MSE))
def test_table2_op_mse_pinned(op, length):
    """Regenerate with: op_mse(op, _make_sng('software'), length, samples=1000, seed=1)."""
    assert op in OP_SPECS
    got = op_mse(op, _make_sng("software"), length, samples=1000, seed=1)
    assert got == pytest.approx(GOLDEN_OP_MSE[op][length], rel=REL_TOL)


def test_goldens_cover_every_table2_op():
    """New OP_SPECS entries must be pinned here too."""
    assert set(GOLDEN_OP_MSE) == set(OP_SPECS)
