"""Serving-layer suite: determinism, fairness, crash containment, contexts.

Covers the contracts of :mod:`repro.serve`:

* a served request is bit-identical to ``run_tiled(jobs=1)`` with the same
  arguments — alone, concurrent with other requests (mixed kernels,
  engine kwargs and backends in flight at once), or through the resident
  ``pool=`` batch path;
* the scheduler dispatches tiles fair round-robin, so small requests are
  not starved by big ones;
* a failing request (bad kwargs, raising task, or a task that kills its
  worker) fails alone and never poisons the resident pool;
* the executor's fork/spawn-identical claim is enforced with an explicit
  ``mp_context`` (spawn regression for ``run_tiled`` jobs-invariance).
"""

import asyncio
import io
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.apps.executor import KERNELS, run_tiled
from repro.apps.filters import gamma_correct_inputs, mean_filter_inputs
from repro.apps.images import natural_scene
from repro.core.backend import use_backend
from repro.serve import (
    BrokenProcessPool,
    Scheduler,
    ServingClient,
    WorkerPool,
)
from repro.serve.service import serve_stdio

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="test kernels are registered in-process and reach "
                         "the workers only under the fork start method")


def _image(size=12, seed=3):
    return natural_scene(size, size, np.random.default_rng(seed))


#: (kernel, inputs, length, kwargs) triplets exercising mixed kernels and
#: engine axes in flight at once.
def _mixed_requests():
    img = _image()
    return [
        ("gamma_correct", gamma_correct_inputs(img), 32,
         dict(seed=1, kernel_kwargs={"gamma": 0.5})),
        ("mean_filter", mean_filter_inputs(img), 64,
         dict(seed=2, engine_kwargs={"cell_model": "column"})),
        ("matting", {"composite": img, "background": img * 0.5,
                     "foreground": np.clip(img + 0.1, 0.0, 1.0)}, 32,
         dict(seed=3)),
        ("gamma_correct", gamma_correct_inputs(img), 32,
         dict(seed=4, kernel_kwargs={"gamma": 2.0})),
    ]


# ----------------------------------------------------------------------
# test kernels (module-level: picklable; reach workers via fork)
# ----------------------------------------------------------------------
def _boom_kernel(engine, image, length):
    raise RuntimeError("boom tile")


def _exit_kernel(engine, image, length):
    os._exit(13)   # hard worker death, not an exception


def _pid_task(_):
    time.sleep(0.005)   # let both workers participate in a map
    return os.getpid()


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_workers_stay_resident_across_maps(self):
        # One-shot pools would show up to four distinct worker PIDs over
        # two maps; a resident pool can only ever show its two.
        with WorkerPool(2) as pool:
            pool.warmup()
            first = set(pool.map(_pid_task, range(8)))
            second = set(pool.map(_pid_task, range(8)))
        assert 1 <= len(first | second) <= 2

    def test_capacity_start_method_and_close(self):
        pool = WorkerPool(3, mp_context="spawn" if not HAS_FORK else "fork")
        assert pool.capacity == 3
        assert pool.start_method in ("fork", "spawn", "forkserver")
        assert not pool.closed
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_pid_task, 0)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            WorkerPool(0)

    def test_task_exception_does_not_break_pool(self):
        with WorkerPool(2) as pool:
            pool.warmup()
            before = set(pool.map(_pid_task, range(8)))
            with pytest.raises(ZeroDivisionError):
                pool.map(_div_by_zero, [0])
            assert not pool.broken
            after = set(pool.map(_pid_task, range(8)))
            assert 1 <= len(before | after) <= 2   # same resident workers

    @needs_fork
    def test_restart_after_worker_death(self):
        with WorkerPool(2, mp_context="fork") as pool:
            pool.warmup()
            with pytest.raises(BrokenProcessPool):
                pool.map(_kill_self, [0])
            assert pool.broken
            pool.restart()
            assert not pool.broken
            assert len(set(pool.map(_pid_task, range(4)))) >= 1

    def test_pool_map_over_resident_pool_matches_one_shot(self):
        img = _image()
        inputs = gamma_correct_inputs(img)
        base, led1 = run_tiled("gamma_correct", inputs, 32, tile=6, jobs=1,
                               seed=9, kernel_kwargs={"gamma": 0.5})
        with WorkerPool(2) as pool:
            res, led2 = run_tiled("gamma_correct", inputs, 32, tile=6,
                                  seed=9, kernel_kwargs={"gamma": 0.5},
                                  pool=pool)
        np.testing.assert_array_equal(base, res)
        assert led2.energy_j == pytest.approx(led1.energy_j)


def _div_by_zero(_):
    return 1 // 0


def _kill_self(_):
    os._exit(13)


# ----------------------------------------------------------------------
# spawn-context regression (executor claims fork/spawn-identical output)
# ----------------------------------------------------------------------
class TestStartMethodInvariance:
    def test_run_tiled_spawn_matches_in_process(self):
        img = _image(10, seed=8)
        inputs = mean_filter_inputs(img)
        base, _ = run_tiled("mean_filter", inputs, 32, tile=5, jobs=1,
                            seed=6)
        fan, _ = run_tiled("mean_filter", inputs, 32, tile=5, jobs=2,
                           seed=6, mp_context="spawn")
        np.testing.assert_array_equal(base, fan)

    @needs_fork
    def test_fork_and_spawn_pools_agree(self):
        img = _image(10, seed=8)
        inputs = gamma_correct_inputs(img)
        kwargs = dict(tile=5, seed=2, kernel_kwargs={"gamma": 0.7})
        with WorkerPool(2, mp_context="fork") as pool:
            forked, _ = run_tiled("gamma_correct", inputs, 32, pool=pool,
                                  **kwargs)
        with WorkerPool(2, mp_context="spawn") as pool:
            spawned, _ = run_tiled("gamma_correct", inputs, 32, pool=pool,
                                   **kwargs)
        np.testing.assert_array_equal(forked, spawned)


# ----------------------------------------------------------------------
# Scheduler: determinism of served output
# ----------------------------------------------------------------------
class TestServingDeterminism:
    @pytest.mark.parametrize("backend", ("unpacked", "packed"))
    def test_concurrent_serving_bit_identical_to_run_tiled(self, backend):
        with use_backend(backend):
            requests = _mixed_requests()
            refs = [run_tiled(kernel, inputs, length, tile=6, jobs=1,
                              **kw)
                    for kernel, inputs, length, kw in requests]

            async def serve_all():
                with WorkerPool(2, backend=backend) as pool:
                    scheduler = Scheduler(pool)
                    return await asyncio.gather(*[
                        scheduler.submit_app(kernel, inputs, length,
                                             tile=6, **kw)
                        for kernel, inputs, length, kw in requests])

            served = asyncio.run(serve_all())
        for (ref_img, ref_led), (out_img, out_led) in zip(refs, served):
            np.testing.assert_array_equal(ref_img, out_img)
            assert out_led.energy_j == pytest.approx(ref_led.energy_j)
            assert out_led.latency_s == pytest.approx(ref_led.latency_s)

    def test_mixed_backends_in_flight_at_once(self):
        # Requests built under different backends carry their backend name
        # and may share one resident pool concurrently.
        img = _image()
        with use_backend("unpacked"):
            req_u = run_tiled("gamma_correct", gamma_correct_inputs(img),
                              32, tile=6, jobs=1, seed=5,
                              kernel_kwargs={"gamma": 0.5})
        with use_backend("packed"):
            req_p = run_tiled("gamma_correct", gamma_correct_inputs(img),
                              32, tile=6, jobs=1, seed=5,
                              kernel_kwargs={"gamma": 0.5})

        with ServingClient(jobs=2) as client:
            with use_backend("unpacked"):
                fut_u = client.submit("gamma_correct",
                                      gamma_correct_inputs(img), 32,
                                      tile=6, seed=5,
                                      kernel_kwargs={"gamma": 0.5})
            with use_backend("packed"):
                fut_p = client.submit("gamma_correct",
                                      gamma_correct_inputs(img), 32,
                                      tile=6, seed=5,
                                      kernel_kwargs={"gamma": 0.5})
            out_u, _ = fut_u.result()
            out_p, _ = fut_p.result()
        np.testing.assert_array_equal(req_u[0], out_u)
        np.testing.assert_array_equal(req_p[0], out_p)
        # and the two backends agree with each other (conformance)
        np.testing.assert_array_equal(out_u, out_p)

    def test_zero_tile_request_resolves_immediately(self):
        # A zero-area scene yields an empty tile grid; the served request
        # must resolve like run_tiled does, not await a callback that
        # never fires.
        empty = {"image": np.zeros((1, 0))}
        kw = dict(tile=4, kernel_kwargs={"gamma": 0.5})
        ref, _ = run_tiled("gamma_correct", empty, 32, jobs=1, **kw)

        async def main():
            with WorkerPool(1) as pool:
                scheduler = Scheduler(pool)
                return await asyncio.wait_for(
                    scheduler.submit_app("gamma_correct", empty, 32, **kw),
                    timeout=30)

        out, _ = asyncio.run(main())
        assert out.shape == ref.shape == (1, 0)

    def test_submit_detaches_from_caller_buffers(self):
        # tile >= width makes the row-band slices ravel to views; the
        # submit path must snapshot them so a caller recycling its buffer
        # after submit() cannot corrupt an in-flight request.
        img = _image(8, seed=7)
        inputs = mean_filter_inputs(img)
        ref, _ = run_tiled("mean_filter", inputs, 32, tile=8, jobs=1,
                           seed=1)
        with ServingClient(jobs=2) as client:
            recycled = {k: v.copy() for k, v in inputs.items()}
            fut = client.submit("mean_filter", recycled, 32, tile=8,
                                seed=1)
            for v in recycled.values():   # immediately scribble over it
                v[:] = 0.0
            out, _ = fut.result()
        np.testing.assert_array_equal(ref, out)

    def test_close_drains_inflight_requests(self):
        # Closing the client with requests still executing must resolve
        # their futures (drain), not strand them on a dead loop.
        img = _image(10, seed=6)
        inputs = mean_filter_inputs(img)
        client = ServingClient(jobs=2)
        futures = [client.submit("mean_filter", inputs, 64, tile=2,
                                 seed=s) for s in (1, 2)]
        client.close()
        ref, _ = run_tiled("mean_filter", inputs, 64, tile=2, jobs=1,
                           seed=1)
        out, _ = futures[0].result(timeout=30)
        np.testing.assert_array_equal(ref, out)
        assert futures[1].done()

    def test_serving_faulty_sparse_matches_batch(self):
        from repro.reram.faults import DEFAULT_FAULT_RATES
        img = _image(8, seed=4)
        kwargs = dict(seed=11, engine_kwargs={
            "fault_rates": DEFAULT_FAULT_RATES,
            "fault_sampling": "sparse"})
        ref, _ = run_tiled("mean_filter", mean_filter_inputs(img), 32,
                           tile=4, jobs=1, **kwargs)
        with ServingClient(jobs=2) as client:
            out, _ = client.request("mean_filter", mean_filter_inputs(img),
                                    32, tile=4, **kwargs)
        np.testing.assert_array_equal(ref, out)


# ----------------------------------------------------------------------
# Scheduler: fairness
# ----------------------------------------------------------------------
class TestServingFairness:
    def test_round_robin_interleaves_and_small_finishes_first(self):
        big_img = _image(16, seed=1)     # 64 tiles at tile=2
        small_img = _image(4, seed=2)    # 4 tiles at tile=2

        async def main():
            with WorkerPool(2) as pool:
                pool.warmup()
                scheduler = Scheduler(pool)
                t_big = asyncio.ensure_future(scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(big_img), 64,
                    tile=2, seed=1))
                await asyncio.sleep(0)   # admit big first
                t_small = asyncio.ensure_future(scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(small_img), 64,
                    tile=2, seed=2))
                await asyncio.gather(t_big, t_small)
                return scheduler.dispatch_log

        log = asyncio.run(main())
        assert len(log) == 64 + 4
        big_id = log[0][0]
        small_positions = [i for i, (rid, _) in enumerate(log)
                           if rid != big_id]
        big_positions = [i for i, (rid, _) in enumerate(log)
                         if rid == big_id]
        assert len(small_positions) == 4
        # The small request is not starved: all of its tiles dispatch
        # before the big request's final tile, with big tiles in between
        # (strict alternation while both are active).
        assert small_positions[-1] < big_positions[-1]
        assert any(small_positions[0] < p < small_positions[-1]
                   for p in big_positions)

    def test_dispatch_order_is_deterministic(self):
        img = _image(8, seed=9)

        async def main():
            with WorkerPool(2) as pool:
                scheduler = Scheduler(pool)
                await asyncio.gather(
                    scheduler.submit_app("mean_filter",
                                         mean_filter_inputs(img), 32,
                                         tile=4, seed=1),
                    scheduler.submit_app("mean_filter",
                                         mean_filter_inputs(img), 32,
                                         tile=4, seed=2))
                return scheduler.dispatch_log

        assert asyncio.run(main()) == asyncio.run(main())


# ----------------------------------------------------------------------
# Scheduler: failure containment
# ----------------------------------------------------------------------
class TestServingFailures:
    def test_invalid_request_fails_before_touching_pool(self):
        img = _image(6)

        async def main():
            with WorkerPool(1) as pool:
                scheduler = Scheduler(pool)
                with pytest.raises(ValueError, match="fault_sampling"):
                    await scheduler.submit_app(
                        "mean_filter", mean_filter_inputs(img), 32, tile=3,
                        engine_kwargs={"fault_sampling": "bogus"})
                assert not scheduler.dispatch_log
                # the pool is untouched and still serves
                out, _ = await scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(img), 32, tile=3,
                    seed=0)
                return out

        ref, _ = run_tiled("mean_filter", mean_filter_inputs(img), 32,
                           tile=3, jobs=1, seed=0)
        np.testing.assert_array_equal(asyncio.run(main()), ref)

    def test_cancelled_request_stops_dispatching_and_frees_pool(self):
        big_img = _image(16, seed=3)     # 64 tiles at tile=2
        small_img = _image(6, seed=4)

        async def main():
            with WorkerPool(2) as pool:
                pool.warmup()
                scheduler = Scheduler(pool)
                big = asyncio.ensure_future(scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(big_img), 128,
                    tile=2, seed=1))
                await asyncio.sleep(0.02)
                big.cancel()
                # pool slots are freed and later requests still serve
                out, _ = await scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(small_img), 32,
                    tile=3, seed=0)
                with pytest.raises(asyncio.CancelledError):
                    await big
                big_id = scheduler.dispatch_log[0][0]
                dispatched = [t for rid, t in scheduler.dispatch_log
                              if rid == big_id]
                assert len(dispatched) < 64   # abandoned, not run to end
                return out

        ref, _ = run_tiled("mean_filter", mean_filter_inputs(small_img),
                           32, tile=3, jobs=1, seed=0)
        np.testing.assert_array_equal(asyncio.run(main()), ref)

    @needs_fork
    def test_raising_tile_fails_request_not_pool(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "_boom", _boom_kernel)
        img = _image(6)

        async def main():
            with WorkerPool(2, mp_context="fork") as pool:
                pool.warmup()
                pids = set(pool.map(_pid_task, range(8)))
                scheduler = Scheduler(pool)
                good = asyncio.ensure_future(scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(img), 32, tile=3,
                    seed=0))
                with pytest.raises(RuntimeError, match="boom tile"):
                    await scheduler.submit_app("_boom", {"image": img}, 32,
                                               tile=3, seed=1)
                out, _ = await good
                assert not pool.broken
                # same resident workers, still serving
                assert set(pool.map(_pid_task, range(8))) <= pids
                return out

        ref, _ = run_tiled("mean_filter", mean_filter_inputs(img), 32,
                           tile=3, jobs=1, seed=0)
        np.testing.assert_array_equal(asyncio.run(main()), ref)

    @needs_fork
    def test_worker_death_fails_request_pool_respawns(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "_exit", _exit_kernel)
        img = _image(6)

        async def main():
            with WorkerPool(2, mp_context="fork") as pool:
                scheduler = Scheduler(pool)
                with pytest.raises(BrokenProcessPool):
                    await scheduler.submit_app("_exit", {"image": img}, 32,
                                               tile=3, seed=1)
                # the scheduler respawned the workers; new requests serve
                out, _ = await scheduler.submit_app(
                    "mean_filter", mean_filter_inputs(img), 32, tile=3,
                    seed=0)
                return out

        ref, _ = run_tiled("mean_filter", mean_filter_inputs(img), 32,
                           tile=3, jobs=1, seed=0)
        np.testing.assert_array_equal(asyncio.run(main()), ref)


# ----------------------------------------------------------------------
# stdio service protocol
# ----------------------------------------------------------------------
class TestStdioService:
    def test_serves_and_contains_errors(self):
        img = _image(8, seed=2)
        requests = [
            {"id": "a", "kernel": "gamma_correct",
             "inputs": {"image": img.tolist()}, "length": 32, "tile": 4,
             "seed": 3, "kernel_kwargs": {"gamma": 0.5}},
            {"id": "b", "kernel": "gamma_correct",
             "inputs": {"image": img.tolist()}, "length": 32, "tile": 4,
             "seed": 3, "kernel_kwargs": {"gamma": -1, "bogus": True}},
            {"id": "c", "kernel": "nope",
             "inputs": {"image": img.tolist()}, "length": 32, "tile": 4},
            # structurally invalid (missing "length") — the error response
            # must still echo this id so a pipelining client can match it
            {"id": "d", "kernel": "gamma_correct",
             "inputs": {"image": img.tolist()}, "tile": 4},
        ]
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests)
                            + "\n\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=2) == 0
        got = {r["id"]: r
               for r in map(json.loads, stdout.getvalue().splitlines())}
        assert set(got) == {"a", "b", "c", "d"}
        assert got["b"]["ok"] is False and "bogus" in got["b"]["error"]
        assert got["c"]["ok"] is False and "nope" in got["c"]["error"]
        assert got["d"]["ok"] is False and "length" in got["d"]["error"]
        ref, ledger = run_tiled("gamma_correct", gamma_correct_inputs(img),
                                32, tile=4, jobs=1, seed=3,
                                kernel_kwargs={"gamma": 0.5})
        assert got["a"]["ok"] is True
        np.testing.assert_array_equal(np.array(got["a"]["output"]), ref)
        assert got["a"]["energy_j"] == pytest.approx(ledger.energy_j)

    def test_rejects_malformed_requests(self):
        stdin = io.StringIO('{"kernel": "mean_filter"}\n[1, 2]\nnot json\n')
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=1) == 0
        responses = list(map(json.loads, stdout.getvalue().splitlines()))
        assert len(responses) == 3
        assert all(r["ok"] is False for r in responses)
