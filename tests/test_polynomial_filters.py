"""Tests for repro.core.polynomial and repro.apps.filters."""

import numpy as np
import pytest

from repro.apps.filters import (
    contrast_stretch_float,
    contrast_stretch_sc,
    gamma_correct_float,
    gamma_correct_sc,
    mean_filter_float,
    mean_filter_sc,
    roberts_cross_float,
    roberts_cross_sc,
)
from repro.apps.images import natural_scene
from repro.apps.metrics import psnr
from repro.core.bitstream import Bitstream
from repro.core.polynomial import (
    bernstein_eval_exact,
    bernstein_eval_sc,
    bernstein_from_power,
)
from repro.imsc.engine import InMemorySCEngine


class TestBernstein:
    def test_conversion_linear(self):
        # f(x) = x -> Bernstein coefficients (0, 1/2, 1) for degree 2.
        b = bernstein_from_power([0.0, 1.0, 0.0])
        assert np.allclose(b, [0.0, 0.5, 1.0])

    def test_exact_eval_matches_power_basis(self):
        coeffs = [0.1, 0.3, 0.4]
        b = bernstein_from_power(coeffs)
        xs = np.linspace(0, 1, 11)
        power = coeffs[0] + coeffs[1] * xs + coeffs[2] * xs ** 2
        assert np.allclose(bernstein_eval_exact(b, xs), power)

    def test_sc_eval_converges(self):
        b = bernstein_from_power([0.0, 0.5, 0.5])   # (x + x^2)/2
        n = b.size - 1
        length = 8192
        x = 0.6
        gen = np.random.default_rng(0)
        x_streams = [Bitstream.bernoulli(x, length, rng=int(gen.integers(1e6)))
                     for _ in range(n)]
        c_streams = [Bitstream.bernoulli(float(bk), length,
                                         rng=int(gen.integers(1e6)))
                     for bk in b]
        out = bernstein_eval_sc(b, x_streams, c_streams)
        assert float(out.value()) == pytest.approx(
            float(bernstein_eval_exact(b, x)), abs=0.03)

    def test_validation(self):
        b = np.array([0.5, 0.5])
        s = [Bitstream.zeros(8)]
        with pytest.raises(ValueError):
            bernstein_eval_sc([1.5, 0.0], s, s + s)
        with pytest.raises(ValueError):
            bernstein_eval_sc(b, [], s + s)
        with pytest.raises(ValueError):
            bernstein_eval_sc(b, s, s)


@pytest.fixture
def engine():
    return InMemorySCEngine(rng=0, ideal_stob=True)


@pytest.fixture
def image():
    return natural_scene(20, 20, np.random.default_rng(4))


class TestRobertsCross:
    def test_float_zero_on_constant(self):
        assert np.allclose(roberts_cross_float(np.full((8, 8), 0.5)), 0.0)

    def test_sc_tracks_reference(self, engine, image):
        ref = roberts_cross_float(image)
        out = roberts_cross_sc(engine, image, 512)
        assert out.shape == ref.shape
        assert np.abs(out - ref).mean() < 0.08

    def test_detects_step_edge(self, engine):
        img = np.zeros((10, 10))
        img[:, 5:] = 1.0
        out = roberts_cross_sc(engine, img, 512)
        assert out[:, 4].mean() > 0.3        # on the edge
        assert out[:, :3].mean() < 0.1       # flat region


class TestMeanFilter:
    def test_float(self):
        img = np.arange(16, dtype=np.float64).reshape(4, 4) / 16
        ref = mean_filter_float(img)
        assert ref.shape == (3, 3)
        assert ref[0, 0] == pytest.approx((img[0, 0] + img[0, 1]
                                           + img[1, 0] + img[1, 1]) / 4)

    def test_sc_tracks_reference(self, engine, image):
        ref = mean_filter_float(image)
        out = mean_filter_sc(engine, image, 512)
        assert np.abs(out - ref).mean() < 0.06


class TestGamma:
    def test_float(self):
        img = np.array([[0.25]])
        assert gamma_correct_float(img, 0.5)[0, 0] == pytest.approx(0.5)

    def test_sc_tracks_reference(self, engine, image):
        ref = gamma_correct_float(image, 0.45)
        out = gamma_correct_sc(engine, image, 512, gamma=0.45)
        assert np.abs(out - ref).mean() < 0.08

    def test_psnr_reasonable(self, engine, image):
        ref = gamma_correct_float(image, 0.45)
        out = gamma_correct_sc(engine, image, 1024, gamma=0.45)
        assert psnr(ref, out) > 18


class TestContrastStretch:
    def test_float_endpoints(self):
        img = np.array([[0.1, 0.2, 0.5, 0.8, 0.9]])
        out = contrast_stretch_float(img, 0.2, 0.8)
        assert out[0, 0] == 0.0 and out[0, 4] == 1.0
        assert out[0, 2] == pytest.approx(0.5)

    def test_sc_tracks_reference(self, engine, image):
        ref = contrast_stretch_float(image)
        out = contrast_stretch_sc(engine, image, 512)
        assert np.abs(out - ref).mean() < 0.12


class TestIndependentSelects:
    """The 0.5 MAJ selects are independent streams (like OP_SPECS' aux).

    An earlier revision drew them via ``generate_correlated``; the MSE vs
    the float reference must not regress against that implementation's
    seed-averaged values (recorded below for this exact configuration:
    natural_scene 12x12 seeds 100..107, N=256, engine rng=seed index,
    ideal_stob).
    """

    #: filter -> (sc fn, float fn, old biased-select implementation's MSE%).
    CASES = {
        "roberts": (roberts_cross_sc, roberts_cross_float,
                    0.025324423305754885),
        "mean": (mean_filter_sc, mean_filter_float, 0.11032443769614553),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_mse_does_not_regress(self, case):
        sc_fn, ref_fn, old_mse = self.CASES[case]
        mses = []
        for s in range(8):
            img = natural_scene(12, 12, np.random.default_rng(100 + s))
            eng = InMemorySCEngine(rng=s, ideal_stob=True)
            mses.append(float(np.mean((sc_fn(eng, img, 256)
                                       - ref_fn(img)) ** 2)) * 100.0)
        # Statistically the two select schemes have the same per-pixel
        # error; allow seed-level noise but catch a real bias regression.
        assert float(np.mean(mses)) <= old_mse * 1.3
