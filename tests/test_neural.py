"""Tests for repro.apps.neural (SC inference primitives)."""

import numpy as np
import pytest

from repro.apps.neural import ScDenseLayer, ScDotProduct, sc_dot_product
from repro.imsc.engine import InMemorySCEngine
from repro.reram.faults import DEFAULT_FAULT_RATES


@pytest.fixture
def engine():
    return InMemorySCEngine(rng=0, ideal_stob=True)


class TestDotProduct:
    def test_matches_exact(self, engine):
        x = np.array([0.5, -0.5, 0.8, -0.2])
        w = np.array([0.6, 0.4, -0.7, 0.9])
        got = sc_dot_product(engine, x, w, 16_384, rng=1)
        assert got == pytest.approx(float(np.dot(x, w)) / 4, abs=0.06)

    def test_orthogonal_is_zero(self, engine):
        x = np.array([1.0, 1.0])
        w = np.array([1.0, -1.0])
        got = sc_dot_product(engine, x, w, 16_384, rng=2)
        assert got == pytest.approx(0.0, abs=0.06)

    def test_shape_validation(self, engine):
        with pytest.raises(ValueError):
            sc_dot_product(engine, np.zeros(3), np.zeros(4), 64)

    def test_unit_wrapper(self, engine):
        unit = ScDotProduct(np.array([1.0, 1.0]), length=8192)
        x = np.array([0.5, 0.5])
        assert unit(engine, x, rng=3) == pytest.approx(unit.exact(x),
                                                       abs=0.06)

    def test_weight_range(self):
        with pytest.raises(ValueError):
            ScDotProduct(np.array([2.0]))


class TestDenseLayer:
    def _layer(self):
        # Two neurons preferring opposite input signs.
        w = np.array([[0.9, 0.9], [-0.9, -0.9]])
        return ScDenseLayer(w, length=4096)

    def test_forward_matches_exact(self, engine):
        layer = self._layer()
        x = np.array([0.7, 0.5])
        got = layer.forward(engine, x, rng=4)
        assert np.allclose(got, layer.exact_forward(x), atol=0.08)

    def test_predict_separates_classes(self, engine):
        layer = self._layer()
        assert layer.predict(engine, np.array([0.8, 0.6]), rng=5) == 0
        assert layer.predict(engine, np.array([-0.8, -0.6]), rng=6) == 1

    def test_prediction_robust_to_faults(self):
        # Sign decisions survive CIM faults — the SC-NN robustness story.
        engine = InMemorySCEngine(fault_rates=DEFAULT_FAULT_RATES, rng=7,
                                  ideal_stob=True)
        layer = self._layer()
        correct = 0
        for seed in range(10):
            gen = np.random.default_rng(seed)
            x = gen.uniform(0.3, 1.0, 2) * (1 if seed % 2 == 0 else -1)
            expected = 0 if seed % 2 == 0 else 1
            correct += int(layer.predict(engine, x, rng=seed) == expected)
        assert correct >= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ScDenseLayer(np.zeros(3))
        with pytest.raises(ValueError):
            ScDenseLayer(np.full((2, 2), 1.5))
        layer = self._layer()
        with pytest.raises(ValueError):
            layer.forward(InMemorySCEngine(rng=0), np.zeros(5))

    def test_shapes(self):
        layer = ScDenseLayer(np.zeros((3, 4)))
        assert layer.in_features == 4
        assert layer.out_features == 3
