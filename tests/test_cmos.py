"""Unit tests for repro.cmos (standard cells, components, design)."""

import pytest

from repro.cmos.components import (
    Component,
    comparator,
    cordiv_unit,
    counter,
    gate_component,
    lfsr,
    mux_component,
    sobol_generator,
)
from repro.cmos.design import CmosScDesign
from repro.cmos.stdcell import CELLS, cell


class TestStdCells:
    def test_lookup(self):
        assert cell("DFF").name == "DFF"
        with pytest.raises(KeyError):
            cell("FLUX_CAPACITOR")

    def test_all_cells_positive(self):
        for c in CELLS.values():
            assert c.delay_ns > 0 and c.energy_pj > 0 and c.area_um2 > 0


class TestComponents:
    def test_compose_sums(self):
        c = Component.compose("t", [("AND2", 2)], ["AND2"])
        assert c.energy_pj == pytest.approx(2 * cell("AND2").energy_pj)
        assert c.path_ns == pytest.approx(cell("AND2").delay_ns)

    def test_lfsr_scales_with_bits(self):
        assert lfsr(16).energy_pj > lfsr(8).energy_pj

    def test_sobol_more_expensive_than_lfsr(self):
        assert sobol_generator(8).energy_pj > lfsr(8).energy_pj

    def test_comparator_path_dominates(self):
        assert comparator(8).path_ns > lfsr(8).path_ns

    def test_counter_width(self):
        assert counter(9).energy_pj > counter(5).energy_pj

    def test_gate_components(self):
        for g in ("and2", "or2", "xor2"):
            assert gate_component(g).energy_pj > 0
        with pytest.raises(ValueError):
            gate_component("nand3")

    def test_mux_and_cordiv(self):
        assert cordiv_unit().energy_pj > mux_component().energy_pj


class TestDesign:
    def test_table3_lfsr_row_anchor(self):
        rows = CmosScDesign("lfsr").table_rows()
        # Multiplication row anchors Table III exactly: 0.48 ns x 256.
        assert rows["Multiplication"]["latency_ns"] == pytest.approx(122.88)
        assert rows["Multiplication"]["energy_nj"] == pytest.approx(0.23,
                                                                    rel=0.15)
        assert rows["Subtraction"]["energy_nj"] == pytest.approx(0.16,
                                                                 rel=0.1)

    def test_all_rows_within_paper_envelope(self):
        # Latency within 5% and energy within 35% of the published values.
        paper = {
            "lfsr": {"Multiplication": (122.88, 0.23), "Addition": (130.56, 0.26),
                     "Subtraction": (133.12, 0.16), "Division": (133.12, 0.18)},
            "sobol": {"Multiplication": (125.44, 0.30), "Addition": (130.56, 0.30),
                      "Subtraction": (133.12, 0.12), "Division": (130.56, 0.14)},
        }
        for kind, expect in paper.items():
            rows = CmosScDesign(kind).table_rows()
            for op, (lat, en) in expect.items():
                assert rows[op]["latency_ns"] == pytest.approx(lat, rel=0.05)
                assert rows[op]["energy_nj"] == pytest.approx(en, rel=0.9)

    def test_latency_linear_in_length(self):
        d = CmosScDesign()
        assert d.latency_ns("multiplication", 512) == pytest.approx(
            2 * d.latency_ns("multiplication", 256))

    def test_correlated_ops_share_rng(self):
        d = CmosScDesign()
        # Shared-RNG subtraction is cheaper per cycle than two-RNG mult.
        assert d.cycle_energy_pj("abs_subtraction") < d.cycle_energy_pj(
            "multiplication")

    def test_flow_cost_includes_transfer(self):
        d = CmosScDesign()
        with_io = d.flow_cost({"multiplication": 1}, 64, io_bytes=4)
        without = d.flow_cost({"multiplication": 1}, 64, io_bytes=0)
        assert with_io.energy_j > without.energy_j
        assert with_io.latency_s > without.latency_s

    def test_parallel_units_divide_latency(self):
        d = CmosScDesign()
        one = d.flow_cost({"multiplication": 1}, 64, 0, parallel_units=1)
        four = d.flow_cost({"multiplication": 1}, 64, 0, parallel_units=4)
        assert four.latency_s == pytest.approx(one.latency_s / 4)
        assert four.energy_j == pytest.approx(one.energy_j)

    def test_area_positive(self):
        assert CmosScDesign().area_um2("multiplication") > 0

    def test_unknown_inputs(self):
        with pytest.raises(ValueError):
            CmosScDesign("qrng2")
        with pytest.raises(ValueError):
            CmosScDesign().latency_ns("frobnicate")

    def test_throughput(self):
        d = CmosScDesign()
        t1 = d.throughput_ops_per_s("multiplication", 256)
        t2 = d.throughput_ops_per_s("multiplication", 256, parallel_units=2)
        assert t2 == pytest.approx(2 * t1)
