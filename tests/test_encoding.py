"""Unit tests for repro.core.encoding."""

import numpy as np
import pytest

from repro.core import encoding as enc


class TestUnipolar:
    def test_identity(self):
        assert enc.unipolar_to_prob(0.25) == 0.25
        assert enc.prob_to_unipolar(0.25) == 0.25

    def test_range_check(self):
        with pytest.raises(ValueError):
            enc.unipolar_to_prob(1.1)
        with pytest.raises(ValueError):
            enc.unipolar_to_prob(-0.1)


class TestBipolar:
    def test_mapping(self):
        assert enc.bipolar_to_prob(0.0) == 0.5
        assert enc.bipolar_to_prob(1.0) == 1.0
        assert enc.bipolar_to_prob(-1.0) == 0.0

    def test_roundtrip(self):
        xs = np.linspace(-1, 1, 21)
        assert np.allclose(enc.prob_to_bipolar(enc.bipolar_to_prob(xs)), xs)

    def test_range_check(self):
        with pytest.raises(ValueError):
            enc.bipolar_to_prob(1.5)


class TestQuantize:
    def test_floor_semantics(self):
        assert enc.quantize(0.999, 8) == 255
        assert enc.quantize(0.0, 8) == 0
        assert enc.quantize(0.5, 8) == 128

    def test_one_maps_to_max_code(self):
        assert enc.quantize(1.0, 8) == 255

    def test_vectorised(self):
        codes = enc.quantize(np.array([0.0, 0.5, 1.0]), 4)
        assert list(codes) == [0, 8, 15]

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            enc.quantize(0.5, 0)

    def test_binary_to_prob_roundtrip(self):
        for code in (0, 17, 255):
            p = enc.binary_to_prob(code, 8)
            assert enc.prob_to_binary(p, 8) == code

    def test_prob_to_binary_rounds(self):
        assert enc.prob_to_binary(0.5, 8) == 128
