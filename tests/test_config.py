"""RunConfig contract suite: validation, round-trips, threading.

Covers the tentpole contracts of :mod:`repro.config`:

* construction-time validation — every field checked, unknown and
  conflicting keys rejected *by name*;
* ``from_dict(to_dict())`` identity and JSON round-tripping with the
  same strictness as the serving front-end;
* presets — ``default() == fast()`` since the fast-path release, and
  ``oracle()`` pins the paper-faithful axes;
* engine-kwarg resolution: explicit overrides beat the config, and the
  per-bit fault-domain oracle coerces sampling to dense instead of
  erroring on an implicit sparse default;
* the config actually *reaches* every layer: engine construction,
  ``run_app``, the JSON front-end's ``config`` request key (worker-
  observed engine settings), and the ``stats()`` echo.
"""

import dataclasses
import io
import json

import numpy as np
import pytest

from repro import RunConfig
from repro.apps import run_app
from repro.apps.executor import run_tiled
from repro.apps.filters import gamma_correct_inputs
from repro.apps.images import natural_scene
from repro.imsc.engine import EngineFactory, InMemorySCEngine
from repro.serve.service import decode_request, serve_stdio


def _image(size=8, seed=3):
    return natural_scene(size, size, np.random.default_rng(seed))


# ----------------------------------------------------------------------
# construction-time validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_defaults_are_the_fast_preset(self):
        cfg = RunConfig()
        assert cfg.cell_model == "column"
        assert cfg.fault_sampling == "sparse"
        assert cfg.fault_domain == "word"
        assert cfg.transport == "shm"
        assert cfg.jobs == 1 and cfg.tile is None and cfg.seed == 0
        assert cfg == RunConfig.fast() == RunConfig.default()

    def test_frozen_and_hashable(self):
        cfg = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.jobs = 4
        assert {cfg: 1}[RunConfig()] == 1

    @pytest.mark.parametrize("field,value", [
        ("cell_model", "bogus"),
        ("fault_sampling", "bogus"),
        ("fault_domain", "bogus"),
        ("transport", "bogus"),
        ("mp_context", "bogus"),
        ("backend", "bogus"),
        ("jobs", 0),
        ("jobs", True),
        ("jobs", 2.0),
        ("tile", 0),
        ("tile", "8"),
        ("seed", None),
        ("seed", 1.5),
    ])
    def test_bad_field_values_rejected_by_name(self, field, value):
        with pytest.raises(ValueError, match=field):
            RunConfig(**{field: value})

    def test_sparse_plus_bit_conflict_names_both_keys(self):
        with pytest.raises(ValueError) as exc:
            RunConfig(fault_sampling="sparse", fault_domain="bit")
        assert "fault_sampling" in str(exc.value)
        assert "fault_domain" in str(exc.value)

    def test_explicit_dense_bit_is_fine(self):
        cfg = RunConfig(fault_sampling="dense", fault_domain="bit")
        assert cfg.fault_domain == "bit"


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------
class TestPresets:
    def test_oracle_pins_paper_faithful_axes(self):
        cfg = RunConfig.oracle()
        assert cfg.cell_model == "per-bit"
        assert cfg.fault_sampling == "dense"
        assert cfg.fault_domain == "word"   # bit-identical to word per seed

    def test_preset_lookup_and_overrides(self):
        assert RunConfig.preset("fast") == RunConfig.fast()
        assert RunConfig.preset("oracle") == RunConfig.oracle()
        cfg = RunConfig.preset("oracle", jobs=4, tile=8)
        assert cfg.jobs == 4 and cfg.tile == 8
        assert cfg.cell_model == "per-bit"
        with pytest.raises(ValueError, match="unknown preset 'slow'"):
            RunConfig.preset("slow")

    def test_preset_overrides_are_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            RunConfig.preset("fast", jobs=0)
        with pytest.raises(ValueError, match="unknown config key"):
            RunConfig.fast(jbos=2)

    def test_resolve(self):
        assert RunConfig.resolve(None) == RunConfig.default()
        cfg = RunConfig.oracle()
        assert RunConfig.resolve(cfg) is cfg
        with pytest.raises(TypeError, match="RunConfig"):
            RunConfig.resolve({"jobs": 2})


# ----------------------------------------------------------------------
# round-tripping
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("cfg", [
        RunConfig(),
        RunConfig.oracle(),
        RunConfig.fast(backend="packed", jobs=3, tile=8, seed=11,
                       transport="copy", mp_context="spawn"),
    ])
    def test_from_dict_to_dict_identity(self, cfg):
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
        # and through an actual JSON wire hop
        wired = json.loads(json.dumps(cfg.to_dict()))
        assert RunConfig.from_dict(wired) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = RunConfig.from_dict({"jobs": 2})
        assert cfg == RunConfig.fast(jobs=2)

    def test_unknown_keys_rejected_by_name(self):
        with pytest.raises(ValueError, match="'cellmodel'"):
            RunConfig.from_dict({"cellmodel": "column"})
        with pytest.raises(ValueError, match="'njobs'"):
            RunConfig().replace(njobs=2)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            RunConfig.from_dict([("jobs", 2)])

    def test_replace_returns_validated_copy(self):
        base = RunConfig()
        out = base.replace(jobs=2)
        assert out.jobs == 2 and base.jobs == 1
        with pytest.raises(ValueError, match="fault_sampling"):
            base.replace(fault_domain="bit", fault_sampling="sparse")


# ----------------------------------------------------------------------
# engine-kwarg resolution
# ----------------------------------------------------------------------
class TestEngineKwargResolution:
    def test_engine_kwargs_pins_three_axes(self):
        assert RunConfig.oracle().engine_kwargs() == {
            "cell_model": "per-bit", "fault_sampling": "dense",
            "fault_domain": "word"}

    def test_explicit_overrides_beat_config(self):
        merged = RunConfig.fast().merged_engine_kwargs(
            {"cell_model": "per-bit"})
        assert merged["cell_model"] == "per-bit"
        assert merged["fault_sampling"] == "sparse"

    def test_bit_domain_coerces_config_sparse_to_dense(self):
        merged = RunConfig.fast().merged_engine_kwargs(
            {"fault_domain": "bit"})
        assert merged == {"cell_model": "column", "fault_domain": "bit",
                          "fault_sampling": "dense"}
        # ...but an *explicit* sparse request is never silently rewritten
        explicit = RunConfig.fast().merged_engine_kwargs(
            {"fault_domain": "bit", "fault_sampling": "sparse"})
        assert explicit["fault_sampling"] == "sparse"

    def test_validate_for_returns_worker_kwargs(self):
        merged = RunConfig.fast().validate_for(
            "gamma_correct", ["image"], kernel_kwargs={"gamma": 0.5})
        assert merged == RunConfig.fast().engine_kwargs()

    def test_validate_for_rejects_bad_keys_by_name(self):
        cfg = RunConfig.fast()
        with pytest.raises(ValueError, match="'rng'"):
            cfg.validate_for("gamma_correct", ["image"],
                             engine_kwargs={"rng": 0})
        with pytest.raises(ValueError, match="'config'"):
            cfg.validate_for("gamma_correct", ["image"],
                             engine_kwargs={"config": cfg})
        with pytest.raises(ValueError, match="unknown engine kwarg"):
            cfg.validate_for("gamma_correct", ["image"],
                             engine_kwargs={"bogus": 1})
        with pytest.raises(ValueError, match="unknown tile kernel"):
            cfg.validate_for("not_a_kernel", ["image"])


# ----------------------------------------------------------------------
# the config reaches the engine
# ----------------------------------------------------------------------
class TestEngineThreading:
    def test_bare_engine_keeps_oracle_defaults(self):
        # Direct engine construction stays paper-faithful: the pinned
        # per-bit/dense goldens in test_backend_equivalence depend on it.
        eng = InMemorySCEngine(rng=0)
        assert eng.cell_model == "per-bit"
        assert eng.fault_sampling == "dense"
        assert eng.fault_domain == "word"

    def test_config_sets_engine_axes(self):
        eng = InMemorySCEngine(rng=0, config=RunConfig.fast())
        assert eng.cell_model == "column"
        assert eng.fault_sampling == "sparse"

    def test_explicit_kwarg_beats_config(self):
        eng = InMemorySCEngine(rng=0, config=RunConfig.fast(),
                               cell_model="per-bit")
        assert eng.cell_model == "per-bit"
        assert eng.fault_sampling == "sparse"   # still the config's

    def test_bit_domain_with_config_coerces_dense(self):
        eng = InMemorySCEngine(rng=0, config=RunConfig.fast(),
                               fault_domain="bit")
        assert eng.fault_domain == "bit"
        assert eng.fault_sampling == "dense"

    def test_engine_factory_forwards_config(self):
        factory = EngineFactory(config=RunConfig.fast())
        eng = factory(np.random.SeedSequence(0))
        assert eng.cell_model == "column"
        assert eng.fault_sampling == "sparse"

    def test_engine_factory_validates_eagerly(self):
        with pytest.raises(ValueError, match="cell_model"):
            EngineFactory(config=RunConfig.fast(), cell_model="bogus")


# ----------------------------------------------------------------------
# the config reaches run_app / run_tiled
# ----------------------------------------------------------------------
class TestAppThreading:
    def test_bare_run_app_is_the_fast_preset(self):
        bare = run_app("compositing", "sc", length=16, size=8, seed=5)
        fast = run_app("compositing", "sc", length=16, size=8, seed=5,
                       config=RunConfig.fast())
        np.testing.assert_array_equal(bare.output, fast.output)
        assert bare.ssim_pct == fast.ssim_pct

    def test_oracle_config_changes_the_model(self):
        fast = run_app("compositing", "sc", length=16, size=8, seed=5)
        oracle = run_app("compositing", "sc", length=16, size=8, seed=5,
                         config=RunConfig.oracle())
        explicit = run_app("compositing", "sc", length=16, size=8, seed=5,
                           cell_model="per-bit", fault_sampling="dense")
        np.testing.assert_array_equal(oracle.output, explicit.output)
        # per-bit noise draws differ from the column model's
        assert not np.array_equal(oracle.output, fast.output)

    def test_run_tiled_takes_tile_and_seed_from_config(self):
        inputs = gamma_correct_inputs(_image())
        cfg = RunConfig.fast(tile=4, seed=9)
        by_cfg, _ = run_tiled("gamma_correct", inputs, 16, config=cfg,
                              kernel_kwargs={"gamma": 0.5})
        by_kw, _ = run_tiled("gamma_correct", inputs, 16, tile=4, seed=9,
                             kernel_kwargs={"gamma": 0.5})
        np.testing.assert_array_equal(by_cfg, by_kw)

    def test_run_tiled_without_any_tile_names_the_fix(self):
        with pytest.raises(ValueError, match="tile"):
            run_tiled("gamma_correct", gamma_correct_inputs(_image()), 16,
                      kernel_kwargs={"gamma": 0.5})


# ----------------------------------------------------------------------
# the config crosses the JSON wire
# ----------------------------------------------------------------------
class TestServingThreading:
    def test_decode_request_parses_and_validates_config(self):
        raw = {"kernel": "gamma_correct",
               "inputs": {"image": _image().tolist()}, "length": 16,
               "config": RunConfig.fast(tile=4, seed=7).to_dict()}
        req = decode_request(raw)
        assert req["config"] == RunConfig.fast(tile=4, seed=7)
        assert req["tile"] is None   # the config's tile applies downstream
        with pytest.raises(ValueError, match="'cellmodel'"):
            decode_request({**raw, "config": {"cellmodel": "column"}})

    def test_request_without_tile_or_config_tile_rejected(self):
        raw = {"kernel": "gamma_correct",
               "inputs": {"image": _image().tolist()}, "length": 16,
               "config": RunConfig.fast().to_dict()}
        with pytest.raises(ValueError, match="tile"):
            decode_request(raw)

    def test_stdio_config_reaches_the_workers(self):
        # The same request under the oracle and fast configs must match
        # the equivalent explicit-engine-kwargs batch runs bit-exactly —
        # proof the wire config reaches the worker engines.
        img = _image()
        base = {"kernel": "gamma_correct",
                "inputs": {"image": img.tolist()}, "length": 16, "seed": 7,
                "kernel_kwargs": {"gamma": 0.5}}
        requests = [
            {**base, "id": "oracle",
             "config": RunConfig.oracle(tile=4).to_dict()},
            {**base, "id": "fast",
             "config": RunConfig.fast(tile=4).to_dict()},
            {"id": "stats-probe", "type": "stats"},
        ]
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests)
                            + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=2) == 0
        got = {r["id"]: r
               for r in map(json.loads, stdout.getvalue().splitlines())}
        inputs = gamma_correct_inputs(img)
        for name, kwargs in (
                ("oracle", {"cell_model": "per-bit",
                            "fault_sampling": "dense"}),
                ("fast", {"cell_model": "column",
                          "fault_sampling": "sparse"})):
            assert got[name]["ok"] is True
            ref, _ = run_tiled("gamma_correct", inputs, 16, tile=4, jobs=1,
                               seed=7, engine_kwargs=kwargs,
                               kernel_kwargs={"gamma": 0.5})
            np.testing.assert_array_equal(np.array(got[name]["output"]),
                                          ref)
        # served under different models, the two outputs must differ
        assert not np.array_equal(np.array(got["oracle"]["output"]),
                                  np.array(got["fast"]["output"]))
        # the stats echo carries the serving default config
        stats = got["stats-probe"]["stats"]
        assert stats["config"] == RunConfig.default().to_dict()

    def test_stdio_rejects_unknown_config_key_by_name(self):
        raw = {"id": "x", "kernel": "gamma_correct",
               "inputs": {"image": _image().tolist()}, "length": 16,
               "tile": 4, "seed": 0, "config": {"cellmodel": "column"}}
        stdin = io.StringIO(json.dumps(raw) + "\n")
        stdout = io.StringIO()
        assert serve_stdio(stdin, stdout, jobs=1) == 0
        resp = json.loads(stdout.getvalue().splitlines()[0])
        assert resp["ok"] is False and "cellmodel" in resp["error"]
