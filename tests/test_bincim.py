"""Unit tests for repro.bincim (gate-level bit-serial arithmetic)."""

import numpy as np
import pytest

from repro.bincim.arith import BitSerialAlu, from_planes, to_planes
from repro.bincim.design import BINARY_OP_CYCLES, BinaryCimDesign


class TestPlanes:
    def test_roundtrip(self):
        vals = np.array([0, 1, 127, 255])
        assert np.array_equal(from_planes(to_planes(vals, 8)), vals)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            to_planes(np.array([256]), 8)
        with pytest.raises(ValueError):
            to_planes(np.array([-1]), 8)

    def test_lsb_first(self):
        planes = to_planes(np.array([1]), 4)
        assert list(planes[:, 0]) == [1, 0, 0, 0]


class TestAluGates:
    def test_nor(self):
        alu = BitSerialAlu()
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert list(alu.nor(a, b)) == [1, 0, 0, 0]
        assert alu.cycles == 1

    def test_derived_gates(self):
        alu = BitSerialAlu()
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert list(alu.and_(a, b)) == [0, 0, 0, 1]
        assert list(alu.or_(a, b)) == [0, 1, 1, 1]
        assert list(alu.xor(a, b)) == [0, 1, 1, 0]

    def test_mux(self):
        alu = BitSerialAlu()
        s = np.array([0, 0, 1, 1], dtype=np.uint8)
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert list(alu.mux(s, a, b)) == [1, 0, 0, 1]

    def test_full_adder_exhaustive(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    alu = BitSerialAlu()
                    s, cout = alu.full_adder(
                        np.array([a], dtype=np.uint8),
                        np.array([b], dtype=np.uint8),
                        np.array([c], dtype=np.uint8))
                    assert int(s[0]) == (a + b + c) % 2
                    assert int(cout[0]) == (a + b + c) // 2
                    assert alu.cycles == 11


class TestArithmetic:
    def test_add(self, rng):
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        alu = BitSerialAlu()
        out = from_planes(alu.add(to_planes(a, 8), to_planes(b, 8)))
        assert np.array_equal(out, a + b)

    def test_sub_and_borrow(self, rng):
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        alu = BitSerialAlu()
        diff, ge = alu.sub(to_planes(a, 8), to_planes(b, 8))
        mask = ge.astype(bool)
        assert np.array_equal(from_planes(diff)[mask], (a - b)[mask])
        assert np.array_equal(mask, a >= b)

    def test_multiply(self, rng):
        a = rng.integers(0, 256, 200)
        b = rng.integers(0, 256, 200)
        alu = BitSerialAlu()
        out = from_planes(alu.multiply(to_planes(a, 8), to_planes(b, 8)))
        assert np.array_equal(out, a * b)

    def test_divide_fixed_fraction(self, rng):
        num = rng.integers(0, 200, 200)
        den = rng.integers(1, 255, 200)
        lo = np.minimum(num, den)
        alu = BitSerialAlu()
        q = from_planes(alu.divide_fixed(to_planes(lo, 8),
                                         to_planes(den, 8), 8, 8))
        assert np.array_equal(q, (lo * 256) // den)

    def test_divide_by_zero_saturates(self):
        alu = BitSerialAlu()
        q = from_planes(alu.divide_fixed(to_planes(np.array([10]), 8),
                                         to_planes(np.array([0]), 8), 8))
        assert int(q[0]) == 255

    def test_shape_mismatch(self):
        alu = BitSerialAlu()
        with pytest.raises(ValueError):
            alu.add(np.zeros((8, 2), dtype=np.uint8),
                    np.zeros((8, 3), dtype=np.uint8))


class TestDesign:
    def test_value_level_ops(self, rng):
        d = BinaryCimDesign()
        a = rng.integers(0, 128, 100)
        b = rng.integers(0, 128, 100)
        assert np.array_equal(d.add(a, b), a + b)
        assert np.array_equal(d.subtract(a, b), np.abs(a - b))
        assert np.array_equal(d.multiply(a, b), a * b)

    def test_multiply_scaled(self, rng):
        d = BinaryCimDesign()
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        assert np.array_equal(d.multiply_scaled(a, b), (a * b) >> 8)

    def test_measured_cycles_match_table(self):
        measured = BinaryCimDesign().measure_cycles()
        assert measured["add"] == BINARY_OP_CYCLES["add"]
        assert measured["multiply"] == BINARY_OP_CYCLES["multiply"]
        assert measured["divide"] == BINARY_OP_CYCLES["divide"]

    def test_ledger_grows(self):
        d = BinaryCimDesign()
        d.add(np.array([1]), np.array([2]))
        assert d.ledger.energy_j > 0
        d.reset_ledger()
        assert d.ledger.energy_j == 0

    def test_word_faults_perturb_high_bits(self):
        d = BinaryCimDesign(fault_rate=0.05, fault_granularity="word", rng=0)
        a = np.zeros(5_000, dtype=np.int64)
        out = d.add(a, a)
        assert out.max() >= 64   # high-significance flips occurred

    def test_gate_faults_corrupt_multiply(self):
        d = BinaryCimDesign(fault_rate=0.01, fault_granularity="gate", rng=0)
        a = np.full(500, 100)
        out = d.multiply(a, a)
        assert np.mean(out != 10_000) > 0.5

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            BinaryCimDesign(fault_granularity="molecule")

    def test_op_cost(self):
        d = BinaryCimDesign()
        led = d.op_cost("multiply")
        assert led.latency_s > d.op_cost("add").latency_s
        with pytest.raises(ValueError):
            d.op_cost("sqrt")
