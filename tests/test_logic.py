"""Unit tests for repro.logic (XAG + scouting-logic synthesis)."""

import numpy as np
import pytest

from repro.logic.xag import LIT_FALSE, LIT_TRUE, Xag
from repro.logic.synthesis import map_to_scouting


def _vec(x):
    return np.array(x, dtype=np.uint8)


class TestXagConstruction:
    def test_and_truth_table(self):
        x = Xag()
        a, b = x.add_input("a"), x.add_input("b")
        x.add_output(x.add_and(a, b), "y")
        out = x.evaluate({"a": _vec([0, 0, 1, 1]), "b": _vec([0, 1, 0, 1])})
        assert list(out["y"]) == [0, 0, 0, 1]

    def test_xor_truth_table(self):
        x = Xag()
        a, b = x.add_input("a"), x.add_input("b")
        x.add_output(x.add_xor(a, b), "y")
        out = x.evaluate({"a": _vec([0, 0, 1, 1]), "b": _vec([0, 1, 0, 1])})
        assert list(out["y"]) == [0, 1, 1, 0]

    def test_or_via_demorgan(self):
        x = Xag()
        a, b = x.add_input("a"), x.add_input("b")
        x.add_output(x.add_or(a, b), "y")
        out = x.evaluate({"a": _vec([0, 0, 1, 1]), "b": _vec([0, 1, 0, 1])})
        assert list(out["y"]) == [0, 1, 1, 1]

    def test_maj_truth_table(self):
        x = Xag()
        a, b, c = (x.add_input(n) for n in "abc")
        x.add_output(x.add_maj(a, b, c), "y")
        ins = [(i >> 2 & 1, i >> 1 & 1, i & 1) for i in range(8)]
        out = x.evaluate({
            "a": _vec([i[0] for i in ins]),
            "b": _vec([i[1] for i in ins]),
            "c": _vec([i[2] for i in ins])})
        assert list(out["y"]) == [int(sum(i) >= 2) for i in ins]

    def test_mux_truth_table(self):
        x = Xag()
        s, a, b = (x.add_input(n) for n in "sab")
        x.add_output(x.add_mux(s, a, b), "y")
        out = x.evaluate({"s": _vec([0, 0, 1, 1]), "a": _vec([1, 0, 1, 0]),
                          "b": _vec([0, 1, 0, 1])})
        assert list(out["y"]) == [1, 0, 0, 1]


class TestSimplification:
    def test_and_constants(self):
        x = Xag()
        a = x.add_input()
        assert x.add_and(a, LIT_FALSE) == LIT_FALSE
        assert x.add_and(a, LIT_TRUE) == a
        assert x.add_and(a, a) == a
        assert x.add_and(a, a ^ 1) == LIT_FALSE
        assert x.num_gates == 0

    def test_xor_constants(self):
        x = Xag()
        a = x.add_input()
        assert x.add_xor(a, LIT_FALSE) == a
        assert x.add_xor(a, LIT_TRUE) == (a ^ 1)
        assert x.add_xor(a, a) == LIT_FALSE
        assert x.add_xor(a, a ^ 1) == LIT_TRUE
        assert x.num_gates == 0

    def test_structural_hashing(self):
        x = Xag()
        a, b = x.add_input(), x.add_input()
        g1 = x.add_and(a, b)
        g2 = x.add_and(b, a)   # commuted
        assert g1 == g2
        assert x.num_gates == 1

    def test_xor_complement_pushed_out(self):
        x = Xag()
        a, b = x.add_input(), x.add_input()
        g1 = x.add_xor(a, b)
        g2 = x.add_xor(a ^ 1, b)
        assert g2 == (g1 ^ 1)
        assert x.num_gates == 1

    def test_bad_literal_rejected(self):
        x = Xag()
        a = x.add_input()
        with pytest.raises(ValueError):
            x.add_and(a, 999)


class TestStats:
    def test_counts_and_levels(self):
        x = Xag()
        a, b, c = (x.add_input() for _ in range(3))
        x.add_output(x.add_and(x.add_xor(a, b), c))
        counts = x.gate_counts()
        assert counts["and"] == 1 and counts["xor"] == 1
        assert x.levels() == 2
        assert x.num_inputs == 3 and x.num_outputs == 1

    def test_missing_input_raises(self):
        x = Xag()
        x.add_input("a")
        x.add_output(x.constant(False))
        with pytest.raises(KeyError):
            x.evaluate({})


class TestSynthesis:
    def _gt4(self):
        from repro.imsc.gtnetwork import build_gt_xag
        return build_gt_xag(4)

    def test_baseline_writes_every_gate(self):
        xag = self._gt4()
        sched = map_to_scouting(xag, "baseline")
        assert sched.senses == xag.num_gates
        assert sched.writes == xag.num_gates

    def test_latch_strategy_fewer_writes(self):
        xag = self._gt4()
        base = map_to_scouting(xag, "baseline")
        opt = map_to_scouting(xag, "latch")
        assert opt.writes < base.writes
        assert opt.senses == base.senses

    def test_feedback_between_baseline_and_latch(self):
        xag = self._gt4()
        fb = map_to_scouting(xag, "feedback")
        base = map_to_scouting(xag, "baseline")
        opt = map_to_scouting(xag, "latch")
        assert opt.writes <= fb.writes <= base.writes

    def test_latency_energy_monotone(self):
        xag = self._gt4()
        base = map_to_scouting(xag, "baseline")
        opt = map_to_scouting(xag, "latch")
        t = (2.5e-9, 18.5e-9)
        assert opt.latency(*t) < base.latency(*t)
        e = (0.13e-9, 0.32e-9)
        assert opt.energy(*e) < base.energy(*e)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            map_to_scouting(self._gt4(), "magic")

    def test_counts_dict(self):
        sched = map_to_scouting(self._gt4(), "latch")
        c = sched.counts()
        assert set(c) == {"sense", "write", "latch"}
        assert c["sense"] > 0
