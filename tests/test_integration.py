"""Cross-module integration tests: full flows over multiple subsystems."""

import numpy as np
import pytest

from repro.core import ops
from repro.core.flow import ScFlow
from repro.core.sng import SegmentSng
from repro.energy.model import replay_trace
from repro.energy.nvmain import MemorySystem
from repro.energy.traces import pipelined_flow_trace
from repro.imsc.engine import InMemorySCEngine
from repro.imsc.imsng import ImsngUnit
from repro.reram.faults import DEFAULT_FAULT_RATES, derive_fault_rates
from repro.reram.trng import ReRamTrng


class TestTrngToSngChain:
    def test_reram_trng_drives_segment_sng(self):
        """The physical TRNG plugs into the functional IMSNG model."""
        sng = SegmentSng(ReRamTrng(bias=0.002, rng=0), segment_bits=8)
        s = sng.generate(0.42, 30_000)
        assert abs(float(s.value()) - 0.42) < 0.02

    def test_flow_with_imsng_and_engine_converter(self):
        """ScFlow orchestrates IMSNG streams + in-memory conversion."""
        engine = InMemorySCEngine(rng=1)
        flow = ScFlow(lambda s: ops.mul_and(s["a"], s["b"]),
                      sng=engine, converter=engine)
        res = flow.run({"a": 0.5, "b": 0.8}, length=2048)
        assert float(res.value) == pytest.approx(0.4, abs=0.06)


class TestBitExactVsVectorised:
    def test_imsng_unit_and_engine_agree_statistically(self):
        """The command-level unit and the vectorised engine implement the
        same conversion semantics."""
        unit_vals = []
        for seed in range(5):
            u = ImsngUnit(width=4096, mode="opt", rng=seed)
            unit_vals.append(u.convert(0.37).bits.mean())
        e = InMemorySCEngine(rng=99, trng_bias=0.0)
        eng_vals = e.generate(np.full(5, 0.37), 4096).value()
        assert abs(np.mean(unit_vals) - np.mean(eng_vals)) < 0.02

    def test_trace_pricing_matches_engine_ledger_scaling(self):
        """Replaying the unit's trace and the engine's closed-form ledger
        agree on the conversion cost."""
        u = ImsngUnit(width=256, mode="opt", rng=0)
        u.load_operand(0.5)
        u.load_random()
        res = u.compare()
        led = replay_trace(res.commands)
        from repro.imsc.cost import imsng_conversion_cost
        closed = imsng_conversion_cost(8, "opt")
        assert led.latency_ns == pytest.approx(closed.latency_ns, rel=0.02)
        assert led.energy_nj == pytest.approx(closed.energy_nj, rel=0.25)


class TestDerivedRatesMatchDefaults:
    def test_default_rates_near_derivation(self):
        rates = derive_fault_rates(trials_per_case=16_384, seed=12345)
        assert rates.and2 == pytest.approx(DEFAULT_FAULT_RATES.and2, abs=0.004)
        assert rates.xor2 == pytest.approx(DEFAULT_FAULT_RATES.xor2, abs=0.004)
        assert rates.maj3 == pytest.approx(DEFAULT_FAULT_RATES.maj3, abs=0.004)


class TestPipelineSimulation:
    def test_banked_flow_beats_single_bank(self):
        trace4 = pipelined_flow_trace(n_operands=3, n_banks=4)
        res4 = MemorySystem(4).simulate(trace4)
        trace1 = pipelined_flow_trace(n_operands=3, n_banks=1)
        res1 = MemorySystem(1).simulate(trace1)
        assert res4.makespan_s < res1.makespan_s
        # Energy is conserved regardless of banking.
        assert res4.energy_j == pytest.approx(res1.energy_j, rel=0.01)


class TestEndToEndQualityCost:
    def test_single_run_yields_quality_and_cost(self):
        from repro.apps import run_app
        r = run_app("compositing", "sc", length=64, faulty=True, size=16,
                    seed=3)
        assert 0 < r.ssim_pct <= 100
        assert r.ledger.energy_j > 0
        bd = r.ledger.breakdown()
        assert any(k.startswith("imsng") for k in bd)

    def test_sc_beats_bincim_under_faults_on_matting(self):
        from repro.apps import run_app
        sc = run_app("matting", "sc", length=128, faulty=True, size=24,
                     seed=5)
        binary = run_app("matting", "bincim", faulty=True, size=24, seed=5)
        assert sc.ssim_pct > binary.ssim_pct
