"""Unit tests for repro.reram.array (crossbar model)."""

import numpy as np
import pytest

from repro.reram.array import CrossbarArray


class TestWriteRead:
    def test_roundtrip(self):
        arr = CrossbarArray(4, 64, rng=0)
        data = np.random.default_rng(0).integers(0, 2, 64).astype(np.uint8)
        arr.write_row(1, data)
        assert np.array_equal(arr.read_row(1), data)

    def test_differential_write_counts_switched_cells(self):
        arr = CrossbarArray(2, 8, rng=0)
        n1 = arr.write_row(0, np.ones(8, dtype=np.uint8))
        n2 = arr.write_row(0, np.ones(8, dtype=np.uint8))   # no change
        assert n1 == 8 and n2 == 0

    def test_non_differential_always_pulses(self):
        arr = CrossbarArray(2, 8, rng=0)
        arr.write_row(0, np.ones(8, dtype=np.uint8))
        n = arr.write_row(0, np.ones(8, dtype=np.uint8), differential=False)
        assert n == 8

    def test_write_resamples_resistance(self):
        arr = CrossbarArray(1, 4, rng=0)
        arr.write_row(0, np.ones(4, dtype=np.uint8))
        r1 = arr.resistances.copy()
        arr.write_row(0, np.ones(4, dtype=np.uint8), differential=False)
        assert not np.allclose(arr.resistances, r1)

    def test_block_write(self):
        arr = CrossbarArray(4, 8, rng=0)
        block = np.eye(3, 8, dtype=np.uint8)
        arr.write_block(1, block)
        assert np.array_equal(arr.states[1:4], block)

    def test_bad_row_data(self):
        arr = CrossbarArray(2, 4, rng=0)
        with pytest.raises(ValueError):
            arr.write_row(0, np.array([0, 1, 2, 1]))
        with pytest.raises(ValueError):
            arr.write_row(0, np.zeros(5, dtype=np.uint8))
        with pytest.raises(IndexError):
            arr.write_row(9, np.zeros(4, dtype=np.uint8))

    def test_states_view_readonly(self):
        arr = CrossbarArray(2, 4, rng=0)
        with pytest.raises(ValueError):
            arr.states[0, 0] = 1


class TestAnalog:
    def test_bitline_currents_scale_with_lrs_count(self):
        arr = CrossbarArray(3, 128, rng=1)
        arr.write_row(0, np.ones(128, dtype=np.uint8))
        arr.write_row(1, np.ones(128, dtype=np.uint8))
        one = CrossbarArray(3, 128, rng=1)
        one.write_row(0, np.ones(128, dtype=np.uint8))
        i_two = arr.bitline_currents([0, 1]).mean()
        i_one = one.bitline_currents([0, 1]).mean()   # row1 is HRS
        assert i_two > 1.5 * i_one

    def test_bitline_requires_rows(self):
        arr = CrossbarArray(2, 4, rng=0)
        with pytest.raises(ValueError):
            arr.bitline_currents([])

    def test_reference_column_counts_ones(self):
        arr = CrossbarArray(64, 4, rng=2)
        for r in range(64):
            arr.write_row(r, np.ones(4, dtype=np.uint8))
        v = np.zeros(64)
        v[:16] = 0.2
        i16 = arr.reference_column_current(0, v)
        v[:32] = 0.2
        i32 = arr.reference_column_current(0, v)
        assert i32 == pytest.approx(2 * i16, rel=0.25)

    def test_reference_column_validation(self):
        arr = CrossbarArray(4, 4, rng=0)
        with pytest.raises(IndexError):
            arr.reference_column_current(9, np.zeros(4))
        with pytest.raises(ValueError):
            arr.reference_column_current(0, np.zeros(3))


class TestStats:
    def test_counters(self):
        arr = CrossbarArray(4, 8, rng=0)
        arr.write_row(0, np.ones(8, dtype=np.uint8))
        arr.read_row(0)
        arr.bitline_currents([0, 1])
        assert arr.stats.row_writes == 1
        assert arr.stats.row_reads == 1
        assert arr.stats.multi_row_activations == 1
        assert arr.stats.cells_written == 8

    def test_endurance_tracking(self):
        arr = CrossbarArray(1, 4, rng=0)
        for i in range(10):
            arr.write_row(0, np.full(4, i % 2, dtype=np.uint8))
        assert arr.max_cell_writes == 9   # first write was all-zero no-op
        assert 0 < arr.endurance_fraction_used() < 1
