"""Bit-exact equivalence of the packed and unpacked execution backends.

Seeded property-style tests: random stream batches are built from the same
raw bits under every registered backend, each SC op is executed under each,
and the results are compared bit-for-bit (plus popcount/value recovery).
Odd lengths (1, 7, 127, 1000) exercise the packed backend's tail-word
masking; 64 hits the exact word boundary.

This file doubles as the conformance suite for new backends: register a
third backend and add its name to ``BACKENDS`` to get full coverage.
"""

import numpy as np
import pytest

from repro.core import ops
from repro.core.backend import (
    PackedBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.core.bitstream import Bitstream
from repro.core.correlation import correlation_matrix, overlap_probability, scc
from repro.core.sng import ComparatorSng, IdealBitSource, SegmentSng, unary_stream
from repro.core.rng import Lfsr, SoftwareRng
from repro.core.streambatch import StreamBatch
from repro.apps import run_app
from repro.config import RunConfig
from repro.imsc.engine import InMemorySCEngine
from repro.reram.faults import GateFaultRates

BACKENDS = ("unpacked", "packed")
LENGTHS = (1, 7, 64, 127, 1000)
BATCH_SHAPES = ((), (3,), (2, 5))


def _rand_bits(rng, batch, length):
    return rng.integers(0, 2, size=batch + (length,), dtype=np.uint8)


def _streams(bits, name):
    with use_backend(name):
        return Bitstream(bits)


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        assert {"unpacked", "packed"} <= set(available_backends())

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("does-not-exist")

    def test_set_backend_switches_default(self):
        prev = get_backend()
        try:
            set_backend("packed")
            assert Bitstream([1, 0, 1]).backend.name == "packed"
        finally:
            set_backend(prev.name)

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("packed") as be:
            assert be.name == "packed"
            assert get_backend() is be
        assert get_backend() is before

    def test_explicit_backend_argument(self):
        bs = Bitstream([1, 0, 1, 1], backend="packed")
        assert bs.backend.name == "packed"
        assert list(bs.bits) == [1, 0, 1, 1]


# ----------------------------------------------------------------------
# Representation round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("batch", BATCH_SHAPES)
class TestRoundTrip:
    def test_bits_roundtrip(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(7), batch, length)
        bs = _streams(bits, name)
        assert bs.shape == bits.shape
        assert bs.length == length
        np.testing.assert_array_equal(bs.bits, bits)

    def test_packed_bytes_roundtrip(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(8), batch, length)
        bs = _streams(bits, name)
        again = Bitstream.from_packed(bs.packed(), length, backend=name)
        assert again == bs

    def test_popcount_and_values(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(9), batch, length)
        bs = _streams(bits, name)
        expect = bits.sum(axis=-1, dtype=np.int64)
        np.testing.assert_array_equal(bs.popcount(), expect)
        np.testing.assert_allclose(bs.to_value(), expect / length)
        np.testing.assert_allclose(bs.bipolar_value(), 2 * expect / length - 1)


# ----------------------------------------------------------------------
# Op-by-op equivalence
# ----------------------------------------------------------------------
BINARY_OPS = [
    ops.mul_and,
    ops.mul_xnor,
    ops.add_or,
    ops.sub_xor,
    ops.min_and,
    ops.max_or,
    ops.div_cordiv,
    ops.div_jk,
]

TERNARY_OPS = [
    ops.scaled_add_mux,
    ops.scaled_add_maj,
    lambda x, y, s: ops.mux2(s, x, y),
]


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("batch", BATCH_SHAPES)
class TestOpEquivalence:
    def _operands(self, length, batch, k, seed=123):
        rng = np.random.default_rng(seed + length + len(batch))
        return [_rand_bits(rng, batch, length) for _ in range(k)]

    @pytest.mark.parametrize("op", BINARY_OPS,
                             ids=lambda f: getattr(f, "__name__", "op"))
    def test_binary_op(self, length, batch, op):
        xb, yb = self._operands(length, batch, 2)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                out = op(Bitstream(xb), Bitstream(yb))
                assert out.backend.name == name
                results[name] = (out.bits.copy(), out.popcount().copy())
        ref_bits, ref_pop = results["unpacked"]
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(results[name][0], ref_bits,
                                          err_msg=f"{op} bits differ ({name})")
            np.testing.assert_array_equal(results[name][1], ref_pop)

    @pytest.mark.parametrize("op", TERNARY_OPS,
                             ids=("scaled_add_mux", "scaled_add_maj", "mux2"))
    def test_ternary_op(self, length, batch, op):
        xb, yb, sb = self._operands(length, batch, 3, seed=321)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                out = op(Bitstream(xb), Bitstream(yb), Bitstream(sb))
                results[name] = out.bits.copy()
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(results[name], results["unpacked"])

    def test_not_stream(self, length, batch):
        (xb,) = self._operands(length, batch, 1)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                results[name] = ops.not_stream(Bitstream(xb)).bits.copy()
        np.testing.assert_array_equal(results["packed"], results["unpacked"])
        np.testing.assert_array_equal(results["unpacked"], 1 - xb)

    def test_structural_ops(self, length, batch):
        (xb,) = self._operands(length, batch, 1, seed=555)
        for name in BACKENDS:
            bs = _streams(xb, name)
            np.testing.assert_array_equal(
                bs.roll(3).bits, np.roll(xb, 3, axis=-1))
            np.testing.assert_array_equal(bs.copy().bits, xb)
            if batch:
                flat = bs.reshape(int(np.prod(batch)))
                np.testing.assert_array_equal(
                    flat.bits, xb.reshape(-1, length))
                np.testing.assert_array_equal(bs[0].bits, xb[0])
            both = bs.concat(bs)
            assert both.length == 2 * length
            np.testing.assert_array_equal(
                both.bits, np.concatenate([xb, xb], axis=-1))


# ----------------------------------------------------------------------
# Generation equivalence: same seeds => identical streams on every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("length", (1, 7, 127, 256))
class TestGenerationEquivalence:
    def _collect(self, name, length):
        with use_backend(name):
            x = np.array([0.1, 0.5, 0.93])
            y = np.array([0.7, 0.2, 0.4])
            comp = ComparatorSng(SoftwareRng(8, seed=11),
                                 pair_source=SoftwareRng(8, seed=13))
            lfsr = ComparatorSng(Lfsr(seed=1))
            seg = SegmentSng(IdealBitSource(seed=17), segment_bits=8)
            out = [
                comp.generate(x, length).bits,
                comp.generate_correlated(x, length).bits,
                lfsr.generate(x, length).bits,
                seg.generate(x, length).bits,
                seg.generate_correlated(x, length).bits,
                unary_stream(x, length).bits,
                Bitstream.bernoulli(x, length, rng=23).bits,
            ]
            out.extend(comp.generate_pair(x, y, length, correlated=True)[0].bits
                       for _ in range(1))
            pair = seg.generate_pair(x, y, length, correlated=False)
            out.extend([pair[0].bits, pair[1].bits])
            return [a.copy() for a in out]

    def test_all_generators_bit_exact(self, length):
        reference = self._collect("unpacked", length)
        for name in BACKENDS[1:]:
            candidate = self._collect(name, length)
            assert len(candidate) == len(reference)
            for i, (got, want) in enumerate(zip(candidate, reference)):
                np.testing.assert_array_equal(
                    got, want, err_msg=f"generator #{i} differs on {name}")


# ----------------------------------------------------------------------
# Correlation metrics route through the backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("length", (7, 127, 512))
def test_scc_equivalence(length):
    rng = np.random.default_rng(99)
    xb = _rand_bits(rng, (4,), length)
    yb = _rand_bits(rng, (4,), length)
    vals = {}
    for name in BACKENDS:
        with use_backend(name):
            x, y = Bitstream(xb), Bitstream(yb)
            vals[name] = (overlap_probability(x, y), scc(x, y),
                          correlation_matrix(Bitstream(xb)))
    for got, want in zip(vals["packed"], vals["unpacked"]):
        np.testing.assert_allclose(got, want, rtol=0, atol=0)


# ----------------------------------------------------------------------
# Cross-backend interop
# ----------------------------------------------------------------------
def test_mixed_backend_operands_follow_left_operand():
    bits_a = np.array([1, 0, 1, 1, 0, 1, 0], dtype=np.uint8)
    bits_b = np.array([1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
    a = Bitstream(bits_a, backend="packed")
    b = Bitstream(bits_b, backend="unpacked")
    out = a & b
    assert out.backend.name == "packed"
    np.testing.assert_array_equal(out.bits, bits_a & bits_b)
    assert a == Bitstream(bits_a, backend="unpacked")  # cross-backend eq


def test_packed_canonical_tail_stays_zero():
    """NOT on an odd length must not leak ones into the tail word."""
    be = PackedBackend()
    bs = Bitstream(np.zeros(70, dtype=np.uint8), backend=be)
    inverted = ~bs
    assert int(inverted.popcount()) == 70
    double = ~inverted
    assert int(double.popcount()) == 0
    # Payload tail bits beyond N are zero in canonical form.
    raw = inverted._data
    assert int(np.bitwise_count(raw).sum()) == 70


# ----------------------------------------------------------------------
# StreamBatch: payload-level batch container
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("length", (7, 64, 127))
class TestStreamBatch:
    def test_select_and_ops_match_bits(self, name, length):
        rng = np.random.default_rng(41)
        xb = _rand_bits(rng, (3, 5), length)
        yb = _rand_bits(rng, (3, 5), length)
        sx = StreamBatch.from_bits(xb, name)
        sy = StreamBatch.from_bits(yb, name)
        np.testing.assert_array_equal(sx.select(1).bits, xb[1])
        np.testing.assert_array_equal(sx[2].select(0).bits, xb[2][0])
        np.testing.assert_array_equal((sx & sy).bits, xb & yb)
        np.testing.assert_array_equal((sx | sy).bits, xb | yb)
        np.testing.assert_array_equal((sx ^ sy).bits, xb ^ yb)
        np.testing.assert_array_equal((~sx).bits, 1 - xb)
        np.testing.assert_array_equal(sx.popcount(),
                                      xb.sum(axis=-1, dtype=np.int64))
        np.testing.assert_array_equal(
            StreamBatch.maj(sx, sy, ~sx).bits,
            (xb & yb) | (xb & (1 - xb)) | (yb & (1 - xb)))

    def test_roundtrip_bitstream_zero_copy(self, name, length):
        rng = np.random.default_rng(42)
        xb = _rand_bits(rng, (4,), length)
        with use_backend(name):
            bs = Bitstream(xb)
        sb = StreamBatch.from_bitstream(bs)
        assert sb.data is bs._data
        back = sb.to_bitstream()
        assert back._data is sb.data
        assert back == bs

    def test_flip_constant_compare(self, name, length):
        rng = np.random.default_rng(43)
        xb = _rand_bits(rng, (6,), length)
        mask = rng.random((6, length)) < 0.3
        got = StreamBatch.from_bits(xb, name).flip(mask)
        np.testing.assert_array_equal(got.bits, xb ^ mask.astype(np.uint8))
        const = StreamBatch.constant(np.array([0, 1, 1, 0]), length, name)
        np.testing.assert_array_equal(
            const.bits, np.array([0, 1, 1, 0], np.uint8)[:, None]
            * np.ones(length, np.uint8))
        codes = rng.integers(0, 256, size=(5,))
        rn = rng.integers(0, 256, size=(length,))
        cmp_ = StreamBatch.compare(codes, rn, name)
        np.testing.assert_array_equal(
            cmp_.bits, (codes[:, None] > rn[None, :]).astype(np.uint8))

    def test_scc_matches_bitstream_metric(self, name, length):
        rng = np.random.default_rng(44)
        xb = _rand_bits(rng, (4,), length)
        yb = _rand_bits(rng, (4,), length)
        got = StreamBatch.from_bits(xb, name).scc(
            StreamBatch.from_bits(yb, name))
        want = scc(Bitstream(xb, backend=name), Bitstream(yb, backend=name))
        np.testing.assert_allclose(got, want, rtol=0, atol=0)


# ----------------------------------------------------------------------
# Faulty engine: word-domain flips vs the per-bit oracle
# ----------------------------------------------------------------------
# Rates chosen so every gate (including the CORDIV read latches) actually
# flips bits during the test.
_TEST_RATES = GateFaultRates(and2=0.02, or2=0.015, xor2=0.03, maj3=0.02,
                             read=0.01)


def _engine_recipe(backend_name, fault_domain, faulty=True, length=96,
                   seed=1234):
    """One fixed tour through every engine stage; returns raw bit arrays."""
    rates = _TEST_RATES if faulty else None
    with use_backend(backend_name):
        eng = InMemorySCEngine(fault_rates=rates, rng=seed,
                               fault_domain=fault_domain, ideal_stob=True)
        x = np.linspace(0.05, 0.95, 12).reshape(3, 4)
        y = x[::-1]
        out = []
        sx = eng.generate(x, length)
        sy = eng.generate_correlated(y, length)
        pa, pb = eng.generate_pair(x, y, length, correlated=True)
        out += [sx.bits, sy.bits, pa.bits, pb.bits]
        r = eng.generate(np.full(x.shape, 0.5), length)
        for op in (eng.multiply, eng.approx_add, eng.abs_subtract,
                   eng.minimum, eng.maximum, eng.divide):
            out.append(op(sy, sx).bits)
        out.append(eng.scaled_add(sx, sy, r).bits)
        out.append(eng.maj(sx, sy, r).bits)
        out.append(eng.mux(r, sx, sy).bits)
        out.append(np.asarray(eng.to_binary(sx)))
        return [np.array(a, copy=True) for a in out]


class TestFaultyEngineEquivalence:
    """Word-domain fault injection is bit-exact vs the per-bit oracle."""

    @pytest.mark.parametrize("mode", ("naive", "opt"))
    def test_gt_scan_domains_agree(self, mode):
        length = 77
        for name in BACKENDS:
            with use_backend(name):
                ref = None
                for domain in ("bit", "word"):
                    eng = InMemorySCEngine(mode=mode, fault_rates=_TEST_RATES,
                                           rng=7, fault_domain=domain)
                    got = eng.generate(np.linspace(0, 1, 9), length).bits
                    if ref is None:
                        ref = got
                    else:
                        np.testing.assert_array_equal(
                            got, ref, err_msg=f"{mode}/{name}/{domain}")

    @pytest.mark.parametrize("faulty", (False, True),
                             ids=("fault-free", "faulty"))
    def test_full_recipe_all_domains_and_backends(self, faulty):
        reference = _engine_recipe("unpacked", "bit", faulty)
        for name in BACKENDS:
            for domain in ("bit", "word"):
                got = _engine_recipe(name, domain, faulty)
                assert len(got) == len(reference)
                for i, (g, w) in enumerate(zip(got, reference)):
                    np.testing.assert_array_equal(
                        g, w,
                        err_msg=f"stage #{i} differs ({name}/{domain})")

    def test_fault_free_fast_path_matches_per_bit_scan(self):
        # The vectorised X > RN comparison must equal the historical
        # MSB-first scan bit for bit (same TRNG draws, no extra RNG).
        x = np.linspace(0.0, 1.0, 33)
        for name in BACKENDS:
            with use_backend(name):
                fast = InMemorySCEngine(rng=11, fault_domain="word")
                slow = InMemorySCEngine(rng=11, fault_domain="bit")
                np.testing.assert_array_equal(
                    fast.generate_correlated(x, 130).bits,
                    slow.generate_correlated(x, 130).bits)

    def test_no_unpack_on_packed_fast_path(self, monkeypatch):
        """Engine ops must never leave the word domain under `packed`.

        Covers the fault-free fast path AND word-domain fault injection;
        only the per-bit oracles (``fault_domain='bit'``,
        ``cell_model='per-bit'``) may unpack — the column S-to-B model
        reads out through the backend-routed popcount.
        """
        def boom(self, data, length):
            raise AssertionError("silent unpack on the packed hot path")

        monkeypatch.setattr(PackedBackend, "unpack", boom)
        with use_backend("packed"):
            for rates in (None, _TEST_RATES):
                eng = InMemorySCEngine(fault_rates=rates, rng=3,
                                       cell_model="column")
                x = eng.generate_correlated(np.linspace(0.1, 0.9, 8), 96)
                y = eng.generate(np.linspace(0.2, 0.8, 8), 96)
                r = eng.generate(np.full(8, 0.5), 96)
                eng.multiply(x, y)
                eng.maj(x, y, r)
                eng.mux(r, x, y)
                eng.abs_subtract(x, y)
                eng.divide(eng.minimum(x, y), eng.maximum(x, y))
                eng.to_binary(x)


# ----------------------------------------------------------------------
# run_app: sharded executor equivalence + quality pinned to seed values
# ----------------------------------------------------------------------
# Seeded quality of the *untiled* SC pipeline (length=64, size=24, seed=3).
#
# Two pin sets since the fast-path release:
#
# * ORACLE — recorded from the pre-refactor per-pixel implementation
#   (per-bit S-to-B, dense fault masks).  ``RunConfig.oracle()`` must keep
#   reproducing these bit-exactly forever: they are the bridge to every
#   pre-release trajectory.  Any drift means the oracle stream bits
#   changed.
# * FAST — recorded at the defaults flip under ``RunConfig.fast()``
#   (column S-to-B, sparse fault masks; the package default).  Any drift
#   means the fast-path draws changed.
#
# Both sets are backend-invariant (packed and unpacked produce identical
# streams) — only the cell_model/fault_sampling axes separate them.
PINNED_RUN_APP_ORACLE = {
    # (app, faulty): (ssim_pct, psnr_db)
    ("compositing", False): (92.0743228902705, 28.529692781849363),
    ("compositing", True): (90.15592830612565, 27.56678281921518),
    ("interpolation", False): (88.38105346722713, 28.35142099982967),
    ("interpolation", True): (79.76320811304551, 27.21821222058037),
    ("matting", False): (97.38044101019061, 35.28308203957352),
    ("matting", True): (94.61673326969256, 32.665413628096395),
}
PINNED_RUN_APP_FAST = {
    # (app, faulty): (ssim_pct, psnr_db)
    ("compositing", False): (91.98246556038569, 28.533232847609366),
    ("compositing", True): (91.08000989464522, 26.91474867552891),
    ("interpolation", False): (87.70983918927287, 28.196425303837763),
    ("interpolation", True): (81.14824629357494, 27.37768335136721),
    ("matting", False): (97.53157884218786, 35.58039388996416),
    ("matting", True): (94.21609220052596, 32.5457763920081),
}


class TestRunAppSharding:
    @pytest.mark.parametrize("faulty", (False, True),
                             ids=("fault-free", "faulty"))
    @pytest.mark.parametrize("app", ("compositing", "interpolation",
                                     "matting"))
    def test_quality_pinned_vs_seed_values(self, app, faulty):
        """Bare run_app (no config) runs the fast preset, pinned per seed."""
        r = run_app(app, "sc", length=64, size=24, seed=3, faulty=faulty)
        ssim, psnr = PINNED_RUN_APP_FAST[(app, faulty)]
        assert r.ssim_pct == pytest.approx(ssim, rel=1e-9)
        assert r.psnr_db == pytest.approx(psnr, rel=1e-9)

    @pytest.mark.parametrize("faulty", (False, True),
                             ids=("fault-free", "faulty"))
    @pytest.mark.parametrize("app", ("compositing", "interpolation",
                                     "matting"))
    def test_oracle_preset_reproduces_historical_pins(self, app, faulty):
        """RunConfig.oracle() is bit-exact vs the pre-release goldens."""
        r = run_app(app, "sc", length=64, size=24, seed=3, faulty=faulty,
                    config=RunConfig.oracle())
        ssim, psnr = PINNED_RUN_APP_ORACLE[(app, faulty)]
        assert r.ssim_pct == pytest.approx(ssim, rel=1e-9)
        assert r.psnr_db == pytest.approx(psnr, rel=1e-9)

    @pytest.mark.parametrize("app", ("compositing", "interpolation",
                                     "matting"))
    def test_jobs_do_not_change_output(self, app):
        base = run_app(app, "sc", length=32, size=20, seed=5, tile=8, jobs=1)
        fan = run_app(app, "sc", length=32, size=20, seed=5, tile=8, jobs=3)
        np.testing.assert_array_equal(base.output, fan.output)
        assert fan.ledger.energy_j == pytest.approx(base.ledger.energy_j)
        assert fan.ledger.latency_s == pytest.approx(base.ledger.latency_s)

    def test_faulty_tiled_matches_per_bit_oracle(self):
        # Explicit dense on the word side: the fast default would sample
        # sparse masks, and only dense word flips are bit-identical to
        # the per-bit domain oracle (which is dense by definition).
        word = run_app("matting", "sc", length=32, size=20, seed=9,
                       faulty=True, tile=8, jobs=2, fault_domain="word",
                       fault_sampling="dense")
        bit = run_app("matting", "sc", length=32, size=20, seed=9,
                      faulty=True, tile=8, jobs=1, fault_domain="bit")
        np.testing.assert_array_equal(word.output, bit.output)

    def test_sharding_rejected_off_sc(self):
        with pytest.raises(ValueError, match="'sc' backend only"):
            run_app("compositing", "float", tile=8)
        with pytest.raises(ValueError, match="'sc' backend only"):
            run_app("matting", "bincim", jobs=2)
        # jobs without a tile grid would silently run single-process.
        with pytest.raises(ValueError, match="requires a tile size"):
            run_app("matting", "sc", jobs=2)


# ----------------------------------------------------------------------
# Filter kernels: golden values, backend equivalence, sharding, no-unpack
# ----------------------------------------------------------------------
from repro.apps.executor import run_tiled  # noqa: E402
from repro.apps.filters import (  # noqa: E402
    contrast_stretch_float,
    contrast_stretch_inputs,
    contrast_stretch_sc,
    gamma_correct_float,
    gamma_correct_inputs,
    gamma_correct_sc,
    mean_filter_float,
    mean_filter_inputs,
    mean_filter_sc,
    roberts_cross_float,
    roberts_cross_inputs,
    roberts_cross_sc,
)
from repro.apps.images import natural_scene  # noqa: E402

# Seeded MSE(%) vs the float reference of each filter (natural_scene 12x12
# seed 21, N=128, engine rng=7, per-bit S-to-B), recorded at the StreamBatch
# rewrite.  Identical under every backend; any drift means the stream bits
# (or the S-to-B draws) changed.
PINNED_FILTER_MSE = {
    "roberts_cross": 0.07985303397144504,
    "mean_filter": 0.061745319601497414,
    "gamma_correct": 0.1123982305017882,
    "contrast_stretch": 0.2043449752650328,
}

_FILTER_FNS = {
    "roberts_cross": (roberts_cross_sc, roberts_cross_float),
    "mean_filter": (mean_filter_sc, mean_filter_float),
    "gamma_correct": (gamma_correct_sc, gamma_correct_float),
    "contrast_stretch": (contrast_stretch_sc, contrast_stretch_float),
}


class TestFilterKernels:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("filt", sorted(PINNED_FILTER_MSE))
    def test_golden_mse_pinned_on_every_backend(self, name, filt):
        image = natural_scene(12, 12, np.random.default_rng(21))
        sc_fn, ref_fn = _FILTER_FNS[filt]
        with use_backend(name):
            eng = InMemorySCEngine(rng=7)
            out = sc_fn(eng, image, 128)
        mse = float(np.mean((out - ref_fn(image)) ** 2)) * 100.0
        assert mse == pytest.approx(PINNED_FILTER_MSE[filt], rel=1e-9)

    @pytest.mark.parametrize("filt", sorted(PINNED_FILTER_MSE))
    def test_tiled_jobs_do_not_change_output(self, filt):
        image = natural_scene(20, 20, np.random.default_rng(5))
        inputs = {
            "roberts_cross": roberts_cross_inputs,
            "mean_filter": mean_filter_inputs,
            "gamma_correct": gamma_correct_inputs,
            "contrast_stretch": contrast_stretch_inputs,
        }[filt](image)
        kwargs = {"gamma_correct": {"gamma": 0.5},
                  "contrast_stretch": {"lo": 0.25, "hi": 0.75}}.get(filt, {})
        with use_backend("packed"):
            base, led1 = run_tiled(filt, inputs, 32, tile=8, jobs=1, seed=5,
                                   engine_kwargs={"cell_model": "column"},
                                   kernel_kwargs=kwargs)
            fan, led3 = run_tiled(filt, inputs, 32, tile=8, jobs=3, seed=5,
                                  engine_kwargs={"cell_model": "column"},
                                  kernel_kwargs=kwargs)
        np.testing.assert_array_equal(base, fan)
        assert led3.energy_j == pytest.approx(led1.energy_j)
        assert led3.latency_s == pytest.approx(led1.latency_s)

    def test_no_unpack_on_packed_filters(self, monkeypatch):
        """The rewritten filter kernels must stay in the word domain.

        The earlier implementation re-wrapped ``Bitstream(streams.bits[k])``,
        forcing an unpack per operand role; with payload slicing plus the
        column S-to-B model the whole filter datapath (including the
        Bernstein select network) runs packed.
        """
        def boom(self, data, length):
            raise AssertionError("silent unpack on a packed filter path")

        monkeypatch.setattr(PackedBackend, "unpack", boom)
        image = natural_scene(8, 8, np.random.default_rng(2))
        with use_backend("packed"):
            for filt, (sc_fn, _) in _FILTER_FNS.items():
                eng = InMemorySCEngine(rng=1, cell_model="column")
                sc_fn(eng, image, 64)
