"""Bit-exact equivalence of the packed and unpacked execution backends.

Seeded property-style tests: random stream batches are built from the same
raw bits under every registered backend, each SC op is executed under each,
and the results are compared bit-for-bit (plus popcount/value recovery).
Odd lengths (1, 7, 127, 1000) exercise the packed backend's tail-word
masking; 64 hits the exact word boundary.

This file doubles as the conformance suite for new backends: register a
third backend and add its name to ``BACKENDS`` to get full coverage.
"""

import numpy as np
import pytest

from repro.core import ops
from repro.core.backend import (
    PackedBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.core.bitstream import Bitstream
from repro.core.correlation import correlation_matrix, overlap_probability, scc
from repro.core.sng import ComparatorSng, IdealBitSource, SegmentSng, unary_stream
from repro.core.rng import Lfsr, SoftwareRng

BACKENDS = ("unpacked", "packed")
LENGTHS = (1, 7, 64, 127, 1000)
BATCH_SHAPES = ((), (3,), (2, 5))


def _rand_bits(rng, batch, length):
    return rng.integers(0, 2, size=batch + (length,), dtype=np.uint8)


def _streams(bits, name):
    with use_backend(name):
        return Bitstream(bits)


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        assert {"unpacked", "packed"} <= set(available_backends())

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("does-not-exist")

    def test_set_backend_switches_default(self):
        prev = get_backend()
        try:
            set_backend("packed")
            assert Bitstream([1, 0, 1]).backend.name == "packed"
        finally:
            set_backend(prev.name)

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("packed") as be:
            assert be.name == "packed"
            assert get_backend() is be
        assert get_backend() is before

    def test_explicit_backend_argument(self):
        bs = Bitstream([1, 0, 1, 1], backend="packed")
        assert bs.backend.name == "packed"
        assert list(bs.bits) == [1, 0, 1, 1]


# ----------------------------------------------------------------------
# Representation round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("batch", BATCH_SHAPES)
class TestRoundTrip:
    def test_bits_roundtrip(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(7), batch, length)
        bs = _streams(bits, name)
        assert bs.shape == bits.shape
        assert bs.length == length
        np.testing.assert_array_equal(bs.bits, bits)

    def test_packed_bytes_roundtrip(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(8), batch, length)
        bs = _streams(bits, name)
        again = Bitstream.from_packed(bs.packed(), length, backend=name)
        assert again == bs

    def test_popcount_and_values(self, name, length, batch):
        bits = _rand_bits(np.random.default_rng(9), batch, length)
        bs = _streams(bits, name)
        expect = bits.sum(axis=-1, dtype=np.int64)
        np.testing.assert_array_equal(bs.popcount(), expect)
        np.testing.assert_allclose(bs.to_value(), expect / length)
        np.testing.assert_allclose(bs.bipolar_value(), 2 * expect / length - 1)


# ----------------------------------------------------------------------
# Op-by-op equivalence
# ----------------------------------------------------------------------
BINARY_OPS = [
    ops.mul_and,
    ops.mul_xnor,
    ops.add_or,
    ops.sub_xor,
    ops.min_and,
    ops.max_or,
    ops.div_cordiv,
    ops.div_jk,
]

TERNARY_OPS = [
    ops.scaled_add_mux,
    ops.scaled_add_maj,
    lambda x, y, s: ops.mux2(s, x, y),
]


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("batch", BATCH_SHAPES)
class TestOpEquivalence:
    def _operands(self, length, batch, k, seed=123):
        rng = np.random.default_rng(seed + length + len(batch))
        return [_rand_bits(rng, batch, length) for _ in range(k)]

    @pytest.mark.parametrize("op", BINARY_OPS,
                             ids=lambda f: getattr(f, "__name__", "op"))
    def test_binary_op(self, length, batch, op):
        xb, yb = self._operands(length, batch, 2)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                out = op(Bitstream(xb), Bitstream(yb))
                assert out.backend.name == name
                results[name] = (out.bits.copy(), out.popcount().copy())
        ref_bits, ref_pop = results["unpacked"]
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(results[name][0], ref_bits,
                                          err_msg=f"{op} bits differ ({name})")
            np.testing.assert_array_equal(results[name][1], ref_pop)

    @pytest.mark.parametrize("op", TERNARY_OPS,
                             ids=("scaled_add_mux", "scaled_add_maj", "mux2"))
    def test_ternary_op(self, length, batch, op):
        xb, yb, sb = self._operands(length, batch, 3, seed=321)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                out = op(Bitstream(xb), Bitstream(yb), Bitstream(sb))
                results[name] = out.bits.copy()
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(results[name], results["unpacked"])

    def test_not_stream(self, length, batch):
        (xb,) = self._operands(length, batch, 1)
        results = {}
        for name in BACKENDS:
            with use_backend(name):
                results[name] = ops.not_stream(Bitstream(xb)).bits.copy()
        np.testing.assert_array_equal(results["packed"], results["unpacked"])
        np.testing.assert_array_equal(results["unpacked"], 1 - xb)

    def test_structural_ops(self, length, batch):
        (xb,) = self._operands(length, batch, 1, seed=555)
        for name in BACKENDS:
            bs = _streams(xb, name)
            np.testing.assert_array_equal(
                bs.roll(3).bits, np.roll(xb, 3, axis=-1))
            np.testing.assert_array_equal(bs.copy().bits, xb)
            if batch:
                flat = bs.reshape(int(np.prod(batch)))
                np.testing.assert_array_equal(
                    flat.bits, xb.reshape(-1, length))
                np.testing.assert_array_equal(bs[0].bits, xb[0])
            both = bs.concat(bs)
            assert both.length == 2 * length
            np.testing.assert_array_equal(
                both.bits, np.concatenate([xb, xb], axis=-1))


# ----------------------------------------------------------------------
# Generation equivalence: same seeds => identical streams on every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("length", (1, 7, 127, 256))
class TestGenerationEquivalence:
    def _collect(self, name, length):
        with use_backend(name):
            x = np.array([0.1, 0.5, 0.93])
            y = np.array([0.7, 0.2, 0.4])
            comp = ComparatorSng(SoftwareRng(8, seed=11),
                                 pair_source=SoftwareRng(8, seed=13))
            lfsr = ComparatorSng(Lfsr(seed=1))
            seg = SegmentSng(IdealBitSource(seed=17), segment_bits=8)
            out = [
                comp.generate(x, length).bits,
                comp.generate_correlated(x, length).bits,
                lfsr.generate(x, length).bits,
                seg.generate(x, length).bits,
                seg.generate_correlated(x, length).bits,
                unary_stream(x, length).bits,
                Bitstream.bernoulli(x, length, rng=23).bits,
            ]
            out.extend(comp.generate_pair(x, y, length, correlated=True)[0].bits
                       for _ in range(1))
            pair = seg.generate_pair(x, y, length, correlated=False)
            out.extend([pair[0].bits, pair[1].bits])
            return [a.copy() for a in out]

    def test_all_generators_bit_exact(self, length):
        reference = self._collect("unpacked", length)
        for name in BACKENDS[1:]:
            candidate = self._collect(name, length)
            assert len(candidate) == len(reference)
            for i, (got, want) in enumerate(zip(candidate, reference)):
                np.testing.assert_array_equal(
                    got, want, err_msg=f"generator #{i} differs on {name}")


# ----------------------------------------------------------------------
# Correlation metrics route through the backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("length", (7, 127, 512))
def test_scc_equivalence(length):
    rng = np.random.default_rng(99)
    xb = _rand_bits(rng, (4,), length)
    yb = _rand_bits(rng, (4,), length)
    vals = {}
    for name in BACKENDS:
        with use_backend(name):
            x, y = Bitstream(xb), Bitstream(yb)
            vals[name] = (overlap_probability(x, y), scc(x, y),
                          correlation_matrix(Bitstream(xb)))
    for got, want in zip(vals["packed"], vals["unpacked"]):
        np.testing.assert_allclose(got, want, rtol=0, atol=0)


# ----------------------------------------------------------------------
# Cross-backend interop
# ----------------------------------------------------------------------
def test_mixed_backend_operands_follow_left_operand():
    bits_a = np.array([1, 0, 1, 1, 0, 1, 0], dtype=np.uint8)
    bits_b = np.array([1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
    a = Bitstream(bits_a, backend="packed")
    b = Bitstream(bits_b, backend="unpacked")
    out = a & b
    assert out.backend.name == "packed"
    np.testing.assert_array_equal(out.bits, bits_a & bits_b)
    assert a == Bitstream(bits_a, backend="unpacked")  # cross-backend eq


def test_packed_canonical_tail_stays_zero():
    """NOT on an odd length must not leak ones into the tail word."""
    be = PackedBackend()
    bs = Bitstream(np.zeros(70, dtype=np.uint8), backend=be)
    inverted = ~bs
    assert int(inverted.popcount()) == 70
    double = ~inverted
    assert int(double.popcount()) == 0
    # Payload tail bits beyond N are zero in canonical form.
    raw = inverted._data
    assert int(np.bitwise_count(raw).sum()) == 70
