"""Unit tests for repro.reram.trng, adc, faults and controller."""

import numpy as np
import pytest

from repro.reram.adc import Adc, AdcParams
from repro.reram.array import CrossbarArray
from repro.reram.controller import ArrayController
from repro.reram.device import DeviceParams
from repro.reram.faults import (
    BitFlipInjector,
    DEFAULT_FAULT_RATES,
    GateFaultRates,
    derive_fault_rates,
)
from repro.reram.trng import (
    ReRamTrng,
    WriteTrng,
    bit_statistics,
    von_neumann_debias,
)


class TestTrng:
    def test_balance(self):
        bits = ReRamTrng(bias=0.0, autocorr=0.0, rng=0).random_bits(100_000)
        assert abs(bits.mean() - 0.5) < 0.01

    def test_bias_visible(self):
        bits = ReRamTrng(bias=0.05, autocorr=0.0, rng=0).random_bits(100_000)
        assert bits.mean() > 0.53

    def test_debias_removes_bias(self):
        t = ReRamTrng(bias=0.08, autocorr=0.0, debias=True, rng=0)
        bits = t.random_bits(50_000)
        assert bits.size == 50_000
        assert abs(bits.mean() - 0.5) < 0.01
        assert t.reads_issued > 2 * t.bits_generated

    def test_cost_per_bit(self):
        raw = ReRamTrng(bias=0.0, debias=False).cost_per_bit(2e-9, 1e-13)
        deb = ReRamTrng(bias=0.0, debias=True).cost_per_bit(2e-9, 1e-13)
        assert raw.latency_s == pytest.approx(2e-9)
        assert deb.latency_s == pytest.approx(8e-9)   # 4 reads/bit at p=0.5
        assert raw.cell_writes == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ReRamTrng(rng=0).random_bits(-1)


class TestWriteTrng:
    def test_balance_at_v50(self):
        bits = WriteTrng(rng=0).random_bits(50_000)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_voltage_skews(self):
        p = DeviceParams()
        hi = WriteTrng(p, voltage=p.v_set50 + 0.1, rng=0).random_bits(20_000)
        assert hi.mean() > 0.7

    def test_write_cost_dominates(self):
        c = WriteTrng().cost_per_bit(50e-9, 1e-12, 2e-9, 1e-13)
        assert c.cell_writes == 2.0
        assert c.latency_s == pytest.approx(102e-9)


class TestDebiasAndStats:
    def test_von_neumann_on_biased_input(self):
        gen = np.random.default_rng(0)
        raw = (gen.random(200_000) < 0.7).astype(np.uint8)
        out = von_neumann_debias(raw)
        assert abs(out.mean() - 0.5) < 0.02
        # Keep rate ~ 2 p (1-p) = 0.42 of pairs.
        assert out.size == pytest.approx(0.21 * raw.size, rel=0.1)

    def test_statistics_fields(self):
        bits = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        s = bit_statistics(bits)
        assert s["ones_fraction"] == 0.5
        assert s["runs"] == 8
        assert s["lag1_autocorr"] < 0   # perfectly alternating

    def test_statistics_needs_bits(self):
        with pytest.raises(ValueError):
            bit_statistics(np.array([1]))


class TestAdc:
    def test_quantisation(self):
        adc = Adc(AdcParams(noise_sigma_lsb=0.0), full_scale=1.0, rng=0)
        assert int(adc.sample(0.5)) == 128
        assert int(adc.sample(1.0)) == 255
        assert int(adc.sample(0.0)) == 0

    def test_clipping(self):
        adc = Adc(AdcParams(noise_sigma_lsb=0.0), full_scale=1.0, rng=0)
        assert int(adc.sample(2.0)) == 255
        assert int(adc.sample(-0.5)) == 0

    def test_to_fraction(self):
        adc = Adc(AdcParams(noise_sigma_lsb=0.0), full_scale=2.0, rng=0)
        assert float(adc.to_fraction(1.0)) == pytest.approx(0.5, abs=1 / 255)

    def test_cost_accounting(self):
        adc = Adc(full_scale=1.0, rng=0)
        adc.sample(np.linspace(0, 1, 10))
        assert adc.conversions == 10
        assert adc.total_energy_j == pytest.approx(10 * adc.params.e_conversion_j)

    def test_bad_full_scale(self):
        with pytest.raises(ValueError):
            Adc(full_scale=0.0)


class TestFaultRates:
    def test_derivation_ordering(self):
        rates = derive_fault_rates(trials_per_case=2048, seed=0)
        # OR enjoys the widest margin; AND/XOR/MAJ share tight margins.
        assert rates.or2 <= rates.and2
        assert rates.and2 < 0.05

    def test_sigma_widening_increases_rates(self):
        lo = derive_fault_rates(DeviceParams(hrs_sigma=0.3),
                                trials_per_case=4096, seed=1)
        hi = derive_fault_rates(DeviceParams(hrs_sigma=0.8),
                                trials_per_case=4096, seed=1)
        assert hi.mean() > lo.mean()

    def test_for_gate_lookup(self):
        r = DEFAULT_FAULT_RATES
        assert r.for_gate("nand") == r.and2
        assert r.for_gate("xnor") == r.xor2
        with pytest.raises(ValueError):
            r.for_gate("mystery")

    def test_scaled_caps_at_one(self):
        r = GateFaultRates(0.5, 0.5, 0.5, 0.5).scaled(10)
        assert r.and2 == 1.0


class TestInjector:
    def test_zero_rate_identity(self):
        bits = np.random.default_rng(0).integers(0, 2, 1000).astype(np.uint8)
        out = BitFlipInjector(0.0, rng=1).inject(bits)
        assert np.array_equal(out, bits)

    def test_rate_respected(self):
        bits = np.zeros(200_000, dtype=np.uint8)
        out = BitFlipInjector(0.01, rng=2).inject(bits)
        assert out.mean() == pytest.approx(0.01, rel=0.2)

    def test_gate_rates_dispatch(self):
        inj = BitFlipInjector(GateFaultRates(1.0, 0.0, 0.0, 0.0), rng=3)
        ones = np.ones(100, dtype=np.uint8)
        assert BitFlipInjector(GateFaultRates(1.0, 0, 0, 0), rng=3).inject(
            ones, gate="and").sum() == 0
        assert inj.inject(ones, gate="or").sum() == 100

    def test_gate_required_with_rate_table(self):
        inj = BitFlipInjector(DEFAULT_FAULT_RATES, rng=0)
        with pytest.raises(ValueError):
            inj.inject(np.zeros(4, dtype=np.uint8))

    def test_word_injection_flips_significance(self):
        inj = BitFlipInjector(0.5, rng=4)
        words = np.zeros(10_000, dtype=np.int64)
        out = inj.inject_words(words, bits=8)
        assert out.max() > 128   # high-significance flips occur


class TestController:
    def test_region_allocation(self):
        arr = CrossbarArray(16, 32, rng=0)
        ctl = ArrayController(arr, {"a": 8, "rn": 4, "work": 2})
        assert ctl.row("rn", 0) == 8
        assert ctl.row("work", 1) == 13
        with pytest.raises(IndexError):
            ctl.row("work", 5)
        with pytest.raises(KeyError):
            ctl.region("nope")

    def test_region_overflow(self):
        arr = CrossbarArray(4, 8, rng=0)
        with pytest.raises(ValueError):
            ArrayController(arr, {"a": 3, "b": 3})

    def test_trace_and_counts(self):
        arr = CrossbarArray(4, 16, rng=0)
        ctl = ArrayController(arr, {"d": 4})
        ctl.write_row(0, np.ones(16, dtype=np.uint8))
        ctl.write_row(1, np.zeros(16, dtype=np.uint8))
        ctl.read_row(0)
        ctl.sl_op("and", [0, 1])
        ctl.latch_op()
        counts = ctl.counts()
        assert counts == {"write": 2, "read": 1, "sl": 1, "sl_and": 1,
                          "latch": 1}
        ctl.reset_trace()
        assert ctl.counts() == {}
