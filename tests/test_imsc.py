"""Unit tests for repro.imsc: GT network, IMSNG unit, engine, S-to-B, cost."""

import numpy as np
import pytest

from repro.core.bitstream import Bitstream
from repro.core.correlation import scc
from repro.imsc.cost import (
    ReRamScDesign,
    imsng_conversion_cost,
    sc_op_cost,
    stob_cost,
)
from repro.imsc.engine import InMemorySCEngine
from repro.imsc.gtnetwork import build_gt_xag, gt_reference
from repro.imsc.imsng import ImsngUnit
from repro.imsc.stob import InMemoryStoB
from repro.reram.faults import DEFAULT_FAULT_RATES


class TestGtNetwork:
    def test_xag_matches_reference_exhaustive_4bit(self):
        xag = build_gt_xag(4)
        a_vals = np.arange(16)
        for b in range(16):
            ins = {}
            for i in range(4):
                ins[f"a{i}"] = ((a_vals >> i) & 1).astype(np.uint8)
                ins[f"b{i}"] = np.full(16, (b >> i) & 1, dtype=np.uint8)
            out = xag.evaluate(ins)["gt"]
            assert np.array_equal(out, (a_vals > b).astype(np.uint8))

    def test_reference_bitplanes(self):
        gen = np.random.default_rng(0)
        a = gen.integers(0, 256, 500)
        b = gen.integers(0, 256, 500)
        ap = np.stack([((a >> (7 - i)) & 1).astype(np.uint8) for i in range(8)])
        bp = np.stack([((b >> (7 - i)) & 1).astype(np.uint8) for i in range(8)])
        assert np.array_equal(gt_reference(ap, bp), (a > b).astype(np.uint8))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gt_reference(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            build_gt_xag(0)


class TestImsngUnit:
    @pytest.mark.parametrize("mode", ["naive", "opt"])
    def test_conversion_value(self, mode):
        u = ImsngUnit(width=2048, mode=mode, rng=0)
        res = u.convert(0.62)
        assert abs(res.bits.mean() - 0.62) < 0.05

    def test_opt_command_counts(self):
        u = ImsngUnit(width=64, mode="opt", rng=1)
        res = u.convert(0.5)
        kinds = [c.kind for c in res.commands]
        assert kinds.count("sl") == 3 * u.segment_bits
        assert kinds.count("write") == 1
        assert kinds.count("latch") == u.segment_bits

    def test_naive_command_counts(self):
        u = ImsngUnit(width=64, mode="naive", rng=1)
        res = u.convert(0.5)
        kinds = [c.kind for c in res.commands]
        assert kinds.count("sl") == 5 * u.segment_bits
        # 2 writes per bit + 2 state-row initialisations.
        assert kinds.count("write") == 2 * u.segment_bits + 2

    def test_modes_agree_fault_free(self):
        a = ImsngUnit(width=4096, mode="naive", rng=7).convert(0.31)
        b = ImsngUnit(width=4096, mode="opt", rng=7).convert(0.31)
        assert abs(a.bits.mean() - b.bits.mean()) < 0.04

    def test_faulty_conversion_degrades(self):
        clean = ImsngUnit(width=8192, rng=3).convert(0.5).bits.mean()
        noisy = ImsngUnit(width=8192, rng=3,
                          fault_rates=DEFAULT_FAULT_RATES.scaled(10))
        val = noisy.convert(0.5).bits.mean()
        assert abs(val - 0.5) < 0.2   # degraded but not destroyed

    def test_expected_counts(self):
        assert ImsngUnit(mode="opt").expected_counts()["sense"] == 24
        assert ImsngUnit(mode="naive").expected_counts()["sense"] == 40

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ImsngUnit(mode="fast")


class TestEngineGeneration:
    def test_values(self):
        e = InMemorySCEngine(rng=0)
        s = e.generate(np.array([0.2, 0.5, 0.9]), 2048)
        assert np.allclose(s.value(), [0.2, 0.5, 0.9], atol=0.05)

    def test_pair_correlation_control(self):
        e = InMemorySCEngine(rng=1)
        a, b = e.generate_pair(0.4, 0.7, 4096, correlated=True)
        assert float(scc(a, b)) > 0.9
        a2, b2 = e.generate_pair(0.4, 0.7, 4096, correlated=False)
        assert abs(float(scc(a2, b2))) < 0.15

    def test_correlated_batch_identical_for_equal_values(self):
        e = InMemorySCEngine(rng=2)
        s = e.generate_correlated(np.array([0.5, 0.5]), 512)
        assert np.array_equal(s.bits[0], s.bits[1])

    def test_naive_mode_has_more_fault_sites(self):
        # With exaggerated AND-gate faults, the naive design (whose flag
        # ANDs are sensed) degrades more than opt (latch-predicated).
        rates = DEFAULT_FAULT_RATES.scaled(20)
        errs = {}
        for mode in ("naive", "opt"):
            e = InMemorySCEngine(mode=mode, fault_rates=rates, rng=3)
            s = e.generate(np.full(400, 0.5), 256)
            errs[mode] = float(np.mean(np.abs(s.value() - 0.5)))
        assert errs["naive"] > errs["opt"]

    def test_trng_bias_shifts_values(self):
        clean = InMemorySCEngine(trng_bias=0.0, rng=4)
        skew = InMemorySCEngine(trng_bias=0.15, rng=4)
        v0 = float(np.mean(clean.generate(np.full(200, 0.5), 512).value()))
        v1 = float(np.mean(skew.generate(np.full(200, 0.5), 512).value()))
        assert v1 < v0


class TestEngineOps:
    def test_op_dispatch_and_semantics(self):
        e = InMemorySCEngine(rng=5)
        x, y = e.generate_pair(0.6, 0.3, 8192, correlated=True)
        assert float(e.op("abs_subtraction", x, y).value()) == pytest.approx(
            0.3, abs=0.04)
        assert float(e.op("minimum", x, y).value()) == pytest.approx(
            0.3, abs=0.04)
        assert float(e.op("maximum", x, y).value()) == pytest.approx(
            0.6, abs=0.04)

    def test_divide(self):
        e = InMemorySCEngine(rng=6)
        x, y = e.generate_pair(0.2, 0.8, 8192, correlated=True)
        assert float(e.divide(x, y).value()) == pytest.approx(0.25, abs=0.05)

    def test_mux_blend(self):
        e = InMemorySCEngine(rng=7)
        a = e.generate(0.9, 8192)
        b = e.generate(0.1, 8192)
        sel = e.generate(0.25, 8192)
        out = e.mux(sel, a, b)
        assert float(out.value()) == pytest.approx(
            0.75 * 0.9 + 0.25 * 0.1, abs=0.04)

    def test_unknown_op(self):
        e = InMemorySCEngine(rng=0)
        s = e.generate(0.5, 64)
        with pytest.raises(ValueError):
            e.op("modulo", s, s)

    def test_scaled_add_default_half_stream(self):
        e = InMemorySCEngine(rng=8)
        x, y = e.generate_pair(0.9, 0.1, 8192, correlated=False)
        out = e.scaled_add(x, y)
        assert float(out.value()) == pytest.approx(0.5, abs=0.04)

    def test_ledger_accumulates(self):
        e = InMemorySCEngine(rng=9)
        x, y = e.generate_pair(0.5, 0.5, 256, correlated=False)
        e.multiply(x, y)
        assert e.ledger.energy_j > 0
        assert e.ledger.latency_s > 0
        e.reset_ledger()
        assert e.ledger.energy_j == 0


class TestStoB:
    def test_recovery_accuracy(self):
        stob = InMemoryStoB(rng=0)
        s = Bitstream.bernoulli(np.full(50, 0.6), 256, rng=1)
        out = stob.convert(s)
        assert np.allclose(out, s.value(), atol=0.08)

    def test_ideal_cells_tighter(self):
        s = Bitstream.bernoulli(np.full(200, 0.5), 256, rng=2)
        noisy = InMemoryStoB(rng=3).convert(s)
        ideal = InMemoryStoB(ideal_cells=True, rng=3).convert(s)
        err_noisy = np.abs(noisy - s.value()).mean()
        err_ideal = np.abs(ideal - s.value()).mean()
        assert err_ideal <= err_noisy + 1e-6

    def test_current_monotone_in_popcount(self):
        stob = InMemoryStoB(ideal_cells=True, rng=4)
        lo = Bitstream(np.r_[np.ones(10), np.zeros(54)].astype(np.uint8))
        hi = Bitstream(np.r_[np.ones(40), np.zeros(24)].astype(np.uint8))
        assert stob.column_current(hi) > stob.column_current(lo)

    def test_engine_to_binary(self):
        e = InMemorySCEngine(rng=10)
        s = e.generate(np.full(20, 0.3), 256)
        out = e.to_binary(s)
        assert np.allclose(out, 0.3, atol=0.1)

    def test_adc_map_survives_length_changes(self):
        # Regression: changing the stream length used to discard the cached
        # ADC, silently zeroing the conversions counter — mixed-length
        # workloads under-reported ADC cost.
        stob = InMemoryStoB(rng=6)
        s64 = Bitstream.bernoulli(np.full(10, 0.5), 64, rng=1)
        s128 = Bitstream.bernoulli(np.full(5, 0.5), 128, rng=2)
        stob.convert(s64)
        assert stob.conversions == 10
        stob.convert(s128)
        assert stob.conversions == 15
        stob.convert(s64)
        assert stob.conversions == 25

    def test_invalid_cell_model_rejected(self):
        with pytest.raises(ValueError, match="cell_model"):
            InMemoryStoB(cell_model="per-word")
        with pytest.raises(ValueError, match="cell_model"):
            InMemorySCEngine(cell_model="per-word")

    def test_column_model_recovery_accuracy(self):
        stob = InMemoryStoB(rng=0, cell_model="column")
        s = Bitstream.bernoulli(np.full(50, 0.6), 256, rng=1)
        out = stob.convert(s)
        assert np.allclose(out, s.value(), atol=0.08)

    def test_column_model_accepts_streambatch(self):
        from repro.core.streambatch import StreamBatch

        bits = np.random.default_rng(2).integers(0, 2, (6, 128), np.uint8)
        sb = StreamBatch.from_bits(bits, "packed")
        vals = InMemoryStoB(rng=3, cell_model="column").convert(sb)
        assert vals.shape == (6,)
        assert np.all((vals >= 0.0) & (vals <= 1.0))

    def test_column_matches_per_bit_statistics(self):
        # The column model is variance-matched: the recovered values must
        # agree with the per-bit oracle in mean and spread (not bit-wise).
        s = Bitstream.bernoulli(np.full(8000, 0.37), 256, rng=4)
        per_bit = InMemoryStoB(rng=5, cell_model="per-bit").convert(s)
        column = InMemoryStoB(rng=6, cell_model="column").convert(s)
        assert column.mean() == pytest.approx(per_bit.mean(), abs=0.003)
        assert column.std() == pytest.approx(per_bit.std(), rel=0.08)

    def test_column_caches_reused_across_conversions(self):
        stob = InMemoryStoB(rng=7, cell_model="column")
        s = Bitstream.bernoulli(np.full(20, 0.5), 128, rng=8)
        stob.convert(s)
        cols = dict(stob._columns)
        stob.convert(s)
        assert list(stob._columns) == list(cols)
        for key, arr in cols.items():
            assert stob._columns[key] is arr
        assert stob.conversions == 40

    def test_engine_column_cell_model(self):
        e = InMemorySCEngine(rng=11, cell_model="column")
        s = e.generate(np.full(30, 0.3), 256)
        out = e.to_binary(s)
        assert np.allclose(out, 0.3, atol=0.1)

    def test_engine_to_binary_accepts_streambatch(self):
        from repro.core.streambatch import StreamBatch

        e = InMemorySCEngine(rng=12, cell_model="column")
        sb = StreamBatch.from_bitstream(
            e.generate_correlated(np.full((2, 15), 0.4), 256))
        out = e.to_binary(sb)
        assert out.shape == (2, 15)
        assert np.allclose(out, 0.4, atol=0.1)
        assert e.ledger.energy_j > 0


class TestCostModel:
    def test_paper_anchor_naive(self):
        led = imsng_conversion_cost(8, "naive")
        assert led.latency_ns == pytest.approx(395.4, rel=0.01)
        assert led.energy_nj == pytest.approx(10.23, rel=0.01)

    def test_paper_anchor_opt(self):
        led = imsng_conversion_cost(8, "opt")
        assert led.latency_ns == pytest.approx(78.2, rel=0.01)
        assert led.energy_nj == pytest.approx(3.42, rel=0.02)

    def test_width_scales_energy_not_latency(self):
        full = imsng_conversion_cost(8, "opt")
        half = imsng_conversion_cost(8, "opt", width=128)
        assert half.latency_ns == pytest.approx(full.latency_ns)
        assert half.energy_nj == pytest.approx(full.energy_nj / 2, rel=0.01)

    def test_single_cycle_ops(self):
        for op in ("multiplication", "scaled_addition", "abs_subtraction",
                   "minimum", "maximum"):
            led = sc_op_cost(op)
            assert led.latency_ns == pytest.approx(2.488, rel=0.01)

    def test_division_scales_with_length(self):
        l128 = sc_op_cost("division", length=128).latency_ns
        l256 = sc_op_cost("division", length=256).latency_ns
        assert l256 == pytest.approx(2 * l128, rel=0.01)

    def test_mux_three_cycles(self):
        assert sc_op_cost("mux2").latency_ns == pytest.approx(
            3 * 2.488, rel=0.01)

    def test_table3_reram_rows(self):
        rows = ReRamScDesign().table_rows()
        assert rows["Multiplication"]["latency_ns"] == pytest.approx(80.8, rel=0.01)
        assert rows["Multiplication"]["energy_nj"] == pytest.approx(3.50, rel=0.03)
        assert rows["Division"]["latency_ns"] == pytest.approx(12544.0, rel=0.01)
        assert rows["Division"]["energy_nj"] == pytest.approx(4.48, rel=0.03)

    def test_stob_cost_counts_values(self):
        one = stob_cost(1)
        many = stob_cost(10)
        assert many.energy_j > one.energy_j
        assert many.latency_s > one.latency_s

    def test_throughput_positive(self):
        d = ReRamScDesign()
        assert d.throughput_ops_per_s("multiplication") > 0
        assert d.throughput_ops_per_s("multiplication", parallel_flows=4) == \
            pytest.approx(4 * d.throughput_ops_per_s("multiplication"))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            sc_op_cost("transmogrify")
