"""Unit tests for repro.energy (ledger, params, NVMain-style simulator)."""

import pytest

from repro.energy.model import EnergyLedger, replay_trace
from repro.energy.nvmain import MemorySystem, TraceRequest
from repro.energy.params import DEFAULT_RERAM_COSTS
from repro.energy.traces import (
    imsng_trace,
    pipelined_flow_trace,
    sc_op_trace,
    stob_trace,
)
from repro.reram.controller import Command


class TestLedger:
    def test_record_and_totals(self):
        led = EnergyLedger()
        led.record("a", 1e-9, 2e-9, count=3)
        assert led.latency_ns == pytest.approx(3.0)
        assert led.energy_nj == pytest.approx(6.0)

    def test_overlapped_hides_latency(self):
        led = EnergyLedger()
        led.record("a", 1e-9, 1e-9, overlapped=True)
        assert led.latency_s == 0.0
        assert led.energy_j == 1e-9

    def test_merge(self):
        a = EnergyLedger()
        a.record("x", 1e-9, 1e-9)
        b = EnergyLedger()
        b.record("y", 2e-9, 2e-9)
        a.merge(b)
        assert a.latency_ns == pytest.approx(3.0)
        a.merge(b, overlapped=True)
        assert a.latency_ns == pytest.approx(3.0)
        assert a.energy_nj == pytest.approx(5.0)

    def test_scaled(self):
        led = EnergyLedger()
        led.record("x", 1e-9, 1e-9)
        s = led.scaled(10)
        assert s.latency_ns == pytest.approx(10.0)
        assert led.latency_ns == pytest.approx(1.0)   # original untouched

    def test_breakdown(self):
        led = EnergyLedger()
        led.record("x", 1e-9, 2e-9)
        bd = led.breakdown()
        assert bd["x"]["latency_ns"] == pytest.approx(1.0)
        assert bd["x"]["energy_nj"] == pytest.approx(2.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().record("x", 1, 1, count=-1)


class TestReplayTrace:
    def test_prices_commands(self):
        trace = [Command("sl", gate="and", cells=256),
                 Command("write", cells=256),
                 Command("latch", cells=256),
                 Command("read", cells=256)]
        led = replay_trace(trace)
        c = DEFAULT_RERAM_COSTS
        expected = 2 * c.t_sense + c.t_write + c.t_latch
        assert led.latency_s == pytest.approx(expected)

    def test_write_energy_scales_with_cells(self):
        lo = replay_trace([Command("write", cells=16)])
        hi = replay_trace([Command("write", cells=256)])
        assert hi.energy_j == pytest.approx(16 * lo.energy_j)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            replay_trace([Command("teleport")])


class TestParams:
    def test_per_cell_scaling(self):
        c = DEFAULT_RERAM_COSTS
        assert c.sense_energy(c.row_width) == pytest.approx(c.e_sense_row)
        assert c.write_energy(1) == pytest.approx(c.e_write_cell)

    def test_scaled_override(self):
        c2 = DEFAULT_RERAM_COSTS.scaled(t_sense=1e-9)
        assert c2.t_sense == 1e-9
        assert c2.t_write == DEFAULT_RERAM_COSTS.t_write


class TestMemorySystem:
    def test_serial_in_bank(self):
        sys = MemorySystem(n_banks=1)
        trace = [TraceRequest(0, "sense"), TraceRequest(0, "sense")]
        res = sys.simulate(trace)
        assert res.makespan_s == pytest.approx(2 * DEFAULT_RERAM_COSTS.t_sense)

    def test_banks_overlap(self):
        sys = MemorySystem(n_banks=2)
        trace = [TraceRequest(0, "sense"), TraceRequest(1, "sense")]
        res = sys.simulate(trace)
        assert res.makespan_s == pytest.approx(DEFAULT_RERAM_COSTS.t_sense)

    def test_dependency_serialises(self):
        sys = MemorySystem(n_banks=2)
        trace = [TraceRequest(0, "sense"),
                 TraceRequest(1, "sense", depends_on=0)]
        res = sys.simulate(trace)
        assert res.makespan_s == pytest.approx(2 * DEFAULT_RERAM_COSTS.t_sense)

    def test_bad_dependency(self):
        sys = MemorySystem(n_banks=1)
        with pytest.raises(ValueError):
            sys.simulate([TraceRequest(0, "sense", depends_on=5)])

    def test_bad_bank(self):
        sys = MemorySystem(n_banks=1)
        with pytest.raises(ValueError):
            sys.simulate([TraceRequest(3, "sense")])

    def test_utilisation(self):
        sys = MemorySystem(n_banks=2)
        res = sys.simulate([TraceRequest(0, "sense")])
        u = res.utilisation()
        assert u[0] == pytest.approx(1.0)
        assert u[1] == 0.0

    def test_empty_trace(self):
        res = MemorySystem().simulate([])
        assert res.makespan_s == 0.0


class TestTraceGenerators:
    def test_imsng_opt_matches_closed_form(self):
        trace = imsng_trace(8, "opt")
        res = MemorySystem(n_banks=1).simulate(trace)
        from repro.imsc.cost import imsng_conversion_cost
        closed = imsng_conversion_cost(8, "opt")
        assert res.makespan_ns == pytest.approx(closed.latency_ns, rel=0.02)
        assert res.energy_nj == pytest.approx(closed.energy_nj, rel=0.02)

    def test_imsng_naive_matches_closed_form(self):
        trace = imsng_trace(8, "naive")
        res = MemorySystem(n_banks=1).simulate(trace)
        from repro.imsc.cost import imsng_conversion_cost
        closed = imsng_conversion_cost(8, "naive")
        assert res.makespan_ns == pytest.approx(closed.latency_ns, rel=0.02)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            imsng_trace(8, "other")

    def test_sc_op_traces(self):
        assert len(sc_op_trace("mul")) == 1
        div = sc_op_trace("div", length=64)
        assert len(div) == 128   # sense+latch per bit
        with pytest.raises(ValueError):
            sc_op_trace("frob")

    def test_stob_trace(self):
        t = stob_trace(conversions=8)
        assert t[-1].kind == "adc"
        assert t[-1].cells == 8

    def test_pipelined_flow_overlaps_conversions(self):
        serial = pipelined_flow_trace(4, n_banks=2)
        parallel = pipelined_flow_trace(4, n_banks=5)
        t_serial = MemorySystem(2).simulate(serial).makespan_s
        t_parallel = MemorySystem(5).simulate(parallel).makespan_s
        assert t_parallel < t_serial
