"""Unit tests for repro.reram.scouting and periphery."""

import numpy as np
import pytest

from repro.reram.array import CrossbarArray
from repro.reram.device import DeviceParams
from repro.reram.periphery import LatchPair, SenseAmp, WriteDriver
from repro.reram.scouting import ScoutingLogic


IDEAL = DeviceParams(lrs_sigma=0.01, hrs_sigma=0.01, read_noise_sigma=0.001)


def _arr_with(rows, cols=64, params=IDEAL, seed=0):
    arr = CrossbarArray(len(rows), cols, params=params, rng=seed)
    for i, fill in enumerate(rows):
        arr.write_row(i, np.asarray(fill, dtype=np.uint8))
    return arr


def _patterns(cols, seed):
    gen = np.random.default_rng(seed)
    return gen.integers(0, 2, cols).astype(np.uint8)


class TestGatesIdealDevice:
    @pytest.mark.parametrize("gate,fn", [
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
        ("nand", lambda a, b: 1 - (a & b)),
        ("nor", lambda a, b: 1 - (a | b)),
        ("xnor", lambda a, b: 1 - (a ^ b)),
    ])
    def test_two_input_gates(self, gate, fn):
        a = _patterns(64, 1)
        b = _patterns(64, 2)
        arr = _arr_with([a, b])
        sl = ScoutingLogic(arr)
        assert np.array_equal(sl.gate(gate, [0, 1]), fn(a, b))

    def test_maj3(self):
        a, b, c = _patterns(64, 3), _patterns(64, 4), _patterns(64, 5)
        arr = _arr_with([a, b, c])
        sl = ScoutingLogic(arr)
        expected = ((a & b) | (a & c) | (b & c)).astype(np.uint8)
        assert np.array_equal(sl.maj3([0, 1, 2]), expected)

    def test_wide_and_or(self):
        rows = [_patterns(64, s) for s in (6, 7, 8, 9)]
        arr = _arr_with(rows)
        sl = ScoutingLogic(arr)
        expected_and = rows[0] & rows[1] & rows[2] & rows[3]
        expected_or = rows[0] | rows[1] | rows[2] | rows[3]
        assert np.array_equal(sl.and_(list(range(4))), expected_and)
        assert np.array_equal(sl.or_(list(range(4))), expected_or)

    def test_not(self):
        a = _patterns(64, 10)
        arr = _arr_with([a])
        sl = ScoutingLogic(arr)
        assert np.array_equal(sl.not_(0), 1 - a)

    def test_arity_checks(self):
        arr = _arr_with([_patterns(64, 0), _patterns(64, 1)])
        sl = ScoutingLogic(arr)
        with pytest.raises(ValueError):
            sl.xor([0])
        with pytest.raises(ValueError):
            sl.maj3([0, 1])
        with pytest.raises(ValueError):
            sl.gate("frob", [0, 1])

    def test_reference_ordering(self):
        arr = _arr_with([_patterns(8, 0), _patterns(8, 1)], cols=8)
        sl = ScoutingLogic(arr)
        assert sl.reference(2, 1) < sl.reference(2, 2)
        with pytest.raises(ValueError):
            sl.reference(2, 3)


class TestVariabilityInducedErrors:
    def test_realistic_device_has_nonzero_error(self):
        # With default VCM spreads, repeated AND ops across fresh cells
        # should show a small but positive error rate.
        errors = 0
        total = 0
        arr = CrossbarArray(2, 4096, rng=3)
        sl = ScoutingLogic(arr)
        for fill in ((1, 1), (1, 0)):
            arr.write_row(0, np.full(4096, fill[0], dtype=np.uint8),
                          differential=False)
            arr.write_row(1, np.full(4096, fill[1], dtype=np.uint8),
                          differential=False)
            out = sl.and_([0, 1])
            errors += int(np.count_nonzero(out != (fill[0] & fill[1])))
            total += 4096
        assert 0 < errors < 0.05 * total


class TestSenseAmp:
    def test_ideal_compare(self):
        sa = SenseAmp()
        out = sa.compare(np.array([1.0, 3.0]), 2.0)
        assert list(out) == [0, 1]

    def test_window(self):
        sa = SenseAmp()
        out = sa.window(np.array([0.5, 1.5, 2.5]), 1.0, 2.0)
        assert list(out) == [0, 1, 0]

    def test_offset_noise_causes_flips(self):
        sa = SenseAmp(offset_sigma=1.0, rng=0)
        outs = sa.compare(np.full(10_000, 2.0), 2.0)
        assert 0.3 < outs.mean() < 0.7

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SenseAmp(offset_sigma=-1)


class TestLatchPair:
    def test_predicated_store(self):
        lp = LatchPair(4)
        lp.load_flag(np.array([1, 1, 0, 0], dtype=np.uint8))
        out = lp.predicated_store(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert list(out) == [1, 0, 0, 0]

    def test_flag_and_not(self):
        lp = LatchPair(3)
        lp.update_flag_and_not(np.array([0, 1, 0], dtype=np.uint8))
        assert list(lp.flag) == [1, 0, 1]

    def test_width_check(self):
        lp = LatchPair(2)
        with pytest.raises(ValueError):
            lp.load_data(np.zeros(3, dtype=np.uint8))


class TestWriteDriver:
    def test_differential_mask(self):
        lp = LatchPair(4)
        lp.load_data(np.array([1, 0, 1, 0], dtype=np.uint8))
        wd = WriteDriver(lp)
        mask = wd.differential_mask(np.array([1, 1, 0, 0], dtype=np.uint8))
        assert list(mask) == [0, 1, 1, 0]

    def test_feedback_voltage(self):
        lp = LatchPair(2)
        lp.load_data(np.array([1, 0], dtype=np.uint8))
        wd = WriteDriver(lp, v_high=0.2)
        assert list(wd.feedback_voltage()) == [0.2, 0.0]
