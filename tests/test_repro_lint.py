"""Tests for the repro-lint static-analysis framework (tools/repro_lint).

Every project rule (RL001-RL008) gets fixture tests proving a true
positive and a silenced case (inline suppression or baseline entry).
The framework tests cover the suppression grammar, the baseline
lifecycle, path handling (a typo'd path or an empty directory must fail
the gate, not lint nothing), the CLI exit codes, the pyproject
ruff-selection mirror, the call-graph resolver's edge cases, the
content-hash result cache, the SARIF serialisation, and the ``--fix``
autofixes.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap
import tomllib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from repro_lint import engine
from repro_lint.cache import LintCache
from repro_lint.cli import main
from repro_lint.engine import (
    BaselineEntry,
    FileContext,
    Finding,
    PathError,
    iter_py_files,
    load_baseline,
    run_sources,
)
from repro_lint.fixes import fix_source
from repro_lint.sarif import to_sarif

EXECUTOR = "src/repro/apps/executor.py"


def _run(files, **kwargs):
    """run_sources over (relpath, fixture source) pairs, dedented."""
    return run_sources([(path, textwrap.dedent(source))
                        for path, source in files], **kwargs)


def _codes(result):
    return [finding.code for finding in result.findings]


# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------
class TestRL001Determinism:
    def test_flags_every_nondeterministic_source(self):
        res = _run([("src/repro/fake.py", """\
            import random
            import time

            import numpy as np


            def sample():
                rng = np.random.default_rng()
                legacy = np.random.rand(4)
                seedless = random.random()
                wall = time.time()
                return rng, legacy, seedless, wall
            """)])
        rl001 = [f for f in res.findings if f.code == "RL001"]
        assert [f.line for f in rl001] == [8, 9, 10, 11]

    def test_allows_seeded_rng_and_monotonic_timers(self):
        res = _run([("src/repro/fake.py", """\
            import time

            import numpy as np


            def sample(seed):
                rng = np.random.default_rng(seed)
                t0 = time.perf_counter()
                return rng, t0
            """)])
        assert res.clean

    def test_scope_excludes_benchmark_code(self):
        res = _run([("benchmarks/fake.py", """\
            import time


            def stamp():
                return time.time()
            """)])
        assert "RL001" not in _codes(res)

    def test_suppression_with_justification_silences(self):
        res = _run([("src/repro/fake.py", """\
            import time


            def stamp():
                return time.time()  # repro-lint: disable=RL001 -- provenance only
            """)])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# RL002 — pool-boundary pickle safety
# ---------------------------------------------------------------------------
class TestRL002PickleSafety:
    def test_flags_lambda_and_nested_function(self):
        res = _run([("src/repro/fake.py", """\
            def fan_out(pool_map, items):
                def helper(x):
                    return x + 1

                first = pool_map(lambda x: x * 2, items)
                second = pool_map(helper, items)
                return first, second
            """)])
        rl002 = [f for f in res.findings if f.code == "RL002"]
        assert [f.line for f in rl002] == [5, 6]

    def test_flags_bound_method_of_local_object(self):
        res = _run([("src/repro/fake.py", """\
            def drive(executor, make_worker, task):
                worker = make_worker()
                return executor.submit(worker.run, task)
            """)])
        assert _codes(res) == ["RL002"]

    def test_allows_module_level_function(self):
        res = _run([("src/repro/fake.py", """\
            def kernel(x):
                return x


            def fan_out(pool_map, items):
                return pool_map(kernel, items)
            """)])
        assert res.clean

    def test_module_scope_calls_exempt(self):
        res = _run([("src/repro/fake.py", """\
            RESULT = map(lambda x: x, [1, 2])
            """)])
        assert res.clean

    def test_suppression_silences(self):
        res = _run([("src/repro/fake.py", """\
            def fan_out(pool_map, items):
                return pool_map(lambda x: x, items)  # repro-lint: disable=RL002 -- jobs=1 inline path only
            """)])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# RL003 — no-unpack hot path (project rule)
# ---------------------------------------------------------------------------
class TestRL003NoUnpack:
    def test_flags_markers_reachable_from_kernels(self):
        res = _run([
            (EXECUTOR, """\
                from .kernels import demo_kernel

                KERNELS = {"demo": demo_kernel}
                """),
            ("src/repro/apps/kernels.py", """\
                def helper(stream):
                    return stream.to_bits()


                def demo_kernel(stream):
                    return helper(stream)


                def unreachable(stream):
                    return stream.to_bits()
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert len(rl003) == 1
        assert rl003[0].relpath == "src/repro/apps/kernels.py"
        assert rl003[0].line == 2
        assert "'demo'" in rl003[0].message

    def test_flags_unpackbits_and_per_bit_loop(self):
        res = _run([
            (EXECUTOR, """\
                from .kernels import demo_kernel

                KERNELS = {"demo": demo_kernel}
                """),
            ("src/repro/apps/kernels.py", """\
                import numpy as np


                def demo_kernel(stream, length):
                    bits = np.unpackbits(stream.payload)
                    acc = 0
                    for i in range(length):
                        acc += bits[i]
                    return acc
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [f.line for f in rl003] == [5, 7]

    def test_unreachable_markers_not_flagged(self):
        res = _run([("src/repro/apps/orphan.py", """\
            def never_registered(stream):
                return stream.to_bits()
            """)])
        assert "RL003" not in _codes(res)

    def test_suppression_documents_zero_copy_interop(self):
        res = _run([
            (EXECUTOR, """\
                from .kernels import demo_kernel

                KERNELS = {"demo": demo_kernel}
                """),
            ("src/repro/apps/kernels.py", """\
                def demo_kernel(batch):
                    return batch.select(0).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
                """),
        ])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# RL004 — blocking in the asyncio serving layer
# ---------------------------------------------------------------------------
class TestRL004BlockingInAsync:
    def test_flags_time_sleep_anywhere_in_serve_layer(self):
        res = _run([("src/repro/serve/fake.py", """\
            import time


            def dwell(delay):
                time.sleep(delay)
            """)])
        assert _codes(res) == ["RL004"]

    def test_flags_blocking_calls_inside_async_def(self):
        res = _run([("src/repro/serve/fake.py", """\
            async def fetch(future, path):
                data = open(path).read()
                return data, future.result()
            """)])
        rl004 = [f for f in res.findings if f.code == "RL004"]
        assert len(rl004) == 2

    def test_sync_nested_def_is_exempt(self):
        res = _run([("src/repro/serve/fake.py", """\
            async def handle(loop, path):
                def write_out():
                    with open(path, "w") as fh:
                        fh.write("done")

                await loop.run_in_executor(None, write_out)
            """)])
        assert res.clean

    def test_scope_limited_to_serve_layer(self):
        res = _run([("src/repro/core/fake.py", """\
            import time


            def dwell(delay):
                time.sleep(delay)
            """)])
        assert "RL004" not in _codes(res)

    def test_suppression_for_worker_side_sleep(self):
        res = _run([("src/repro/serve/fake.py", """\
            import time


            def warmup(delay):
                # repro-lint: disable=RL004 -- runs in a pool worker, never on the loop
                time.sleep(delay)
            """)])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# RL005 — resource pairing
# ---------------------------------------------------------------------------
class TestRL005ResourcePairing:
    def test_flags_unprotected_shm_create(self):
        res = _run([("src/repro/fake.py", """\
            from multiprocessing import shared_memory


            def make_segment(nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                return seg
            """)])
        assert _codes(res) == ["RL005"]

    def test_flags_unpaired_checkout(self):
        res = _run([("src/repro/fake.py", """\
            def grab(store, digest):
                fields, shape = store.checkout(digest)
                return fields, shape
            """)])
        assert _codes(res) == ["RL005"]

    def test_try_finally_protects_the_acquire(self):
        res = _run([("src/repro/fake.py", """\
            from multiprocessing import shared_memory


            def make_segment(nbytes, fill):
                seg = None
                try:
                    seg = shared_memory.SharedMemory(create=True, size=nbytes)
                    fill(seg)
                finally:
                    if seg is not None:
                        seg.close()
            """)])
        assert res.clean

    def test_releasing_handler_protects_the_acquire(self):
        res = _run([("src/repro/fake.py", """\
            def pin_scene(store, inputs):
                try:
                    digest = store.publish(inputs)
                except BaseException:
                    store.shutdown()
                    raise
                return digest
            """)])
        assert res.clean

    def test_flags_bare_except_pass(self):
        res = _run([("src/repro/fake.py", """\
            def quiet(risky):
                try:
                    risky()
                except:
                    pass
            """)])
        assert _codes(res) == ["RL005"]

    def test_baseline_entry_silences(self):
        entry = BaselineEntry("src/repro/fake.py", "RL005",
                              "store.checkout(digest)",
                              "ownership transfers to the store tables")
        res = _run([("src/repro/fake.py", """\
            def grab(store, digest):
                return store.checkout(digest)
            """)], baseline=[entry])
        assert res.clean
        assert len(res.baselined) == 1


# ---------------------------------------------------------------------------
# RL006 — seed flow (data-flow pass)
# ---------------------------------------------------------------------------
class TestRL006SeedFlow:
    def test_flags_literal_seed(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np


            def sample():
                return np.random.default_rng(1234)
            """)])
        assert _codes(res) == ["RL006"]
        assert res.findings[0].line == 5
        assert "literal integer seed 1234" in res.findings[0].message

    def test_flags_seed_laundered_through_a_local(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np


            def sample():
                s = 42
                return np.random.default_rng(s)
            """)])
        assert _codes(res) == ["RL006"]
        assert res.findings[0].line == 6

    def test_flags_module_level_literal_seed(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np

            RNG = np.random.default_rng(7)
            """)])
        assert _codes(res) == ["RL006"]
        assert res.findings[0].line == 3

    def test_flags_discarded_spawn_children(self):
        res = _run([("src/repro/fake.py", """\
            def shift(seed_seq):
                seed_seq.spawn(3)
                return seed_seq
            """)])
        assert _codes(res) == ["RL006"]
        assert "discarded" in res.findings[0].message

    def test_flags_seedsequence_consumed_twice(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np


            def pair(seed):
                ss = np.random.SeedSequence(seed)
                a = np.random.default_rng(ss)
                b = np.random.default_rng(ss)
                return a, b
            """)])
        assert _codes(res) == ["RL006"]
        assert res.findings[0].line == 7
        assert "bit-identical" in res.findings[0].message

    def test_derived_seed_idioms_are_clean(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np


            class Engine:
                def __init__(self, seed):
                    self._seed = seed

                def make_rng(self):
                    return np.random.default_rng(self._seed)


            def coerce(rng_or_seed):
                if isinstance(rng_or_seed, np.random.Generator):
                    return rng_or_seed
                return np.random.default_rng(rng_or_seed)


            def split(seed_seq, n):
                children = seed_seq.spawn(n)
                return [np.random.default_rng(c) for c in children]
            """)])
        assert res.clean

    def test_scope_excludes_tests_and_benchmarks(self):
        res = _run([("tests/fake_seed.py", """\
            import numpy as np

            RNG = np.random.default_rng(1234)
            """)])
        assert "RL006" not in _codes(res)

    def test_suppression_for_golden_fixture_stream(self):
        res = _run([("src/repro/fake.py", """\
            import numpy as np


            def golden():
                return np.random.default_rng(1234)  # repro-lint: disable=RL006 -- pinned golden-file stream
            """)])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# RL007 — RunConfig coherence (project rule)
# ---------------------------------------------------------------------------
class TestRL007ConfigCoherence:
    FIXTURE = ("src/fixture/config.py", """\
        from dataclasses import asdict, dataclass, fields
        from typing import Any, ClassVar, Dict


        @dataclass(frozen=True)
        class RunConfig:
            \"\"\"Fixture config.

            alpha:
                the fully covered field.
            \"\"\"

            alpha: int = 0
            beta: int = 0

            PRESET_FIELDS: ClassVar[Dict[str, Dict[str, Any]]] = {
                "fast": {"alpha": 0},
            }

            def __post_init__(self):
                if self.alpha < 0:
                    raise ValueError("alpha")

            def to_dict(self):
                return asdict(self)

            @classmethod
            def from_dict(cls, data):
                names = {f.name for f in fields(cls)}
                return cls(**{k: v for k, v in data.items()
                              if k in names})
        """)

    def test_neglected_field_flagged_on_every_missing_surface(self):
        res = _run([self.FIXTURE], select=["RL007"])
        messages = [f.message for f in res.findings]
        assert len(messages) == 3
        assert all("'beta'" in m for m in messages)
        assert any("__post_init__" in m for m in messages)
        assert any("docstring" in m for m in messages)
        assert any("preset 'fast'" in m for m in messages)

    def test_preset_key_that_is_not_a_field_is_flagged(self):
        path, source = self.FIXTURE
        source = source.replace('"fast": {"alpha": 0},',
                                '"fast": {"alpha": 0, "gamma": 1},')
        res = _run([(path, source)], select=["RL007"])
        assert any("'gamma'" in f.message and "not a RunConfig field"
                   in f.message for f in res.findings)

    def _real_pair(self):
        config = (REPO / "src" / "repro" / "config.py").read_text(
            encoding="utf-8")
        cli = (REPO / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8")
        return config, cli

    def test_real_config_and_cli_are_coherent(self):
        config, cli = self._real_pair()
        res = run_sources([("src/repro/config.py", config),
                           ("src/repro/cli.py", cli)], select=["RL007"])
        assert res.clean

    def test_deleting_a_cli_flag_fails_rl007(self):
        config, cli = self._real_pair()
        assert '"--seed"' in cli
        mutated = cli.replace('"--seed"', '"--xseed"')
        res = run_sources([("src/repro/config.py", config),
                           ("src/repro/cli.py", mutated)],
                          select=["RL007"])
        assert any(f.code == "RL007" and "no --seed flag" in f.message
                   for f in res.findings)

    def test_deleting_a_preset_entry_fails_rl007(self):
        config, cli = self._real_pair()
        assert config.count('"seed": 0,') == 2
        mutated = config.replace('"seed": 0,', "", 1)
        res = run_sources([("src/repro/config.py", mutated),
                           ("src/repro/cli.py", cli)], select=["RL007"])
        assert any(f.code == "RL007"
                   and "'seed' missing from preset" in f.message
                   for f in res.findings)


# ---------------------------------------------------------------------------
# RL008 — whole-program async concurrency (project rule)
# ---------------------------------------------------------------------------
class TestRL008AsyncConcurrency:
    def test_flags_unawaited_coroutine(self):
        res = _run([("src/repro/serve/fake.py", """\
            async def fetch_scene(req):
                return req


            async def handler(req):
                fetch_scene(req)
                return None
            """)])
        assert _codes(res) == ["RL008"]
        assert res.findings[0].line == 6
        assert "never awaited" in res.findings[0].message

    def test_flags_dropped_create_task_handle(self):
        res = _run([("src/repro/serve/fake.py", """\
            import asyncio


            async def handler(coro):
                asyncio.create_task(coro)
            """)])
        assert _codes(res) == ["RL008"]
        assert "dropped" in res.findings[0].message

    def test_flags_thread_lock_held_across_await(self):
        res = _run([("src/repro/core/fake.py", """\
            import asyncio
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self, key):
                    with self._lock:
                        await asyncio.sleep(0)
            """)])
        assert _codes(res) == ["RL008"]
        assert res.findings[0].line == 10
        assert "held across await" in res.findings[0].message

    def test_flags_transitively_blocking_call_outside_serve_scope(self):
        res = _run([("src/repro/core/fake.py", """\
            import time


            def helper():
                time.sleep(1)


            def middle():
                return helper()


            async def handler():
                return middle()
            """)])
        assert _codes(res) == ["RL008"]
        assert res.findings[0].line == 13
        assert "time.sleep" in res.findings[0].message

    def test_flags_nested_function_forwarded_to_pool_boundary(self):
        res = _run([("src/repro/apps/fake.py", """\
            def fan(pool_map, fn, items):
                return pool_map(fn, items)


            def outer(pool_map, items):
                def helper(x):
                    return x + 1

                return fan(pool_map, helper, items)
            """)])
        assert _codes(res) == ["RL008"]
        assert res.findings[0].line == 9
        assert "pickle boundary" in res.findings[0].message

    def test_awaited_and_bound_idioms_are_clean(self):
        res = _run([("src/repro/serve/fake.py", """\
            import asyncio


            async def fetch_scene(req):
                return req


            async def handler(req):
                result = await fetch_scene(req)
                task = asyncio.create_task(fetch_scene(req))
                async with asyncio.Lock():
                    await asyncio.sleep(0)
                return result, await task
            """)])
        assert res.clean

    def test_suppression_for_fire_and_forget(self):
        res = _run([("src/repro/serve/fake.py", """\
            async def probe(req):
                return req


            async def handler(req):
                probe(req)  # repro-lint: disable=RL008 -- fixture: deliberate fire-and-forget probe
                return None
            """)])
        assert res.clean
        assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# suppression mechanics
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_standalone_comment_covers_next_line(self):
        res = _run([("src/repro/fake.py", """\
            import time


            def stamp():
                # repro-lint: disable=RL001 -- provenance only
                return time.time()
            """)])
        assert res.clean
        assert len(res.suppressed) == 1
        assert res.suppressed[0][1].justification == "provenance only"

    def test_missing_justification_is_rl000_and_does_not_silence(self):
        res = _run([("src/repro/fake.py", """\
            import time


            def stamp():
                return time.time()  # repro-lint: disable=RL001
            """)])
        codes = _codes(res)
        assert "RL000" in codes
        assert "RL001" in codes

    def test_unused_suppression_is_rl000_on_full_runs_only(self):
        files = [("src/repro/fake.py", """\
            def noop():  # repro-lint: disable=RL001 -- nothing fires here
                return 0
            """)]
        full = _run(files)
        assert _codes(full) == ["RL000"]
        assert "never matched" in full.findings[0].message
        partial = _run(files, select=["RL001"])
        assert partial.clean

    def test_unsilenceable_codes_cannot_be_named(self):
        res = _run([("src/repro/fake.py", """\
            X = 1  # repro-lint: disable=RL000 -- nice try
            """)])
        assert _codes(res) == ["RL000"]

    def test_one_comment_covers_multiple_codes(self):
        res = _run([("src/repro/serve/fake.py", """\
            import time


            def stamp():
                return time.time(), time.sleep(0)  # repro-lint: disable=RL001, RL004 -- fixture covering two rules
            """)])
        assert res.clean
        assert len(res.suppressed) == 2


# ---------------------------------------------------------------------------
# baseline lifecycle
# ---------------------------------------------------------------------------
class TestBaseline:
    FILES = [("src/repro/fake.py", """\
        import time


        def stamp():
            return time.time()
        """)]

    def test_matching_entry_absorbs_the_finding(self):
        entry = BaselineEntry("src/repro/fake.py", "RL001", "time.time()",
                              "legacy provenance stamp")
        res = _run(self.FILES, baseline=[entry])
        assert res.clean
        assert len(res.baselined) == 1

    def test_stale_entry_fails_the_run(self):
        entry = BaselineEntry("src/repro/fake.py", "RL001",
                              "no-such-fragment", "outdated")
        res = _run(self.FILES, baseline=[entry])
        codes = _codes(res)
        assert "RL001" in codes
        assert any(f.code == "RL000" and "stale" in f.message
                   for f in res.findings)

    def test_load_rejects_empty_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [
            {"path": "a.py", "code": "RL001", "contains": "x",
             "justification": "   "}]}), encoding="utf-8")
        entries, errors = load_baseline(path)
        assert not entries
        assert any("justification" in e.message for e in errors)

    def test_load_rejects_unknown_and_missing_keys(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [
            {"path": "a.py", "code": "RL001", "contains": "x",
             "justification": "ok", "line": 3},
            {"path": "a.py", "code": "RL001"}]}), encoding="utf-8")
        entries, errors = load_baseline(path)
        assert not entries
        assert len(errors) == 2

    def test_checked_in_baseline_is_fully_justified(self):
        entries, errors = load_baseline(engine.DEFAULT_BASELINE)
        assert not errors
        for entry in entries:
            assert entry.justification.strip()
            assert "TODO" not in entry.justification


# ---------------------------------------------------------------------------
# stdlib hygiene rules (the ruff mirror)
# ---------------------------------------------------------------------------
class TestHygieneRules:
    def test_unused_import_f401(self):
        res = _run([("tools/fake.py", """\
            import os


            def nothing():
                return 1
            """)])
        assert "F401" in _codes(res)

    def test_reexport_convention_not_flagged(self):
        res = _run([("tools/fake.py", "import os as os\n")])
        assert res.clean

    def test_duplicate_import_f811(self):
        res = _run([("tools/fake.py", """\
            import os
            import os

            print(os.sep)
            """)])
        assert "F811" in _codes(res)

    def test_whitespace_rules(self):
        assert "W191" in _codes(_run([("tools/fake.py",
                                       "if True:\n\tX = 1\n")]))
        assert "W291" in _codes(_run([("tools/fake.py", "X = 1 \n")]))
        assert "W292" in _codes(_run([("tools/fake.py", "X = 1")]))

    def test_syntax_error_cannot_be_suppressed(self):
        res = _run([("tools/fake.py",
                     "def broken(:  # repro-lint: disable=E999 -- nope\n")])
        assert any(f.code == "E999" for f in res.findings)

    def test_pyproject_select_matches_framework_mirror(self):
        config = tomllib.loads(
            (REPO / "pyproject.toml").read_text(encoding="utf-8"))
        select = config["tool"]["ruff"]["lint"]["select"]
        assert tuple(select) == engine.RUFF_SELECT

    def test_mirror_prefixes_and_codes_cover_each_other(self):
        for code in engine.STDLIB_CODES:
            assert any(code.startswith(prefix)
                       for prefix in engine.RUFF_SELECT), code
        for prefix in engine.RUFF_SELECT:
            assert any(code.startswith(prefix)
                       for code in engine.STDLIB_CODES), prefix


# ---------------------------------------------------------------------------
# call-graph resolution edge cases (RL003 rides the shared resolver)
# ---------------------------------------------------------------------------
class TestCallGraph:
    def test_aliased_module_import_resolves(self):
        res = _run([
            (EXECUTOR, """\
                from .kernels import demo_kernel as dk

                KERNELS = {"demo": dk}
                """),
            ("src/repro/apps/kernels.py", """\
                from repro.apps import deep as d


                def demo_kernel(stream):
                    return d.helper(stream)
                """),
            ("src/repro/apps/deep.py", """\
                def helper(stream):
                    return stream.to_bits()
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [(f.relpath, f.line) for f in rl003] == \
            [("src/repro/apps/deep.py", 2)]

    def test_reexport_through_package_init_resolves(self):
        res = _run([
            (EXECUTOR, """\
                from .lib import helper_kernel

                KERNELS = {"demo": helper_kernel}
                """),
            ("src/repro/apps/lib/__init__.py", """\
                from .impl import helper_kernel as helper_kernel
                """),
            ("src/repro/apps/lib/impl.py", """\
                def helper_kernel(stream):
                    return stream.to_bits()
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [(f.relpath, f.line) for f in rl003] == \
            [("src/repro/apps/lib/impl.py", 2)]

    def test_method_reached_via_self_resolves(self):
        res = _run([
            (EXECUTOR, """\
                from .runner import run_kernel

                KERNELS = {"demo": run_kernel}
                """),
            ("src/repro/apps/runner.py", """\
                class Runner:
                    def run(self, stream):
                        return self.step(stream)

                    def step(self, stream):
                        return stream.to_bits()


                def run_kernel(stream):
                    return Runner().run(stream)
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [(f.relpath, f.line) for f in rl003] == \
            [("src/repro/apps/runner.py", 6)]

    def test_decorated_kernel_still_resolves(self):
        res = _run([
            (EXECUTOR, """\
                from .deco import demo_kernel

                KERNELS = {"demo": demo_kernel}
                """),
            ("src/repro/apps/deco.py", """\
                import functools


                @functools.lru_cache(maxsize=None)
                def demo_kernel(stream):
                    return stream.to_bits()
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [(f.relpath, f.line) for f in rl003] == \
            [("src/repro/apps/deco.py", 6)]

    def test_call_cycles_terminate(self):
        res = _run([
            (EXECUTOR, """\
                from .cyc import ping_kernel

                KERNELS = {"demo": ping_kernel}
                """),
            ("src/repro/apps/cyc.py", """\
                def ping_kernel(stream, depth):
                    if depth:
                        return pong(stream, depth - 1)
                    return stream.to_bits()


                def pong(stream, depth):
                    return ping_kernel(stream, depth)
                """),
        ])
        rl003 = [f for f in res.findings if f.code == "RL003"]
        assert [(f.relpath, f.line) for f in rl003] == \
            [("src/repro/apps/cyc.py", 4)]


# ---------------------------------------------------------------------------
# content-hash result cache
# ---------------------------------------------------------------------------
class TestCache:
    FILES = [("src/repro/fake.py", """\
        import time


        def stamp():
            return time.time()
        """)]

    def test_warm_run_replays_findings_without_parsing(self, tmp_path):
        cache = LintCache(tmp_path)
        cold = _run(self.FILES, cache=cache)
        cache.save()
        warm_cache = LintCache(tmp_path)
        before = FileContext.parsed_total
        warm = _run(self.FILES, cache=warm_cache)
        assert FileContext.parsed_total == before
        assert warm.findings == cold.findings
        assert warm_cache.hits == 1 and warm_cache.misses == 0

    def test_content_change_misses_and_relints(self, tmp_path):
        cache = LintCache(tmp_path)
        assert "RL001" in _codes(_run(self.FILES, cache=cache))
        cache.save()
        fixed = [("src/repro/fake.py", """\
            import time


            def stamp():
                return time.perf_counter()
            """)]
        warm = _run(fixed, cache=LintCache(tmp_path))
        assert warm.clean

    def test_suppression_accounting_stays_live_from_cache(self, tmp_path):
        files = [("src/repro/fake.py", """\
            import time


            def stamp():
                return time.time()  # repro-lint: disable=RL001 -- provenance only
            """)]
        cache = LintCache(tmp_path)
        cold = _run(files, cache=cache)
        assert cold.clean and len(cold.suppressed) == 1
        cache.save()
        before = FileContext.parsed_total
        warm = _run(files, cache=LintCache(tmp_path))
        assert FileContext.parsed_total == before
        assert warm.clean and len(warm.suppressed) == 1

    def test_select_runs_never_touch_the_cache(self, tmp_path):
        cache = LintCache(tmp_path)
        _run(self.FILES, cache=cache, select=["W"])
        assert cache.hits == 0 and cache.misses == 0


# ---------------------------------------------------------------------------
# SARIF serialisation
# ---------------------------------------------------------------------------
class TestSarif:
    def test_structure_and_rule_catalogue(self):
        findings = [Finding("src/repro/fake.py", 5, "RL001", "seedless"),
                    Finding("tools/fake.py", 0, "E902", "unreadable")]
        doc = to_sarif(findings)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "RL001" in rules and "shortDescription" in rules["RL001"]
        assert rules["E902"]["name"] == "unreadable-file"
        by_rule = {r["ruleId"]: r for r in run["results"]}
        loc = by_rule["RL001"]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/fake.py"
        assert loc["region"]["startLine"] == 5
        whole_file = by_rule["E902"]["locations"][0]["physicalLocation"]
        assert whole_file["region"]["startLine"] == 1   # 1-based floor


# ---------------------------------------------------------------------------
# --fix autofixes
# ---------------------------------------------------------------------------
class TestFixes:
    def test_fixes_whitespace_newline_and_unused_import(self):
        src = "import os\nimport sys as s\n\nX = 1 \nprint(s.path)"
        fixed, n = fix_source("tools/fake.py", src)
        assert fixed == "import sys as s\n\nX = 1\nprint(s.path)\n"
        assert n == 3

    def test_fix_is_idempotent(self):
        src = "import os\n\n\nX = 1 \n"
        once, n1 = fix_source("tools/fake.py", src)
        twice, n2 = fix_source("tools/fake.py", once)
        assert n1 > 0 and n2 == 0
        assert twice == once

    def test_multi_name_import_left_for_a_human(self):
        src = "from os import path, sep\n\nX = 1\n"
        fixed, n = fix_source("tools/fake.py", src)
        assert fixed == src and n == 0

    def test_cli_fix_rewrites_in_place(self, tmp_path, capsys):
        target = tmp_path / "fake.py"
        target.write_text("import os\n\n\nX = 1 \n", encoding="utf-8")
        rc = main([str(target), "--project-root", str(tmp_path),
                   "--no-baseline", "--no-cache", "--fix"])
        assert rc == 0
        assert "fixed 2 issue(s)" in capsys.readouterr().out
        assert target.read_text(encoding="utf-8") == "\n\nX = 1\n"


# ---------------------------------------------------------------------------
# path handling (satellite: typo'd paths must fail, not lint nothing)
# ---------------------------------------------------------------------------
class TestPathHandling:
    def test_unknown_path_raises(self):
        with pytest.raises(PathError):
            iter_py_files(["definitely/not/a/path.py"])

    def test_cli_exits_2_on_unknown_path(self, capsys):
        assert main(["definitely/not/a/path.py"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_empty_directory_raises(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        with pytest.raises(PathError):
            iter_py_files([str(tmp_path / "pkg")], tmp_path)

    def test_cli_exits_2_on_empty_directory(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        assert main([str(tmp_path / "pkg")]) == 2
        assert "no .py files" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the gate end to end
# ---------------------------------------------------------------------------
class TestGate:
    def test_full_tree_is_clean(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def _violation(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""\
            import time


            def stamp():
                return time.time()
            """), encoding="utf-8")
        return bad

    def test_deliberate_violation_fails_the_gate(self, tmp_path, capsys):
        bad = self._violation(tmp_path)
        rc = main([str(bad), "--project-root", str(tmp_path),
                   "--no-baseline"])
        assert rc == 1
        assert "RL001" in capsys.readouterr().out

    def test_select_narrows_the_run(self, tmp_path, capsys):
        bad = self._violation(tmp_path)
        rc = main([str(bad), "--project-root", str(tmp_path),
                   "--no-baseline", "--select", "W"])
        assert rc == 0
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        bad = self._violation(tmp_path)
        rc = main([str(bad), "--project-root", str(tmp_path),
                   "--no-baseline", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert [f["code"] for f in payload["findings"]] == ["RL001"]

    def test_sarif_output(self, tmp_path, capsys):
        bad = self._violation(tmp_path)
        rc = main([str(bad), "--project-root", str(tmp_path),
                   "--no-baseline", "--no-cache", "--format", "sarif"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        catalogue = run["tool"]["driver"]["rules"]
        assert catalogue[0]["id"] == "RL001"
        assert "shortDescription" in catalogue[0]
        result = run["results"][0]
        assert result["ruleId"] == "RL001"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/bad.py"
        assert loc["region"]["startLine"] == 5

    def test_changed_since_head_is_clean(self, capsys):
        assert main(["--changed-since", "HEAD", "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_changed_since_rejects_explicit_paths(self, capsys):
        assert main(["--changed-since", "HEAD", "src"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_explain_every_registered_rule(self, capsys):
        engine.load_plugins()
        for code in sorted(engine.RULES):
            assert main(["--explain", code]) == 0
            assert code in capsys.readouterr().out

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert main(["--explain", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_names_the_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006", "RL007", "RL008"):
            assert code in out

    def test_legacy_lint_py_shim_still_works(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint.py"),
             "--list-rules"],
            capture_output=True, text=True, check=False)
        assert proc.returncode == 0
        assert "RL005" in proc.stdout
