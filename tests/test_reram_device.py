"""Unit tests for repro.reram.device (VCM cell model)."""

import numpy as np
import pytest

from repro.reram.device import DEFAULT_DEVICE, DeviceParams, ReRamDevice


class TestDistributions:
    def test_lrs_hrs_medians(self, rng):
        dev = ReRamDevice(rng=rng)
        lrs = dev.sample_resistance(np.ones(20_000))
        hrs = dev.sample_resistance(np.zeros(20_000))
        assert np.median(lrs) == pytest.approx(DEFAULT_DEVICE.lrs_mean, rel=0.05)
        assert np.median(hrs) == pytest.approx(DEFAULT_DEVICE.hrs_mean, rel=0.05)

    def test_hrs_wider_than_lrs(self, rng):
        dev = ReRamDevice(rng=rng)
        lrs = np.log(dev.sample_resistance(np.ones(20_000)))
        hrs = np.log(dev.sample_resistance(np.zeros(20_000)))
        assert hrs.std() > 2 * lrs.std()

    def test_states_shape_preserved(self, rng):
        dev = ReRamDevice(rng=rng)
        r = dev.sample_resistance(np.zeros((4, 7)))
        assert r.shape == (4, 7)


class TestReads:
    def test_read_noise_fluctuates(self, rng):
        dev = ReRamDevice(rng=rng)
        r = np.full(1, 10e3)
        reads = np.array([dev.read_conductance(r)[0] for _ in range(100)])
        assert reads.std() > 0

    def test_read_current_ohms_law(self, rng):
        p = DeviceParams(read_noise_sigma=0.0)
        dev = ReRamDevice(p, rng=rng)
        i = dev.read_current(np.array([10e3]))[0]
        assert i == pytest.approx(p.read_voltage / 10e3, rel=1e-9)

    def test_custom_voltage(self, rng):
        p = DeviceParams(read_noise_sigma=0.0)
        dev = ReRamDevice(p, rng=rng)
        i = dev.read_current(np.array([10e3]), voltage=0.4)[0]
        assert i == pytest.approx(0.4 / 10e3, rel=1e-9)


class TestSwitching:
    def test_half_probability_at_v50(self):
        dev = ReRamDevice()
        assert dev.set_probability(DEFAULT_DEVICE.v_set50) == pytest.approx(0.5)
        assert dev.reset_probability(DEFAULT_DEVICE.v_reset50) == pytest.approx(0.5)

    def test_monotone_in_voltage(self):
        dev = ReRamDevice()
        assert dev.set_probability(1.6) > dev.set_probability(1.2)

    def test_stochastic_set_rate(self, rng):
        dev = ReRamDevice(rng=rng)
        bits = dev.stochastic_set(50_000)
        assert abs(bits.mean() - 0.5) < 0.02


class TestHelpers:
    def test_single_ref_between_states(self):
        p = DEFAULT_DEVICE
        iref = ReRamDevice().single_ref_current()
        i_lrs = p.read_voltage / p.lrs_mean
        i_hrs = p.read_voltage / p.hrs_mean
        assert i_hrs < iref < i_lrs

    def test_scaled_override(self):
        p2 = DEFAULT_DEVICE.scaled(hrs_sigma=0.9)
        assert p2.hrs_sigma == 0.9
        assert p2.lrs_mean == DEFAULT_DEVICE.lrs_mean
