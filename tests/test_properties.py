"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bincim.arith import BitSerialAlu, from_planes, to_planes
from repro.core import ops
from repro.core.bitstream import Bitstream
from repro.core.correlation import scc
from repro.core.encoding import binary_to_prob, quantize
from repro.core.rng import Lfsr, SobolRng
from repro.core.sng import ComparatorSng, unary_stream
from repro.core.rng import SoftwareRng
from repro.imsc.gtnetwork import gt_reference
from repro.logic.xag import Xag

common = settings(max_examples=40,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)

bits_lists = st.lists(st.integers(0, 1), min_size=1, max_size=256)


class TestBitstreamProperties:
    @common
    @given(bits_lists)
    def test_value_in_unit_interval(self, bits):
        v = float(Bitstream(bits).value())
        assert 0.0 <= v <= 1.0

    @common
    @given(bits_lists)
    def test_complement_value(self, bits):
        s = Bitstream(bits)
        assert float((~s).value()) == pytest.approx(1.0 - float(s.value()))

    @common
    @given(bits_lists, st.integers(-300, 300))
    def test_roll_preserves_popcount(self, bits, shift):
        s = Bitstream(bits)
        assert int(s.roll(shift).popcount()) == int(s.popcount())

    @common
    @given(bits_lists)
    def test_pack_unpack_roundtrip(self, bits):
        s = Bitstream(bits)
        assert Bitstream.from_packed(s.packed(), s.length) == s

    @common
    @given(bits_lists, bits_lists)
    def test_demorgan(self, a_bits, b_bits):
        n = min(len(a_bits), len(b_bits))
        a = Bitstream(a_bits[:n])
        b = Bitstream(b_bits[:n])
        assert (~(a & b)) == ((~a) | (~b))


class TestOpsProperties:
    @common
    @given(st.floats(0, 1), st.floats(0, 1))
    def test_unary_min_max_exact(self, x, y):
        n = 64
        a = unary_stream(x, n)
        b = unary_stream(y, n)
        assert float(ops.min_and(a, b).value()) == pytest.approx(
            min(round(x * n) / n, round(y * n) / n))
        assert float(ops.max_or(a, b).value()) == pytest.approx(
            max(round(x * n) / n, round(y * n) / n))

    @common
    @given(st.floats(0, 1), st.floats(0, 1))
    def test_unary_xor_abs_difference(self, x, y):
        n = 128
        a = unary_stream(x, n)
        b = unary_stream(y, n)
        expected = abs(round(x * n) - round(y * n)) / n
        assert float(ops.sub_xor(a, b).value()) == pytest.approx(expected)

    @common
    @given(bits_lists, bits_lists, bits_lists)
    def test_maj_between_and_or(self, xa, xb, xc):
        n = min(len(xa), len(xb), len(xc))
        a, b, c = (Bitstream(v[:n]) for v in (xa, xb, xc))
        maj = ops.scaled_add_maj(a, b, c)
        assert np.all((a & b & c).bits <= maj.bits)
        assert np.all(maj.bits <= (a | b | c).bits)

    @common
    @given(st.integers(1, 2 ** 16))
    def test_mux_identity_same_inputs(self, seed):
        s = Bitstream.bernoulli(0.5, 64, rng=seed)
        sel = Bitstream.bernoulli(0.5, 64, rng=seed + 1)
        assert ops.mux2(sel, s, s) == s


class TestSccProperties:
    @common
    @given(st.integers(0, 2 ** 16), st.integers(0, 2 ** 16))
    def test_scc_bounds(self, s1, s2):
        a = Bitstream.bernoulli(0.5, 128, rng=s1)
        b = Bitstream.bernoulli(0.5, 128, rng=s2)
        v = float(scc(a, b))
        assert -1.0 <= v <= 1.0

    @common
    @given(st.floats(0.05, 0.95), st.floats(0.05, 0.95),
           st.integers(0, 1000))
    def test_shared_rng_pairs_scc_nonnegative(self, x, y, seed):
        sng = ComparatorSng(SoftwareRng(8, seed=seed))
        a, b = sng.generate_pair(x, y, 512, correlated=True)
        assert float(scc(a, b)) >= -0.01


class TestEncodingProperties:
    @common
    @given(st.floats(0, 1), st.integers(1, 12))
    def test_quantize_within_one_lsb(self, x, bits):
        code = int(quantize(x, bits))
        recovered = float(binary_to_prob(code, bits))
        assert abs(recovered - x) <= 1.0 / (1 << bits) + 1e-12


class TestRngProperties:
    @common
    @given(st.integers(1, 255))
    def test_lfsr_period_independent_of_seed(self, seed):
        assert Lfsr(seed=seed).period == 255

    @common
    @given(st.integers(0, 8), st.integers(1, 64))
    def test_sobol_values_in_range(self, dim, count):
        vals = SobolRng(8, dim=dim).integers(count)
        assert vals.min() >= 0 and vals.max() < 256


class TestGtProperties:
    @common
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=64),
           st.integers(0, 255))
    def test_gt_reference_matches_integer_compare(self, a_vals, b):
        a = np.array(a_vals)
        ap = np.stack([((a >> (7 - i)) & 1).astype(np.uint8)
                       for i in range(8)])
        bp = np.stack([np.full(a.size, (b >> (7 - i)) & 1, dtype=np.uint8)
                       for i in range(8)])
        assert np.array_equal(gt_reference(ap, bp), (a > b).astype(np.uint8))


class TestXagProperties:
    @common
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30),
           st.integers(0, 2 ** 10))
    def test_random_xag_matches_numpy_eval(self, program, seed):
        # Build a random XAG over 4 inputs and check evaluation against a
        # direct numpy computation of the same expression DAG.
        x = Xag()
        gen = np.random.default_rng(seed)
        names = ["a", "b", "c", "d"]
        lits = [x.add_input(n) for n in names]
        vals = {n: gen.integers(0, 2, 32).astype(np.uint8) for n in names}
        ref = [vals[n].copy() for n in names]
        for opcode in program:
            i = int(gen.integers(0, len(lits)))
            j = int(gen.integers(0, len(lits)))
            if opcode % 2 == 0:
                lits.append(x.add_and(lits[i], lits[j]))
                ref.append(ref[i] & ref[j])
            else:
                lits.append(x.add_xor(lits[i], lits[j]))
                ref.append(ref[i] ^ ref[j])
        x.add_output(lits[-1], "out")
        got = x.evaluate(vals)["out"]
        assert np.array_equal(got, ref[-1])


class TestBincimProperties:
    @common
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=32),
           st.lists(st.integers(0, 255), min_size=1, max_size=32))
    def test_adder_matches_integer_addition(self, xs, ys):
        n = min(len(xs), len(ys))
        a = np.array(xs[:n])
        b = np.array(ys[:n])
        alu = BitSerialAlu()
        out = from_planes(alu.add(to_planes(a, 8), to_planes(b, 8)))
        assert np.array_equal(out, a + b)

    @common
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
           st.integers(1, 255))
    def test_divider_matches_integer_division(self, nums, den):
        a = np.array(nums)
        d = np.full(a.size, den)
        alu = BitSerialAlu()
        q = from_planes(alu.divide_fixed(to_planes(a, 8), to_planes(d, 8),
                                         8, 8))
        assert np.array_equal(q, (a * 256) // den)
