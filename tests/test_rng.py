"""Unit tests for repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import (
    CounterRng,
    Lfsr,
    PAPER_POLY_8,
    PRIMITIVE_POLY_8,
    SobolRng,
    SoftwareRng,
    lfsr_period,
)


class TestSoftwareRng:
    def test_range(self):
        r = SoftwareRng(8, seed=0)
        vals = r.integers(10_000)
        assert vals.min() >= 0 and vals.max() < 256

    def test_uniformity(self):
        r = SoftwareRng(8, seed=0)
        vals = r.integers(100_000)
        assert abs(vals.mean() - 127.5) < 1.0

    def test_reset_reproduces(self):
        r = SoftwareRng(8, seed=7)
        a = r.integers(32)
        r.reset()
        assert np.array_equal(r.integers(32), a)

    def test_uniforms_in_unit_interval(self):
        u = SoftwareRng(8, seed=0).uniforms(1000)
        assert u.min() >= 0.0 and u.max() < 1.0

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            SoftwareRng(0)
        with pytest.raises(ValueError):
            SoftwareRng(33)


class TestLfsr:
    def test_default_is_maximal(self):
        assert Lfsr().is_maximal()
        assert Lfsr().period == 255

    def test_paper_polynomial_not_maximal(self):
        # x^8+x^5+x^3+1 factors as (x^5+1)(x^3+1): the paper's footnote
        # polynomial cannot be maximal-length.
        assert not Lfsr(PAPER_POLY_8).is_maximal()

    def test_period_function_agrees(self):
        assert lfsr_period(PRIMITIVE_POLY_8, 8) == 255

    def test_sequence_cycles(self):
        r = Lfsr(seed=1)
        first = r.integers(255)
        second = r.integers(255)
        assert np.array_equal(first, second)

    def test_never_emits_zero_state(self):
        vals = Lfsr(seed=1).integers(255)
        assert 0 not in vals

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(seed=0)

    def test_visits_all_nonzero_states(self):
        vals = Lfsr(seed=42).integers(255)
        assert len(set(int(v) for v in vals)) == 255

    def test_reset(self):
        r = Lfsr(seed=3)
        a = r.integers(10)
        r.reset()
        assert np.array_equal(r.integers(10), a)


class TestSobol:
    def test_dim0_is_bit_reversal(self):
        r = SobolRng(8, dim=0)
        vals = r.integers(4)
        # First points of the base-2 radical inverse (Gray-code order
        # visits the same set: 0, 1/2, 3/4, 1/4).
        assert vals[1] == 128
        assert set(int(v) for v in vals) == {0, 128, 64, 192}

    def test_stratification_first_power_of_two(self):
        # The first 2^k Sobol points hit each of the 2^k equal bins once.
        r = SobolRng(8, dim=0)
        vals = r.integers(256)
        assert len(set(int(v) for v in vals)) == 256

    def test_higher_dims_stratify(self):
        for dim in range(1, 9):
            r = SobolRng(8, dim=dim)
            vals = r.integers(256)
            assert len(set(int(v) for v in vals)) == 256, f"dim {dim}"

    def test_unsupported_dim(self):
        with pytest.raises(ValueError):
            SobolRng(8, dim=99)

    def test_scramble_changes_sequence_not_stratification(self):
        plain = SobolRng(8, dim=0).integers(256)
        scram = SobolRng(8, dim=0, scramble_seed=5).integers(256)
        assert not np.array_equal(plain, scram)
        assert len(set(int(v) for v in scram)) == 256

    def test_reset(self):
        r = SobolRng(8)
        a = r.integers(16)
        r.reset()
        assert np.array_equal(r.integers(16), a)


class TestCounter:
    def test_ramp(self):
        assert list(CounterRng(4).integers(5)) == [0, 1, 2, 3, 4]

    def test_wraps(self):
        r = CounterRng(2, start=2)
        assert list(r.integers(4)) == [2, 3, 0, 1]

    def test_reset(self):
        r = CounterRng(4, start=7)
        r.integers(3)
        r.reset()
        assert r.integers(1)[0] == 7
