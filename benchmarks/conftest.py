"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints it,
so ``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Sample counts are chosen to finish in minutes; the experiment
runners accept larger counts for paper-grade statistics.
"""

import pathlib

import pytest

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "reproduction_report.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    """Start every benchmark session with an empty reproduction report."""
    REPORT_PATH.write_text("")
    yield


def emit(title: str, body: str) -> None:
    """Print a reproduction artefact and append it to the report file.

    Pytest captures stdout at the file-descriptor level, so the printed
    copy shows with ``-s``; the file copy (``reproduction_report.txt`` at
    the repo root) is always written.
    """
    block = ("\n" + "=" * 72 + "\n" + title + "\n" + "=" * 72 + "\n"
             + body + "\n")
    print(block, end="")
    with REPORT_PATH.open("a") as fh:
        fh.write(block)
