"""Ablation: IMSNG-naive vs IMSNG-opt, and segment size M sensitivity."""

import numpy as np
from conftest import emit

from repro.analysis.tables import render_table
from repro.core.accuracy import sng_mse
from repro.core.sng import SegmentSng
from repro.imsc.cost import imsng_conversion_cost
from repro.imsc.engine import InMemorySCEngine
from repro.reram.faults import DEFAULT_FAULT_RATES
from repro.reram.trng import ReRamTrng


def _variant_grid():
    out = {}
    for mode in ("naive", "opt"):
        for m in (5, 6, 7, 8, 9):
            led = imsng_conversion_cost(m, mode)
            out[(mode, m)] = (led.latency_ns, led.energy_nj)
    return out


def test_imsng_design_space(benchmark):
    result = benchmark.pedantic(_variant_grid, rounds=3, iterations=1)
    rows = [[mode, m, lat, en] for (mode, m), (lat, en) in result.items()]
    emit("Ablation -- IMSNG cost across variants and segment sizes",
         render_table(["mode", "M", "latency (ns)", "energy (nJ)"], rows))
    # The latch optimisation dominates at every M.
    for m in (5, 6, 7, 8, 9):
        assert result[("opt", m)][0] < result[("naive", m)][0] / 3
        assert result[("opt", m)][1] < result[("naive", m)][1] / 2


def _fault_sensitivity():
    """Under faults, opt has fewer sensed fault sites than naive."""
    rates = DEFAULT_FAULT_RATES.scaled(10)
    errs = {}
    for mode in ("naive", "opt"):
        e = InMemorySCEngine(mode=mode, fault_rates=rates, rng=0)
        s = e.generate(np.full(600, 0.5), 256)
        errs[mode] = float(np.mean(np.abs(s.value() - 0.5)))
    return errs


def test_imsng_fault_sites(benchmark):
    errs = benchmark.pedantic(_fault_sensitivity, rounds=1, iterations=1)
    emit("Ablation -- conversion error under 10x fault rates",
         render_table(["mode", "mean |error|"],
                      [[k, v] for k, v in errs.items()], precision=4))
    assert errs["opt"] < errs["naive"]


def _segment_accuracy():
    out = {}
    for m in (5, 7, 9):
        sng = SegmentSng(ReRamTrng(rng=0), segment_bits=m)
        out[m] = sng_mse(sng, 512, samples=4_000, seed=m)
    return out


def test_segment_size_accuracy(benchmark):
    result = benchmark.pedantic(_segment_accuracy, rounds=1, iterations=1)
    emit("Ablation -- Table I's M axis at N=512 (quantisation floor)",
         render_table(["M", "MSE (%)"], [[m, v] for m, v in result.items()],
                      precision=4))
    # Larger segments reduce the quantisation floor.
    assert result[9] < result[5]
