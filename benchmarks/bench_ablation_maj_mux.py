"""Ablation: MAJ-based vs MUX-based scaled addition (Sec. III-B's claim)."""

from conftest import emit

from repro.analysis.tables import render_table
from repro.core.accuracy import op_mse
from repro.core.rng import SoftwareRng
from repro.core.sng import ComparatorSng


def _compare():
    out = {}
    for n in (32, 64, 128, 256):
        sng = ComparatorSng(SoftwareRng(8, seed=0))
        maj = op_mse("scaled_addition", sng, n, samples=4_000, seed=n)
        mux = op_mse("scaled_addition_mux", sng, n, samples=4_000, seed=n)
        out[n] = (maj, mux)
    return out


def test_maj_vs_mux(benchmark):
    result = benchmark.pedantic(_compare, rounds=1, iterations=1)
    rows = [[n, maj, mux, maj / mux] for n, (maj, mux) in result.items()]
    emit("Ablation -- scaled addition accuracy: MAJ vs MUX "
         "(paper: 'comparable accuracy')",
         render_table(["N", "MAJ MSE (%)", "MUX MSE (%)", "ratio"], rows,
                      precision=4))
    # The paper's claim: the single-cycle MAJ matches the MUX within noise.
    for n, (maj, mux) in result.items():
        assert maj < 2.0 * mux + 0.05
