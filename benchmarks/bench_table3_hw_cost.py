"""Table III: hardware cost of the CMOS and ReRAM SC designs (N = 256)."""

import pytest
from conftest import emit

from repro.analysis.experiments import table3_hw_cost, imsng_variants
from repro.analysis.tables import render_table


def test_table3(benchmark):
    result = benchmark.pedantic(table3_hw_cost, rounds=3, iterations=1)
    rows = []
    for design, ops in result.items():
        for op, cost in ops.items():
            rows.append([design, op, cost["latency_ns"], cost["energy_nj"]])
    emit("Table III -- hardware cost (paper Table III)",
         render_table(["design", "operation", "latency (ns)", "energy (nJ)"],
                      rows))
    # Paper anchors.
    lfsr = result["CMOS (LFSR)"]
    assert lfsr["Multiplication"]["latency_ns"] == pytest.approx(122.88)
    reram = result["ReRAM (IMSNG-opt)"]
    assert reram["Multiplication"]["latency_ns"] == pytest.approx(80.8,
                                                                  rel=0.01)
    assert reram["Division"]["latency_ns"] == pytest.approx(12544.0, rel=0.01)


def test_imsng_conversion_anchor(benchmark):
    result = benchmark.pedantic(imsng_variants, rounds=5, iterations=1)
    rows = [[k, v["latency_ns"], v["energy_nj"]] for k, v in result.items()]
    emit("Sec. IV-B -- IMSNG conversion cost (paper: 395.4 ns / 10.23 nJ "
         "naive, 78.2 ns / 3.42 nJ opt)",
         render_table(["variant", "latency (ns)", "energy (nJ)"], rows))
    assert result["IMSNG-opt"]["latency_ns"] == pytest.approx(78.2, rel=0.01)
