"""Open-loop sustained-load and soak harness for the serving layer.

Replays a **mixed request trace** — big and small scenes, fault-free and
faulty (sparse-sampled) engines, both execution backends — against the
serving layer and reports tail latency and throughput the way
huggingbench's ``exp_runner`` reports percentiles: p50/p90/p99 of
per-request latency, plus achieved requests/s.  The generator is
**open-loop**: with ``--rate R`` request *i* is submitted at ``t0 + i/R``
whether or not earlier requests have finished (arrival is independent of
service, so queueing delay shows up in the percentiles instead of being
hidden by back-pressure); ``--rate 0`` submits the whole trace as one
burst, which measures **saturation throughput** directly.

Every successful response is verified **bit-identical** to
``run_tiled(jobs=1)`` with the same arguments (references computed once
per unique ``(template, seed)`` and cached), so a load run is also a
correctness run: one mangled response fails the harness.

Soak mode (``--soak``) raises the trace to >= 1000 requests and injects a
**worker death** (SIGKILL of one resident worker) mid-stream, turning the
PR 5 crash-containment claims into a measured property: the requests in
flight at the kill fail with ``BrokenProcessPool`` (counted, expected),
the scheduler must respawn the pool exactly once (``pool_restarts``), and
every surviving response must still verify bit-exact.

Front-ends::

    --front-end client   ServingClient (in-process pool; default)
    --front-end stdio    the line-delimited JSON loop of `serve_stdio`,
                         driven through paced in-memory streams; the
                         trace ends with a {"type": "stats"} request so
                         the server-side metrics ride along in the report
                         (worker-death injection needs pool access and is
                         client-front-end only)

A schema-checked ``BENCH_serve.json`` record (config + percentiles +
counts) is written at the repo root after every run — the serving perf
trajectory re-anchors read.  Typical invocations::

    PYTHONPATH=src python benchmarks/loadgen.py                  # smoke burst
    PYTHONPATH=src python benchmarks/loadgen.py --rate 20 --requests 200
    PYTHONPATH=src python benchmarks/loadgen.py --soak           # acceptance
    PYTHONPATH=src python benchmarks/loadgen.py --front-end stdio
    PYTHONPATH=src python benchmarks/loadgen.py --transport copy # pre-shm
"""

import argparse
import dataclasses
import io
import json
import os
import pathlib
import signal
import threading
import time

import numpy as np

from repro.apps.executor import run_tiled
from repro.config import RunConfig
from repro.apps.filters import (
    contrast_stretch_inputs,
    gamma_correct_inputs,
    mean_filter_inputs,
)
from repro.apps.images import natural_scene
from repro.core.backend import use_backend
from repro.report import write_bench_record
from repro.reram.faults import DEFAULT_FAULT_RATES
from repro.serve import ServingClient
from repro.serve.service import serve_stdio

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_serve.json"

#: Request seeds cycle over this many values so the reference cache stays
#: bounded (len(templates) * SEED_CYCLE entries) on arbitrarily long soaks.
SEED_CYCLE = 8


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def build_templates(small: int, big: int, length: int, tile: int) -> list:
    """The mixed request templates the trace cycles through.

    Four shapes covering the serving matrix: small+big scenes, both
    backends, a non-default cell model, and a faulty sparse-sampled
    engine.
    """
    rng = np.random.default_rng(1234)
    img_small = natural_scene(small, small, rng)
    img_big = natural_scene(big, big, rng)
    return [
        dict(name="small_gamma_packed", kernel="gamma_correct",
             inputs=gamma_correct_inputs(img_small), length=length,
             tile=tile, engine_kwargs={"cell_model": "column"},
             kernel_kwargs={"gamma": 0.5}, backend="packed"),
        dict(name="big_mean_packed", kernel="mean_filter",
             inputs=mean_filter_inputs(img_big), length=length, tile=tile,
             engine_kwargs={"cell_model": "column"}, kernel_kwargs={},
             backend="packed"),
        dict(name="small_contrast_unpacked", kernel="contrast_stretch",
             inputs=contrast_stretch_inputs(img_small), length=length,
             tile=tile, engine_kwargs={},
             kernel_kwargs={"lo": 0.1, "hi": 0.9}, backend="unpacked"),
        dict(name="small_faulty_sparse", kernel="mean_filter",
             inputs=mean_filter_inputs(img_small), length=length,
             tile=tile,
             engine_kwargs={"fault_rates": DEFAULT_FAULT_RATES,
                            "fault_sampling": "sparse"},
             kernel_kwargs={}, backend="packed"),
    ]


def build_trace(n: int, templates: list) -> list:
    """``n`` deterministic ``(template_index, seed)`` entries."""
    return [(i % len(templates), i % SEED_CYCLE) for i in range(n)]


class ReferenceCache:
    """Bit-exact ``run_tiled(jobs=1)`` oracles, one per (template, seed)."""

    def __init__(self, templates: list) -> None:
        self.templates = templates
        self._cache: dict = {}

    def get(self, tidx: int, seed: int) -> np.ndarray:
        key = (tidx, seed)
        if key not in self._cache:
            t = self.templates[tidx]
            with use_backend(t["backend"]):
                self._cache[key], _ = run_tiled(
                    t["kernel"], t["inputs"], t["length"], tile=t["tile"],
                    jobs=1, seed=seed, engine_kwargs=t["engine_kwargs"],
                    kernel_kwargs=t["kernel_kwargs"])
        return self._cache[key]


# ----------------------------------------------------------------------
# client front-end
# ----------------------------------------------------------------------
def run_client(trace: list, templates: list, jobs: int, rate: float,
               kill_worker: bool, transport: str = "shm") -> dict:
    """Drive ``ServingClient`` open-loop; returns raw per-request records
    plus the server-side metrics snapshot."""
    records = []
    kill_at = len(trace) // 2
    killed = 0
    with ServingClient(jobs=jobs, transport=transport) as client:
        victims = client.pool.worker_pids()   # fleet is warm (warmup=True)
        t0 = time.perf_counter()
        for i, (tidx, seed) in enumerate(trace):
            if rate > 0:
                target = t0 + i / rate
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            if kill_worker and i == kill_at and victims:
                os.kill(victims[0], signal.SIGKILL)
                killed = 1
            t = templates[tidx]
            rec = {"tidx": tidx, "seed": seed,
                   "t_submit": time.perf_counter()}
            fut = client.submit(t["kernel"], t["inputs"], t["length"],
                                tile=t["tile"], seed=seed,
                                engine_kwargs=t["engine_kwargs"],
                                kernel_kwargs=t["kernel_kwargs"],
                                backend=t["backend"])
            fut.add_done_callback(
                lambda f, rec=rec:
                rec.__setitem__("t_done", time.perf_counter()))
            rec["future"] = fut
            records.append(rec)
        for rec in records:
            try:
                rec["output"] = rec["future"].result(timeout=600)[0]
                rec["ok"] = True
            except Exception as exc:
                rec["ok"] = False
                rec["error"] = type(exc).__name__
            del rec["future"]
        elapsed = time.perf_counter() - t0
        stats = client.stats()
    return {"records": records, "elapsed_s": elapsed, "stats": stats,
            "killed_workers": killed}


# ----------------------------------------------------------------------
# stdio front-end
# ----------------------------------------------------------------------
class _PacedReader(io.TextIOBase):
    """In-memory stdin whose ``readline`` paces the open-loop arrivals."""

    def __init__(self, lines: list, rate: float, submit_times: dict):
        self._lines = lines
        self._rate = rate
        self._submit_times = submit_times
        self._i = 0
        self._t0 = None

    def readline(self) -> str:   # called from serve_stdio's reader thread
        if self._i >= len(self._lines):
            return ""            # EOF: drain and exit
        if self._t0 is None:
            self._t0 = time.perf_counter()
        req_id, line = self._lines[self._i]
        if self._rate > 0:
            delay = (self._t0 + self._i / self._rate) - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        self._i += 1
        if req_id is not None:
            self._submit_times[req_id] = time.perf_counter()
        return line


class _TimestampedWriter(io.TextIOBase):
    """In-memory stdout recording each response line's completion time.

    ``serve_stdio`` writes exactly one full ``line + "\\n"`` per
    ``write`` call (serialised by its write lock), so per-call parsing is
    sound.
    """

    def __init__(self) -> None:
        self.responses: list = []
        self._lock = threading.Lock()

    def write(self, s: str) -> int:
        if s.strip():
            with self._lock:
                self.responses.append((json.loads(s), time.perf_counter()))
        return len(s)

    def flush(self) -> None:
        pass


def run_stdio(trace: list, templates: list, jobs: int,
              rate: float, transport: str = "shm") -> dict:
    """Drive ``serve_stdio`` through paced in-memory streams."""
    lines = []
    for i, (tidx, seed) in enumerate(trace):
        t = templates[tidx]
        lines.append((i, json.dumps({
            "id": i, "kernel": t["kernel"],
            "inputs": {k: v.tolist() for k, v in t["inputs"].items()},
            "length": t["length"], "tile": t["tile"], "seed": seed,
            "engine_kwargs": {k: (dataclasses.asdict(v)
                                  if dataclasses.is_dataclass(v) else v)
                              for k, v in t["engine_kwargs"].items()},
            "kernel_kwargs": t["kernel_kwargs"],
            "backend": t["backend"]}) + "\n"))
    lines.append(("__stats__", json.dumps(
        {"id": "__stats__", "type": "stats"}) + "\n"))
    submit_times: dict = {}
    reader = _PacedReader(lines, rate, submit_times)
    writer = _TimestampedWriter()
    t0 = time.perf_counter()
    serve_stdio(reader, writer, jobs=jobs, transport=transport)
    elapsed = time.perf_counter() - t0

    stats = None
    records = []
    for resp, t_done in writer.responses:
        if resp.get("id") == "__stats__":
            stats = resp.get("stats")
            continue
        i = resp["id"]
        tidx, seed = trace[i]
        rec = {"tidx": tidx, "seed": seed,
               "t_submit": submit_times[i], "t_done": t_done,
               "ok": bool(resp.get("ok"))}
        if rec["ok"]:
            rec["output"] = np.asarray(resp["output"], dtype=np.float64)
        else:
            rec["error"] = resp.get("error", "").split(":")[0]
        records.append(rec)
    return {"records": records, "elapsed_s": elapsed, "stats": stats,
            "killed_workers": 0}


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def _percentiles(values: list) -> dict:
    if not values:
        return {"p50": None, "p90": None, "p99": None,
                "mean": None, "max": None}
    arr = np.asarray(values, dtype=np.float64)
    return {"p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean()), "max": float(arr.max())}


def summarise(raw: dict, trace: list, templates: list,
              rate: float) -> dict:
    """Verify every ok response bit-exact and fold the run into numbers."""
    refs = ReferenceCache(templates)
    ok = failed = incorrect = 0
    failed_by_error: dict = {}
    latencies = []
    for rec in raw["records"]:
        if rec["ok"]:
            ok += 1
            latencies.append(rec["t_done"] - rec["t_submit"])
            if not np.array_equal(rec["output"],
                                  refs.get(rec["tidx"], rec["seed"])):
                incorrect += 1
        else:
            failed += 1
            failed_by_error[rec["error"]] = \
                failed_by_error.get(rec["error"], 0) + 1
    # Span from first submission to last completion — excludes pool boot
    # (paid before the trace starts), which the stdio wall-clock includes.
    t_done = [r["t_done"] for r in raw["records"] if "t_done" in r]
    elapsed = (max(t_done) - min(r["t_submit"] for r in raw["records"])
               if t_done else raw["elapsed_s"])
    stats = raw["stats"] or {}
    return {
        "requests": len(trace),
        "ok": ok,
        "failed": failed,
        "incorrect": incorrect,
        "failed_by_error": failed_by_error,
        "killed_workers": raw["killed_workers"],
        "pool_restarts": stats.get("pool", {}).get("restarts"),
        "elapsed_s": elapsed,
        "offered_rps": rate if rate > 0 else None,
        "achieved_rps": ok / elapsed if elapsed > 0 else None,
        # a burst submits everything at t0: the completion rate IS the
        # saturation throughput of the serving layer for this mix
        "saturation_rps": (ok / elapsed
                           if rate == 0 and elapsed > 0 else None),
        "latency_s": _percentiles(latencies),
        # shm transport only: cross-request hit rate of the scene store
        # (the mixed trace cycles a handful of scenes, so steady state
        # should be nearly all hits)
        "scene_hit_rate": (stats.get("scene_store") or {}).get("hit_rate"),
        "server_stats": stats,
    }


def render(results: dict) -> str:
    lat = results["latency_s"]
    lines = [
        f"{results['requests']} requests "
        f"({results['ok']} ok, {results['failed']} failed, "
        f"{results['incorrect']} incorrect) in "
        f"{results['elapsed_s']:.2f}s",
    ]
    if lat["p50"] is not None:
        lines.append(
            f"  latency p50/p90/p99: {lat['p50'] * 1e3:7.1f} / "
            f"{lat['p90'] * 1e3:7.1f} / {lat['p99'] * 1e3:7.1f} ms "
            f"(mean {lat['mean'] * 1e3:.1f}, max {lat['max'] * 1e3:.1f})")
    if results["offered_rps"]:
        lines.append(f"  offered {results['offered_rps']:.1f} req/s, "
                     f"achieved {results['achieved_rps']:.1f} req/s")
    elif results["saturation_rps"]:
        lines.append(f"  saturation throughput: "
                     f"{results['saturation_rps']:.1f} req/s")
    if results["scene_hit_rate"] is not None:
        lines.append(f"  scene-cache hit rate: "
                     f"{results['scene_hit_rate'] * 100:.1f}%")
    if results["killed_workers"]:
        lines.append(f"  worker deaths injected: "
                     f"{results['killed_workers']}, pool restarts: "
                     f"{results['pool_restarts']}, failed with: "
                     f"{results['failed_by_error']}")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=None,
                        help="trace length (default 24; >= 1000 in soak)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="open-loop arrival rate in req/s; 0 submits "
                             "one burst (saturation measurement)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="resident worker processes")
    parser.add_argument("--front-end", choices=["client", "stdio"],
                        default="client", dest="front_end",
                        help="drive ServingClient (default) or the "
                             "stdin/JSON serve_stdio loop")
    parser.add_argument("--transport", choices=["shm", "copy"],
                        default="shm",
                        help="scene transport: 'shm' ships each scene "
                             "once through the shared-memory scene store "
                             "(repeated scenes are zero-byte hits), "
                             "'copy' pickles tile slices per request")
    parser.add_argument("--small", type=int, default=8,
                        help="small-scene edge length in pixels")
    parser.add_argument("--big", type=int, default=16,
                        help="big-scene edge length in pixels")
    parser.add_argument("--length", type=int, default=32,
                        help="SC stream length N")
    parser.add_argument("--tile", type=int, default=4,
                        help="tile edge length")
    parser.add_argument("--soak", action="store_true",
                        help="sustained-load acceptance: >= 1000 requests "
                             "with a worker death injected mid-stream")
    parser.add_argument("--kill-worker", action="store_true",
                        dest="kill_worker",
                        help="SIGKILL one resident worker at the trace "
                             "midpoint (client front-end only; implied "
                             "by --soak)")
    parser.add_argument("--json", type=pathlib.Path, default=BENCH_JSON,
                        help="bench-record output path "
                             "(default: BENCH_serve.json at the repo root)")
    args = parser.parse_args()

    requests = args.requests
    if requests is None:
        requests = 1000 if args.soak else 24
    if args.soak:
        requests = max(requests, 1000)
    kill_worker = args.kill_worker or args.soak
    if kill_worker and args.front_end == "stdio":
        parser.error("--kill-worker/--soak needs pool access and is "
                     "client-front-end only")

    templates = build_templates(args.small, args.big, args.length,
                                args.tile)
    trace = build_trace(requests, templates)
    if args.front_end == "client":
        raw = run_client(trace, templates, args.jobs, args.rate,
                         kill_worker, args.transport)
    else:
        raw = run_stdio(trace, templates, args.jobs, args.rate,
                        args.transport)
    results = summarise(raw, trace, templates, args.rate)
    print(render(results))

    config = {"front_end": args.front_end, "transport": args.transport,
              "requests": requests,
              "rate": args.rate, "jobs": args.jobs, "small": args.small,
              "big": args.big, "length": args.length, "tile": args.tile,
              "soak": args.soak, "kill_worker": kill_worker,
              "templates": [t["name"] for t in templates]}
    write_bench_record(args.json, "serve", config, results,
                       run_config=RunConfig.fast(transport=args.transport,
                                                 tile=args.tile,
                                                 jobs=args.jobs))
    print(f"bench record -> {args.json}")

    if results["incorrect"]:
        print(f"FAIL: {results['incorrect']} response(s) not bit-identical "
              f"to run_tiled(jobs=1)")
        return 1
    if kill_worker:
        unexpected = {k: v for k, v in results["failed_by_error"].items()
                      if k != "BrokenProcessPool"}
        if unexpected:
            print(f"FAIL: unexpected failure kinds under worker death: "
                  f"{unexpected}")
            return 1
        if not results["pool_restarts"]:
            print("FAIL: worker death injected but the pool never "
                  "restarted")
            return 1
    elif results["failed"]:
        print(f"FAIL: {results['failed']} request(s) failed with no fault "
              f"injected: {results['failed_by_error']}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
