"""Fig. 4: normalized energy savings of the SC designs vs binary CIM."""

from conftest import emit

from repro.analysis.experiments import fig4_energy, summarize_figures, fig5_throughput
from repro.analysis.tables import render_table

LENGTHS = (32, 64, 128, 256)


def test_fig4(benchmark):
    result = benchmark.pedantic(fig4_energy, rounds=3, iterations=1)
    rows = []
    for app, designs in result.items():
        for design, series in designs.items():
            rows.append([app, design] + [series[n] for n in LENGTHS])
    emit("Fig. 4 -- normalized energy savings vs binary CIM (bars > 1 save "
         "energy)",
         render_table(["application", "design"] + [f"N={n}" for n in LENGTHS],
                      rows, precision=2))
    summary = summarize_figures(result, fig5_throughput())
    emit("Headline energy factor",
         f"ReRAM SC vs binary CIM (geomean): "
         f"{summary['reram_energy_savings_vs_bincim']:.2f}x "
         f"(paper: 2.8x)\n"
         f"ReRAM SC vs CMOS SC (geomean):    "
         f"{summary['reram_vs_cmos_energy']:.2f}x (paper: 1.15x)")
    # Shape guards.
    for app in result:
        series = result[app]["ReRAM SC"]
        assert series[32] > series[256]            # savings shrink with N
        assert result[app]["ReRAM SC"][32] > result[app]["CMOS SC"][32]
    assert (result["compositing"]["CMOS SC"][256]
            > result["compositing"]["ReRAM SC"][256])   # crossover at 256
