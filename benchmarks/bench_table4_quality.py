"""Table IV: SSIM/PSNR of the applications, fault-free vs under CIM faults."""

from conftest import emit

from repro.analysis.experiments import (
    quality_drop_summary,
    table4_quality,
)
from repro.analysis.tables import render_table

LENGTHS = (32, 64, 128, 256)
APPS = ("compositing", "interpolation", "matting")


def _run():
    return table4_quality(lengths=LENGTHS, runs=2, size=32, seed=0)


def test_table4(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for label, apps in result.items():
        rows.append([label] + [f"{apps[a][0]:.1f}/{apps[a][1]:.1f}"
                               for a in APPS])
    emit("Table IV -- SSIM(%)/PSNR(dB), ideal vs faulty (paper Table IV)",
         render_table(["design"] + list(APPS), rows))
    drops = quality_drop_summary(result)
    emit("Sec. IV-C -- average SSIM drop under faults "
         "(paper: ~5% for SC vs ~47% for binary CIM)",
         f"SC:         {drops['sc_avg_ssim_drop_pct']:.1f}%\n"
         f"Binary CIM: {drops['bincim_avg_ssim_drop_pct']:.1f}%")
    # The paper's headline robustness claim.
    assert drops["sc_avg_ssim_drop_pct"] < 15
    assert drops["bincim_avg_ssim_drop_pct"] > 25
    # Matting under faults: binary CIM collapses, SC survives.
    assert result["Binary CIM [faulty]"]["matting"][0] < 70
    assert result["SC N=256 [faulty]"]["matting"][0] > 85
