"""Table II: MSE(%) of SC arithmetic operations per RNG source (M = 8)."""

from conftest import emit

from repro.analysis.experiments import TABLE2_OPS, table2_ops_mse
from repro.analysis.tables import render_table

LENGTHS = (32, 64, 128, 256, 512)
SOURCES = ("imsng", "software", "lfsr", "sobol")


def _run():
    return table2_ops_mse(lengths=LENGTHS, samples=2_000, seed=0)


def test_table2(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for op in TABLE2_OPS:
        for src in SOURCES:
            rows.append([op, src] + [result[op][src][n] for n in LENGTHS])
    emit("Table II -- MSE(%) of SC operations (paper Table II)",
         render_table(["operation", "source"] + [f"N={n}" for n in LENGTHS],
                      rows, precision=4))
    # Reproduction guards.
    assert result["division"]["lfsr"][512] > result["division"]["sobol"][512]
    assert (result["multiplication"]["software"][512]
            < result["multiplication"]["software"][32])
    # Approximate addition's OR error floor does not vanish with N.
    assert result["approx_addition"]["software"][512] > 0.3
