"""Ablation: read-based IMSNG vs SCRIMP-style write-based SBS generation.

The paper's critique of prior in-memory SC (Sec. II-C): generating stream
bits with probabilistic *write* pulses "is not only extremely slow but also
affects write endurance".  This bench quantifies both axes.
"""

from conftest import emit

from repro.analysis.experiments import write_based_sng_comparison
from repro.analysis.tables import render_table
from repro.reram.trng import ReRamTrng, WriteTrng
from repro.energy.params import DEFAULT_RERAM_COSTS


def test_write_vs_read_sng(benchmark):
    result = benchmark.pedantic(write_based_sng_comparison, rounds=3,
                                iterations=1)
    rows = [[k, v["latency_ns"], v["energy_nj"], int(v["cell_writes"])]
            for k, v in result.items()]
    emit("Ablation -- SBS generation: IMSNG vs write-based (256-bit stream)",
         render_table(["design", "latency (ns)", "energy (nJ)",
                       "cell writes"], rows))
    imsng = result["IMSNG-opt (read-based)"]
    scrimp = result["SCRIMP-style (per 8-bit operand)"]
    # The endurance argument: an order of magnitude fewer cell writes.
    assert imsng["cell_writes"] < scrimp["cell_writes"] / 10
    # And the per-operand latency argument.
    assert imsng["latency_ns"] < scrimp["latency_ns"]


def _trng_bit_costs():
    c = DEFAULT_RERAM_COSTS
    read = ReRamTrng().cost_per_bit(c.t_sense, c.e_sense_cell)
    write = WriteTrng().cost_per_bit(c.t_write, c.e_write_cell,
                                     c.t_sense, c.e_sense_cell)
    return {"read-noise TRNG": read, "write TRNG": write}


def test_trng_bit_cost(benchmark):
    result = benchmark.pedantic(_trng_bit_costs, rounds=3, iterations=1)
    rows = [[k, v.latency_s * 1e9, v.energy_j * 1e15, v.cell_writes]
            for k, v in result.items()]
    emit("Ablation -- entropy-source cost per random bit",
         render_table(["source", "latency (ns)", "energy (fJ)",
                       "cell writes"], rows))
    assert (result["read-noise TRNG"].latency_s
            < result["write TRNG"].latency_s / 5)
    assert result["read-noise TRNG"].cell_writes == 0.0
