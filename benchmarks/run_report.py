"""Reproduction-report driver behind ``make bench``.

``make bench`` used to run ``pytest benchmarks/ --benchmark-only``, but the
benchmark modules are named ``bench_*.py`` — outside pytest's default
``test_*.py`` collection pattern — so pytest collected nothing, exited 5
("no tests ran") and never produced the report.  This driver invokes the
pieces directly:

1. ``python -m repro all`` — ASCII renderings of every table/figure;
2. each standalone benchmark script at acceptance scale (their built-in
   speedup guards make this double as the performance acceptance run).

Everything is streamed to stdout and appended to
``reproduction_report.txt`` at the repo root; the exit code is non-zero
if any step fails.  ``--quick`` shrinks every workload to smoke size
(seconds, guards relaxed) for CI-style sanity runs; full scale is the
default.  The pytest-benchmark variants of the table/figure benchmarks
remain runnable via ``pytest benchmarks/ --benchmark-only -s``
(``benchmarks/pytest.ini`` restores their collection).

Besides the text report, every benchmark step writes a machine-readable
``BENCH_*.json`` record at the repo root (see :mod:`repro.report`) —
the perf trajectory re-anchors read.  After the steps finish the driver
validates every ``BENCH_*.json`` it finds against the record schema and
**fails loudly** on a malformed one, in quick and full mode alike.
"""

import argparse
import os
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH = ROOT / "benchmarks"
REPORT = ROOT / "reproduction_report.txt"

sys.path.insert(0, str(ROOT / "src"))   # repro.report, PYTHONPATH or not

from repro.report import load_bench_record   # noqa: E402


def _steps(quick: bool):
    py = sys.executable
    if quick:
        # Same steps as the full run, shrunk to smoke size (flags
        # mirror make bench-smoke / serve-smoke) — quick mode trades
        # guard strength for speed, never coverage.
        return [
            ("Tables and figures (quick reproduction)",
             [py, "-m", "repro", "all", "--samples", "1000", "--runs", "1",
              "--size", "24"]),
            ("Backend word chain (smoke)",
             [py, str(BENCH / "bench_backend.py"), "--length", "131072",
              "--batch", "128", "--repeats", "2"]),
            ("Analog S-to-B conversion (smoke)",
             [py, str(BENCH / "bench_stob.py"), "--streams", "8192",
              "--length", "256", "--repeats", "2"]),
            ("Application pipelines (smoke)",
             [py, str(BENCH / "bench_apps.py"), "--length", "64",
              "--size", "24", "--tile", "12", "--jobs", "2",
              "--repeats", "1", "--apps", "matting"]),
            ("Fault-mask sampling (smoke)",
             [py, str(BENCH / "bench_faults.py"), "--length", "64",
              "--size", "16", "--repeats", "1", "--min-speedup", "2"]),
            ("Serving layer (smoke)",
             [py, str(BENCH / "bench_serve.py"), "--requests", "4",
              "--size", "12", "--length", "32", "--jobs", "2",
              "--min-speedup", "0"]),
            ("Serving sustained load (smoke burst)",
             [py, str(BENCH / "loadgen.py"), "--requests", "24",
              "--jobs", "2", "--small", "8", "--big", "12",
              "--length", "32"]),
            ("Scene transport (smoke)",
             [py, str(BENCH / "bench_transport.py"), "--size", "256",
              "--tile", "128", "--requests", "8", "--jobs", "2",
              "--min-speedup", "0"]),
        ]
    return [
        ("Tables and figures (CLI reproduction)",
         [py, "-m", "repro", "all", "--samples", "5000", "--runs", "2",
          "--size", "32"]),
        ("Backend word chain (packed vs unpacked)",
         [py, str(BENCH / "bench_backend.py")]),
        ("Analog S-to-B conversion (column vs per-bit)",
         [py, str(BENCH / "bench_stob.py")]),
        ("Application pipelines (packed/sharded vs seed)",
         [py, str(BENCH / "bench_apps.py")]),
        ("Fault-mask sampling (sparse vs dense)",
         [py, str(BENCH / "bench_faults.py")]),
        ("Serving layer (resident pool vs cold)",
         [py, str(BENCH / "bench_serve.py")]),
        ("Serving soak (>= 1000 requests, worker death injected)",
         [py, str(BENCH / "loadgen.py"), "--soak"]),
        ("Scene transport (shm scene store vs per-request copy)",
         [py, str(BENCH / "bench_transport.py")]),
    ]


def _banner(title: str) -> str:
    return "\n" + "=" * 72 + "\n" + title + "\n" + "=" * 72 + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke-size workloads (seconds, relaxed "
                             "guards) instead of acceptance scale")
    parser.add_argument("--fresh", action="store_true",
                        help="truncate reproduction_report.txt first "
                             "(default: append)")
    args = parser.parse_args()

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)

    if args.fresh:
        REPORT.write_text("")
    failures = []
    for title, cmd in _steps(args.quick):
        block = _banner(title)
        print(block, end="", flush=True)
        t0 = time.perf_counter()
        # Stream line by line: full-scale steps run for minutes, and a
        # silent terminal would be indistinguishable from a hang (the
        # report also keeps whatever a Ctrl-C'd step printed so far).
        with REPORT.open("a") as fh:
            fh.write(block)
            proc = subprocess.Popen(cmd, cwd=ROOT, env=env, text=True,
                                    stdout=subprocess.PIPE,
                                    stderr=subprocess.STDOUT)
            for line in proc.stdout:
                print(line, end="", flush=True)
                fh.write(line)
            rc = proc.wait()
            elapsed = time.perf_counter() - t0
            tail = f"\n[{'ok' if rc == 0 else 'FAIL'}"\
                   f" rc={rc} in {elapsed:.1f}s]\n"
            print(tail, end="")
            fh.write(tail)
        if rc != 0:
            failures.append(title)

    # Machine-readable trajectory: every BENCH_*.json at the root must be
    # schema-valid — a malformed record poisons every future re-anchor
    # that reads the trajectory, so it fails the whole run.  Two records
    # reporting different resolved run configs under the same benchmark
    # name would make speedups incomparable across the trajectory, so
    # that fails the run too.
    records = sorted(ROOT.glob("BENCH_*.json"))
    configs_by_bench = {}
    for path in records:
        try:
            record = load_bench_record(path)
        except ValueError as exc:
            print(f"MALFORMED bench record {path.name}: {exc}")
            failures.append(f"bench record {path.name}")
            continue
        print(f"bench record ok: {path.name} "
              f"(bench={record['bench']}, utc={record['utc']})")
        run_config = record.get("run_config")
        if run_config is None:
            continue
        seen = configs_by_bench.setdefault(record["bench"],
                                           (path.name, run_config))
        if seen[1] != run_config:
            print(f"CONFLICTING bench records for "
                  f"bench={record['bench']!r}: {seen[0]} and "
                  f"{path.name} report different resolved run "
                  f"configs:\n  {seen[0]}: {seen[1]}\n"
                  f"  {path.name}: {run_config}")
            failures.append(f"bench record {path.name} (run_config "
                            f"conflicts with {seen[0]})")
    if not records:
        print("MALFORMED bench trajectory: no BENCH_*.json written")
        failures.append("bench records missing")

    if failures:
        print(f"\n{len(failures)} step(s) failed: {', '.join(failures)}")
        return 1
    print(f"\nreport written to {REPORT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
