"""Ablation: S-to-B conversion — ideal counter vs reference-column + ADC."""

import numpy as np
from conftest import emit

from repro.analysis.tables import render_table
from repro.core.bitstream import Bitstream
from repro.core.conversion import CounterConverter
from repro.imsc.stob import InMemoryStoB
from repro.reram.adc import AdcParams


def _compare_converters():
    gen = np.random.default_rng(0)
    p = gen.random(2_000)
    streams = Bitstream.bernoulli(p, 256, rng=1)
    truth = streams.value()
    out = {}
    out["CMOS counter (exact)"] = float(np.mean(
        (CounterConverter().convert(streams) - truth) ** 2)) * 100
    out["ref column + ADC"] = float(np.mean(
        (InMemoryStoB(rng=2).convert(streams) - truth) ** 2)) * 100
    out["ref column + ADC (ideal cells)"] = float(np.mean(
        (InMemoryStoB(ideal_cells=True, rng=2).convert(streams) - truth) ** 2
    )) * 100
    return out


def test_stob_accuracy(benchmark):
    result = benchmark.pedantic(_compare_converters, rounds=1, iterations=1)
    emit("Ablation -- S-to-B conversion error (MSE%, N=256)",
         render_table(["converter", "MSE (%)"],
                      [[k, v] for k, v in result.items()], precision=5))
    # The counter is exact; the analog path adds bounded error.
    assert result["CMOS counter (exact)"] == 0.0
    assert result["ref column + ADC"] < 0.3
    assert (result["ref column + ADC (ideal cells)"]
            <= result["ref column + ADC"] + 1e-9)


def _adc_resolution_sweep():
    gen = np.random.default_rng(3)
    p = gen.random(1_000)
    streams = Bitstream.bernoulli(p, 256, rng=4)
    truth = streams.value()
    out = {}
    for bits in (4, 6, 8, 10):
        stob = InMemoryStoB(adc_params=AdcParams(bits=bits), rng=5)
        out[bits] = float(np.mean((stob.convert(streams) - truth) ** 2)) * 100
    return out


def test_adc_resolution(benchmark):
    result = benchmark.pedantic(_adc_resolution_sweep, rounds=1, iterations=1)
    emit("Ablation -- ADC resolution vs recovery error (MSE%, N=256)",
         render_table(["ADC bits", "MSE (%)"],
                      [[b, v] for b, v in result.items()], precision=5))
    assert result[4] > result[8]
