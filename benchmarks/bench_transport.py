"""Scene-transport guard: shared-memory scene store vs per-request copy.

Workload: a client streams ``M`` requests over the **same big scene** —
the repeated-scene shape the shm transport exists for — through one
resident :class:`repro.serve.ServingClient`, once per transport:

* ``copy`` — every request re-ships the scene: ``build_tile_tasks``
  copies each tile slice out of the input arrays and pickles it through
  the pool's task pipe (the pre-transport behaviour).
* ``shm``  — the scene is published once into the content-addressed
  :class:`repro.serve.SceneStore` via a ``put_scene`` handle; every
  request's tile tasks carry only ``(digest, window)`` references and
  the workers read their windows straight out of shared memory.

The kernel is deliberately **transport-bound**: a registered blend over
four full-scene input arrays with trivial arithmetic, so the measured
ratio isolates scene shipping instead of SC compute (the SC kernels cost
~100 ms/MiB of scene vs ~1 ms/MiB of transport, which would flatten any
transport ratio to ~1x regardless of how many bytes move).

Every response under **both** transports is asserted bit-identical to
the ``run_tiled(jobs=1)`` batch oracle before timing is reported.  The
acceptance guard requires shm to beat copy by ``--min-speedup`` (default
1.5x) on served throughput.

The registered bench kernel only reaches pool workers under the ``fork``
start method (workers inherit the parent's kernel registry); on
platforms without fork the benchmark reports SKIP and exits 0.

Run standalone (e.g. the Makefile smoke/acceptance targets)::

    PYTHONPATH=src python benchmarks/bench_transport.py
    PYTHONPATH=src python benchmarks/bench_transport.py --size 256 --requests 8
"""

import argparse
import multiprocessing
import pathlib
import time

import numpy as np

from repro.apps.executor import KERNELS, run_tiled
from repro.apps.images import natural_scene
from repro.config import RunConfig
from repro.core.backend import use_backend
from repro.report import write_bench_record
from repro.serve import ServingClient

ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_SIZE = 512
FULL_TILE = 256
FULL_LENGTH = 8
FULL_REQUESTS = 16
MIN_SPEEDUP = 1.5


def bench_blend(engine, base, overlay, weight, detail, length):
    """Transport-bound kernel: four full-scene inputs, trivial compute."""
    return base * weight + overlay * (1.0 - weight) + 0.01 * detail


KERNELS.setdefault("bench_blend", bench_blend)


def build_scene(size: int, seed: int = 0) -> dict:
    """Four same-shape float arrays — the scene payload being shipped."""
    rng = np.random.default_rng(seed)
    img = natural_scene(size, size, rng)
    return {
        "base": img,
        "overlay": img[::-1].copy(),
        "weight": np.clip(img * 0.5 + 0.25, 0.0, 1.0),
        "detail": rng.random((size, size)),
    }


def compare_transports(size: int = FULL_SIZE, tile: int = FULL_TILE,
                       length: int = FULL_LENGTH,
                       requests: int = FULL_REQUESTS, jobs: int = 2,
                       backend: str = "packed", seed: int = 0) -> dict:
    """Served req/s per transport plus the shm scene-cache counters."""
    mp_context = multiprocessing.get_context("fork")
    with use_backend(backend):
        inputs = build_scene(size, seed)
        kwargs = dict(tile=tile, seed=seed)
        oracle, _ = run_tiled("bench_blend", inputs, length, jobs=1,
                              **kwargs)

        rps = {}
        scene_cache = None
        for transport in ("copy", "shm"):
            with ServingClient(jobs=jobs, transport=transport,
                               mp_context=mp_context,
                               backend=backend) as client:
                handle = (client.put_scene(inputs) if transport == "shm"
                          else None)
                payload = None if handle else inputs
                # one warm request: pool spin-up and the scene's single
                # shm publication are both excluded from the timed wave
                client.submit("bench_blend", payload, length, scene=handle,
                              **kwargs).result()
                t0 = time.perf_counter()
                futures = [client.submit("bench_blend", payload, length,
                                         scene=handle, **kwargs)
                           for _ in range(requests)]
                outputs = [f.result()[0] for f in futures]
                rps[transport] = requests / (time.perf_counter() - t0)
                if transport == "shm":
                    scene_cache = client.stats().get("scene_store")
                for out in outputs:
                    np.testing.assert_array_equal(out, oracle)

    scene_bytes = sum(np.ascontiguousarray(a).nbytes
                      for a in inputs.values())
    return {
        "size": size, "tile": tile, "length": length,
        "requests": requests, "jobs": jobs, "backend": backend,
        "scene_bytes": scene_bytes,
        "rps": rps,
        "speedup": rps["shm"] / rps["copy"],
        "scene_cache": scene_cache,
    }


def render(result: dict) -> str:
    cache = result["scene_cache"] or {}
    lines = [
        f"{result['requests']} requests over one "
        f"{result['size']}x{result['size']} scene "
        f"({result['scene_bytes'] / 2**20:.1f} MiB), "
        f"tile={result['tile']}, N={result['length']}, "
        f"jobs={result['jobs']}, backend={result['backend']} "
        f"(outputs asserted bit-identical to run_tiled(jobs=1) under "
        f"both transports)",
        f"  copy: {result['rps']['copy']:8.1f} req/s",
        f"   shm: {result['rps']['shm']:8.1f} req/s  "
        f"({result['speedup']:4.2f}x vs copy)",
        f"  scene cache: {cache.get('hits')} hits / "
        f"{cache.get('misses')} misses, "
        f"{cache.get('bytes_shipped')} scene bytes shipped total",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=FULL_SIZE,
                        help="scene edge length in pixels")
    parser.add_argument("--tile", type=int, default=FULL_TILE,
                        help="tile edge length")
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits (kept small: the "
                             "guard isolates transport, not SC compute)")
    parser.add_argument("--requests", type=int, default=FULL_REQUESTS,
                        help="timed requests over the same scene")
    parser.add_argument("--jobs", type=int, default=2,
                        help="resident worker processes")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="required shm-vs-copy served throughput ratio")
    args = parser.parse_args()

    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: bench_transport needs the fork start method (the "
              "registered bench kernel must be inherited by the workers)")
        return 0

    # Both execution backends: bit-identity must hold under each, and
    # the transport ratio should be backend-independent (the bench
    # kernel is transport-bound by design).
    results = {}
    for backend in ("unpacked", "packed"):
        result = compare_transports(args.size, args.tile, args.length,
                                    args.requests, args.jobs, backend)
        results[backend] = result
        print(render(result))
    path = ROOT / "BENCH_transport.json"
    write_bench_record(path, "transport",
                       config={"size": args.size, "tile": args.tile,
                               "length": args.length,
                               "requests": args.requests,
                               "jobs": args.jobs,
                               "min_speedup": args.min_speedup},
                       results={backend: {
                           "rps": r["rps"],
                           "speedup": r["speedup"],
                           "scene_bytes": r["scene_bytes"],
                           "scene_cache": r["scene_cache"]}
                           for backend, r in results.items()},
                       # headline side of the comparison: shm transport
                       run_config=RunConfig.fast(transport="shm",
                                                 tile=args.tile,
                                                 jobs=args.jobs))
    print(f"bench record -> {path}")
    failed = {backend: r["speedup"] for backend, r in results.items()
              if r["speedup"] < args.min_speedup}
    if failed:
        for backend, speedup in failed.items():
            print(f"FAIL: shm-vs-copy speedup {speedup:.2f}x "
                  f"({backend} backend) < required "
                  f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
