"""Ablation: fault-rate sensitivity — device spread -> error rate -> quality."""

from conftest import emit

from repro.analysis.tables import render_table
from repro.apps import run_app
from repro.reram.device import DeviceParams
from repro.reram.faults import DEFAULT_FAULT_RATES, derive_fault_rates


def _derivation_sweep():
    out = {}
    for hrs_sigma in (0.35, 0.45, 0.55, 0.65):
        params = DeviceParams(hrs_sigma=hrs_sigma)
        rates = derive_fault_rates(params, trials_per_case=8_192, seed=1)
        out[hrs_sigma] = rates
    return out


def test_device_spread_to_fault_rate(benchmark):
    result = benchmark.pedantic(_derivation_sweep, rounds=1, iterations=1)
    rows = [[s, r.and2, r.or2, r.xor2, r.maj3]
            for s, r in result.items()]
    emit("Ablation -- HRS spread vs scouting-logic error probability",
         render_table(["HRS sigma", "AND", "OR", "XOR", "MAJ3"], rows,
                      precision=4))
    sigmas = sorted(result)
    assert result[sigmas[-1]].mean() > result[sigmas[0]].mean()


def _quality_vs_rate():
    out = {}
    for factor in (1, 4, 16):
        rates = DEFAULT_FAULT_RATES.scaled(factor)
        r = run_app("compositing", "sc", length=128, faulty=True,
                    fault_rates=rates, size=32, seed=0)
        out[factor] = (r.ssim_pct, r.psnr_db)
    return out


def test_quality_degrades_gracefully(benchmark):
    result = benchmark.pedantic(_quality_vs_rate, rounds=1, iterations=1)
    rows = [[f, s, p] for f, (s, p) in result.items()]
    emit("Ablation -- SC compositing quality vs fault-rate scaling "
         "(graceful degradation)",
         render_table(["rate x", "SSIM (%)", "PSNR (dB)"], rows,
                      precision=1))
    # SC degrades smoothly: even 16x the derived rate keeps a usable image.
    assert result[16][0] > 40
    assert result[1][0] > result[16][0]
