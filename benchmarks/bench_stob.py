"""Batched (column) vs per-bit analog S-to-B conversion throughput.

Workload: one ``InMemoryStoB.convert`` over a ``2**18-stream x 512-bit``
batch under the packed backend — the conversion step that dominated
fault-free packed application runs after PR 2.  ``cell_model='per-bit'``
samples a lognormal conductance for every stream bit (the conformance
oracle); ``cell_model='column'`` computes the reference-column current
from the packed popcount with cached per-column draws and a
variance-matched noise term, so the payload never unpacks.

Run as a benchmark (appends to ``reproduction_report.txt``)::

    pytest benchmarks/bench_stob.py --benchmark-only -s

or standalone, e.g. for the Makefile smoke target::

    PYTHONPATH=src python benchmarks/bench_stob.py --streams 8192 --length 256

The standalone run enforces ``--min-speedup`` (default 5x, the acceptance
floor; the full-scale ratio is orders of magnitude higher).
"""

import argparse
import pathlib
import time

import numpy as np

from repro.config import RunConfig
from repro.core.backend import use_backend
from repro.core.bitstream import Bitstream
from repro.imsc.stob import CELL_MODELS, InMemoryStoB
from repro.report import write_bench_record

ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_STREAMS = 1 << 18
FULL_LENGTH = 512
MIN_SPEEDUP = 5.0


def compare_cell_models(streams: int = FULL_STREAMS,
                        length: int = FULL_LENGTH, repeats: int = 2,
                        seed: int = 0) -> dict:
    """Best-of-``repeats`` conversion wall time per cell model + speedup."""
    result = {"streams": streams, "length": length, "models": {}}
    with use_backend("packed"):
        p = np.random.default_rng(seed).random(streams)
        batch = Bitstream.bernoulli(p, length, rng=seed + 1)
        truth = batch.value()
        for model in CELL_MODELS:
            stob = InMemoryStoB(rng=seed + 2, cell_model=model)
            out = stob.convert(batch)   # warm-up: ADC + column caches
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                stob.convert(batch)
                best = min(best, time.perf_counter() - t0)
            result["models"][model] = {
                "seconds": best,
                "streams_per_s": streams / best,
                "mse_pct": float(np.mean((out - truth) ** 2)) * 100.0,
            }
    result["speedup"] = (result["models"]["per-bit"]["seconds"]
                         / result["models"]["column"]["seconds"])
    return result


def render(result: dict) -> str:
    lines = [
        f"S-to-B conversion, {result['streams']:,} streams x "
        f"{result['length']} bits (packed backend)",
    ]
    for model, row in result["models"].items():
        lines.append(f"  {model:>8}: {row['seconds'] * 1e3:9.1f} ms/conv"
                     f"   {row['streams_per_s'] / 1e6:8.2f} Mstream/s"
                     f"   MSE {row['mse_pct']:.4f}%")
    lines.append(f"  column speedup: {result['speedup']:.1f}x")
    return "\n".join(lines)


def test_stob_throughput(benchmark):
    from conftest import emit

    result = benchmark.pedantic(compare_cell_models, rounds=1, iterations=1)
    emit("S-to-B throughput -- batched column model vs per-bit sampling",
         render(result))
    # Acceptance guard: the batched conversion must deliver >= 5x the
    # per-bit oracle (the observed full-scale ratio is far higher), while
    # recovering values with comparable accuracy.
    assert result["speedup"] >= MIN_SPEEDUP
    per_bit = result["models"]["per-bit"]["mse_pct"]
    column = result["models"]["column"]["mse_pct"]
    assert column <= per_bit * 1.2 + 1e-3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=FULL_STREAMS,
                        help="number of parallel streams to convert")
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed conversions per model (best is kept)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="fail unless column/per-bit speedup reaches "
                             "this factor (0 disables the guard)")
    args = parser.parse_args()
    result = compare_cell_models(args.streams, args.length, args.repeats)
    print(render(result))
    path = ROOT / "BENCH_stob.json"
    write_bench_record(path, "stob",
                       config={"streams": args.streams,
                               "length": args.length,
                               "repeats": args.repeats,
                               "min_speedup": args.min_speedup},
                       results={"speedup": result["speedup"],
                                "models": result["models"]},
                       # headline side of the comparison: column S-to-B
                       run_config=RunConfig.fast(cell_model="column"))
    print(f"bench record -> {path}")
    if args.min_speedup and result["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {result['speedup']:.1f}x below the "
              f"{args.min_speedup:.1f}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
