"""Serving-layer amortisation: resident worker pool vs per-request pools.

Workload: ``M`` back-to-back small-tile requests — the request-serving
shape the serve subsystem exists for — executed three ways:

* ``cold``     — a fresh ``run_tiled(jobs=N)`` per request: every request
  pays worker-pool startup, the pre-serving behaviour.
* ``resident`` — the same ``run_tiled`` calls over one long-lived
  :class:`repro.serve.WorkerPool` (``pool=``): startup is paid once.
* ``served``   — all requests in flight at once through
  :class:`repro.serve.ServingClient`, tiles interleaved fair round-robin
  on the shared workers.

All three paths are asserted bit-identical per request before timing is
reported.  The acceptance guard requires the resident pool to beat the
cold path by ``--min-speedup`` (default 1.5x) — pool-startup amortisation
is the whole point of the serving layer.

Run standalone (e.g. the Makefile smoke/acceptance targets)::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --requests 4 --size 12
"""

import argparse
import pathlib
import time

import numpy as np

from repro.apps.executor import run_tiled
from repro.apps.filters import gamma_correct_inputs
from repro.config import RunConfig
from repro.apps.images import natural_scene
from repro.core.backend import use_backend
from repro.report import write_bench_record
from repro.serve import ServingClient, WorkerPool, default_mp_context

ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_SIZE = 16
FULL_TILE = 4
FULL_LENGTH = 64
FULL_REQUESTS = 8
MIN_SPEEDUP = 1.5


def compare_serving(size: int = FULL_SIZE, tile: int = FULL_TILE,
                    length: int = FULL_LENGTH, requests: int = FULL_REQUESTS,
                    jobs: int = 4, backend: str = "packed",
                    seed: int = 0) -> dict:
    """Wall-clock of the three execution shapes plus speedups vs ``cold``."""
    with use_backend(backend):
        image = natural_scene(size, size, np.random.default_rng(seed))
        inputs = gamma_correct_inputs(image)
        kwargs = dict(tile=tile, kernel_kwargs={"gamma": 0.5},
                      engine_kwargs={"cell_model": "column"})

        t0 = time.perf_counter()
        cold = [run_tiled("gamma_correct", inputs, length, jobs=jobs,
                          seed=seed + m, **kwargs)[0]
                for m in range(requests)]
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        with WorkerPool(jobs) as pool:
            resident = [run_tiled("gamma_correct", inputs, length,
                                  seed=seed + m, pool=pool, **kwargs)[0]
                        for m in range(requests)]
        t_resident = time.perf_counter() - t0

        t0 = time.perf_counter()
        # same start method as the cold/resident shapes (the client's own
        # default is forkserver) so only pool residency varies
        with ServingClient(jobs=jobs,
                           mp_context=default_mp_context()) as client:
            futures = [client.submit("gamma_correct", inputs, length,
                                     seed=seed + m, **kwargs)
                       for m in range(requests)]
            served = [f.result()[0] for f in futures]
        t_served = time.perf_counter() - t0

    # Determinism sanity: all three shapes must agree bit for bit.
    for m in range(requests):
        np.testing.assert_array_equal(cold[m], resident[m])
        np.testing.assert_array_equal(cold[m], served[m])

    seconds = {"cold": t_cold, "resident": t_resident, "served": t_served}
    return {
        "size": size, "tile": tile, "length": length,
        "requests": requests, "jobs": jobs, "backend": backend,
        "seconds": seconds,
        "speedup": {k: t_cold / v for k, v in seconds.items()},
    }


def render(result: dict) -> str:
    lines = [
        f"{result['requests']} back-to-back requests, "
        f"scene {result['size']}x{result['size']}, tile={result['tile']}, "
        f"N={result['length']}, jobs={result['jobs']}, "
        f"backend={result['backend']} (outputs asserted bit-identical)",
    ]
    for name in ("cold", "resident", "served"):
        lines.append(f"  {name:>9}: {result['seconds'][name] * 1e3:8.1f} ms"
                     f"  ({result['speedup'][name]:4.2f}x vs cold)")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=FULL_SIZE,
                        help="scene edge length in pixels")
    parser.add_argument("--tile", type=int, default=FULL_TILE,
                        help="tile edge length")
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits")
    parser.add_argument("--requests", type=int, default=FULL_REQUESTS,
                        help="number of back-to-back requests")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes / pool capacity (a serving "
                             "pool is multi-worker by definition; jobs=1 "
                             "would be the in-process path, which never "
                             "creates a pool to amortise)")
    parser.add_argument("--backend", default="packed",
                        help="execution backend for the requests")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="required resident-vs-cold speedup")
    args = parser.parse_args()
    result = compare_serving(args.size, args.tile, args.length,
                             args.requests, args.jobs, args.backend)
    print(render(result))
    path = ROOT / "BENCH_serve_pool.json"
    write_bench_record(path, "serve_pool",
                       config={"size": args.size, "tile": args.tile,
                               "length": args.length,
                               "requests": args.requests,
                               "jobs": args.jobs, "backend": args.backend,
                               "min_speedup": args.min_speedup},
                       results={"seconds": result["seconds"],
                                "speedup": result["speedup"]},
                       run_config=RunConfig.fast(backend=args.backend,
                                                 tile=args.tile,
                                                 jobs=args.jobs))
    print(f"bench record -> {path}")
    if result["speedup"]["resident"] < args.min_speedup:
        print(f"FAIL: resident-pool speedup "
              f"{result['speedup']['resident']:.2f}x "
              f"< required {args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
