"""Table I: MSE(%) of SBS generation across RNG sources and lengths."""

from conftest import emit

from repro.analysis.experiments import table1_sng_mse
from repro.analysis.tables import dict_grid_to_rows, render_table

LENGTHS = (32, 64, 128, 256, 512)


def _run():
    return table1_sng_mse(lengths=LENGTHS, samples=8_000, seed=0)


def test_table1(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = dict_grid_to_rows(
        {k: {str(n): v for n, v in row.items()} for k, row in result.items()},
        [str(n) for n in LENGTHS])
    emit("Table I -- MSE(%) of SBS generation (paper Table I)",
         render_table(["RNG source"] + [f"N={n}" for n in LENGTHS], rows,
                      precision=4))
    # Reproduction guards: the orderings the paper's table shows.
    assert result["QRNG (Sobol)"][512] < 1e-3
    assert result["PRNG (LFSR)"][32] > result["Software"][32]
    for row in result.values():
        assert row[512] < row[32]
