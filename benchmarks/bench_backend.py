"""Packed vs unpacked execution-backend throughput on the SC hot path.

Workload: the acceptance chain of the backend subsystem — an AND
multiplication feeding a MAJ scaled addition with popcount value recovery —
over a 2**20-bit x 1024-stream batch (the ``mul_and + scaled_add_maj``
chain at production scale).  Both backends execute the identical bit
content; the packed backend runs it on uint64 words (64 bits per lane)
instead of one byte per bit, and is expected to deliver >= 4x the
stream-bit throughput.

Run as a benchmark (appends to ``reproduction_report.txt``)::

    pytest benchmarks/bench_backend.py --benchmark-only -s

or standalone, e.g. for the Makefile smoke target::

    PYTHONPATH=src python benchmarks/bench_backend.py --length 131072 --batch 128
"""

import argparse
import pathlib
import time

import numpy as np

from repro.config import RunConfig
from repro.core import ops as scops
from repro.core.backend import use_backend
from repro.core.bitstream import Bitstream
from repro.report import write_bench_record

ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_LENGTH = 1 << 20          # >= 1e6 bits per stream
FULL_BATCH = 1024
SMOKE_LENGTH = 1 << 17
SMOKE_BATCH = 128


def _chain(x: Bitstream, y: Bitstream, r: Bitstream) -> np.ndarray:
    """mul_and -> scaled_add_maj -> popcount, all backend-routed."""
    prod = scops.mul_and(x, y)
    acc = scops.scaled_add_maj(prod, y, r)
    return acc.popcount()


def _time_backend(name: str, operands, repeats: int) -> float:
    """Best-of-``repeats`` wall time of the chain under one backend."""
    with use_backend(name):
        streams = [Bitstream(bits) for bits in operands]
        _chain(*streams)  # warm-up (also populates any per-length caches)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            _chain(*streams)
            best = min(best, time.perf_counter() - t0)
    return best


def compare_backends(length: int = FULL_LENGTH, batch: int = FULL_BATCH,
                     repeats: int = 3, seed: int = 0) -> dict:
    """Throughput (stream-bits/s through the chain) per backend + speedup."""
    rng = np.random.default_rng(seed)
    operands = [rng.integers(0, 2, size=(batch, length), dtype=np.uint8)
                for _ in range(3)]
    bits_per_eval = batch * length
    result = {"length": length, "batch": batch, "backends": {}}
    for name in ("unpacked", "packed"):
        elapsed = _time_backend(name, operands, repeats)
        result["backends"][name] = {
            "seconds": elapsed,
            "gbits_per_s": bits_per_eval / elapsed / 1e9,
        }
    result["speedup"] = (result["backends"]["unpacked"]["seconds"]
                         / result["backends"]["packed"]["seconds"])
    return result


def render(result: dict) -> str:
    lines = [
        f"chain: mul_and + scaled_add_maj + popcount, "
        f"N={result['length']:,} bits x {result['batch']} streams",
    ]
    for name, row in result["backends"].items():
        lines.append(f"  {name:>9}: {row['seconds'] * 1e3:9.1f} ms/eval"
                     f"   {row['gbits_per_s']:8.2f} Gbit/s")
    lines.append(f"  packed speedup: {result['speedup']:.2f}x")
    return "\n".join(lines)


def test_backend_throughput(benchmark):
    from conftest import emit

    result = benchmark.pedantic(compare_backends, rounds=1, iterations=1)
    emit("Backend throughput -- packed (uint64 words) vs unpacked (uint8)",
         render(result))
    # Regression guard for the acceptance criterion: the packed backend
    # must deliver at least 4x the unpacked throughput on the full chain.
    assert result["speedup"] >= 4.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits")
    parser.add_argument("--batch", type=int, default=FULL_BATCH,
                        help="number of parallel streams")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed evaluations per backend (best is kept)")
    args = parser.parse_args()
    result = compare_backends(args.length, args.batch, args.repeats)
    print(render(result))
    path = ROOT / "BENCH_backend.json"
    write_bench_record(path, "backend",
                       config={"length": args.length, "batch": args.batch,
                               "repeats": args.repeats},
                       results={"speedup": result["speedup"],
                                "backends": result["backends"]},
                       # headline side of the comparison: the packed backend
                       run_config=RunConfig.fast(backend="packed"))
    print(f"bench record -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
