"""Fig. 5: normalized throughput of the SC designs vs binary CIM."""

from conftest import emit

from repro.analysis.experiments import (
    fig4_energy,
    fig5_throughput,
    summarize_figures,
)
from repro.analysis.tables import render_table

LENGTHS = (32, 64, 128, 256)


def test_fig5(benchmark):
    result = benchmark.pedantic(fig5_throughput, rounds=3, iterations=1)
    rows = []
    for app, designs in result.items():
        for design, series in designs.items():
            rows.append([app, design] + [series[n] for n in LENGTHS])
    emit("Fig. 5 -- normalized throughput vs binary CIM (bars > 1 are "
         "faster)",
         render_table(["application", "design"] + [f"N={n}" for n in LENGTHS],
                      rows, precision=2))
    summary = summarize_figures(fig4_energy(), result)
    emit("Headline throughput factor",
         f"ReRAM SC vs binary CIM (geomean): "
         f"{summary['reram_throughput_vs_bincim']:.2f}x (paper: 2.16x)\n"
         f"ReRAM SC vs CMOS SC (geomean):    "
         f"{summary['reram_vs_cmos_throughput']:.2f}x (paper: 1.39x)")
    # Shape guards: MAJ/MUX apps accelerate; CORDIV matting does not.
    for app in ("compositing", "interpolation"):
        for v in result[app]["ReRAM SC"].values():
            assert v > 1.0
    assert result["matting"]["ReRAM SC"][256] < 1.0
    assert 1.0 < summary["reram_throughput_vs_bincim"] < 5.0
