"""End-to-end application throughput: seed per-pixel path vs batched word domain.

Workload: the three Table IV applications through ``run_app`` (scene
generation, SNG, SC ops, S-to-B and quality scoring included) at a
realistic size/length, under three execution configurations:

* ``seed``           — the unpacked backend driving the per-bit oracles
  (``fault_domain='bit'``, ``cell_model='per-bit'``): the pre-refactor
  per-pixel execution path, kept in-tree for conformance.
* ``packed``         — the packed (uint64 word) backend with word-domain
  execution and the batched column S-to-B model, whole-image.
* ``packed+sharded`` — the same plus the tile executor
  (``tile``/``jobs``), which also shrinks per-stage working sets to
  cache-friendly sizes.

Run as a benchmark (appends to ``reproduction_report.txt``)::

    pytest benchmarks/bench_apps.py --benchmark-only -s

or standalone, e.g. for the Makefile smoke target::

    PYTHONPATH=src python benchmarks/bench_apps.py --length 64 --size 24
"""

import argparse
import os
import pathlib
import time

from repro.apps import run_app
from repro.config import RunConfig
from repro.core.backend import use_backend
from repro.report import write_bench_record

ROOT = pathlib.Path(__file__).resolve().parent.parent

APPS = ("compositing", "interpolation", "matting")

FULL_LENGTH = 512
FULL_SIZE = 48
FULL_TILE = 32

#: Configurations: name -> (backend, fault_domain, cell_model, sharded?).
CONFIGS = (
    ("seed", "unpacked", "bit", "per-bit", False),
    ("packed", "packed", "word", "column", False),
    ("packed+sharded", "packed", "word", "column", True),
)


def _time_config(app: str, backend: str, domain: str, cell: str, shard: bool,
                 length: int, size: int, tile: int, jobs: int,
                 repeats: int, faulty: bool, seed: int) -> float:
    """Best-of-``repeats`` wall time of one full ``run_app`` execution."""
    best = float("inf")
    for _ in range(repeats):
        with use_backend(backend):
            t0 = time.perf_counter()
            run_app(app, "sc", length=length, size=size, seed=seed,
                    faulty=faulty, fault_domain=domain, cell_model=cell,
                    tile=tile if shard else None, jobs=jobs if shard else 1)
            best = min(best, time.perf_counter() - t0)
    return best


def compare_apps(length: int = FULL_LENGTH, size: int = FULL_SIZE,
                 tile: int = FULL_TILE, jobs: int = 1, repeats: int = 2,
                 faulty: bool = False, seed: int = 0, apps=APPS) -> dict:
    """Per-app wall-clock of every configuration plus speedups vs ``seed``."""
    result = {"length": length, "size": size, "tile": tile, "jobs": jobs,
              "faulty": faulty, "apps": {}}
    for app in apps:
        rows = {}
        for name, backend, domain, cell, shard in CONFIGS:
            rows[name] = _time_config(app, backend, domain, cell, shard,
                                      length, size, tile, jobs, repeats,
                                      faulty, seed)
        result["apps"][app] = {
            "seconds": rows,
            "speedup": {name: rows["seed"] / rows[name] for name in rows},
        }
    return result


def render(result: dict) -> str:
    lines = [
        f"run_app end-to-end, N={result['length']} bits, "
        f"scene {result['size']}x{result['size']}, "
        f"tile={result['tile']}, jobs={result['jobs']}, "
        f"faulty={result['faulty']}",
    ]
    for app, row in result["apps"].items():
        parts = [f"  {app:>14}:"]
        for name, _, _, _, _ in CONFIGS:
            parts.append(f"{name} {row['seconds'][name] * 1e3:8.1f} ms"
                         f" ({row['speedup'][name]:4.2f}x)")
        lines.append("   ".join(parts))
    best = max(row["speedup"]["packed+sharded"]
               for row in result["apps"].values())
    lines.append(f"  best packed+sharded speedup: {best:.2f}x")
    return "\n".join(lines)


def best_speedup(result: dict) -> float:
    return max(row["speedup"]["packed+sharded"]
               for row in result["apps"].values())


def test_app_throughput(benchmark):
    from conftest import emit

    jobs = min(4, os.cpu_count() or 1)
    result = benchmark.pedantic(
        lambda: compare_apps(jobs=jobs), rounds=1, iterations=1)
    emit("Application throughput -- batched word-domain pipeline vs the "
         "seed per-pixel path", render(result))
    # Acceptance guard: with the batched column S-to-B model the packed
    # pipeline must deliver >= 8x the seed path end-to-end on at least one
    # application (raised from 4x once the conversion step stopped
    # dominating; observed ~13-16x on interpolation single-threaded).
    assert best_speedup(result) >= 8.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits")
    parser.add_argument("--size", type=int, default=FULL_SIZE,
                        help="scene edge length in pixels")
    parser.add_argument("--tile", type=int, default=FULL_TILE,
                        help="tile edge for the sharded configuration")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the sharded configuration")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per configuration (best is kept)")
    parser.add_argument("--faulty", action="store_true",
                        help="benchmark with CIM fault injection enabled")
    parser.add_argument("--apps", nargs="+", default=list(APPS),
                        choices=APPS, help="applications to benchmark")
    args = parser.parse_args()
    result = compare_apps(args.length, args.size, args.tile, args.jobs,
                          args.repeats, args.faulty, apps=tuple(args.apps))
    print(render(result))
    path = ROOT / "BENCH_apps.json"
    write_bench_record(path, "apps",
                       config={"length": args.length, "size": args.size,
                               "tile": args.tile, "jobs": args.jobs,
                               "repeats": args.repeats,
                               "faulty": args.faulty, "apps": args.apps},
                       results={"best_speedup": best_speedup(result),
                                "apps": result["apps"]},
                       # resolved config of the headline (packed+sharded)
                       # configuration the guard asserts on
                       run_config=RunConfig.fast(
                           backend="packed", tile=args.tile,
                           jobs=args.jobs))
    print(f"bench record -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
