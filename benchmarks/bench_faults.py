"""Faulty-path throughput: sparse Binomial fault-mask sampling vs the
dense per-site Bernoulli oracle.

After PR 2/3 made fault-free packed runs ~17x faster end-to-end, the
paper's *faulty* sweeps became the slowest scenario in the repo: every
sensing-step flip site drew a full ``shape``-sized uniform array even at
per-gate rates around 1e-3.  ``fault_sampling='sparse'`` draws each
site's flip *count* from ``Binomial(n_sites, p)`` and scatters that many
site indices straight into the packed payload
(:meth:`repro.core.streambatch.StreamBatch.flip_at`), so the fault model's
cost scales with the expected number of flips instead of the number of
stream bits.

Workloads (packed backend, word domain, column S-to-B, the derived
``DEFAULT_FAULT_RATES`` — i.e. paper-representative gate rates):

* a faulty ``run_app`` interpolation run (generation-dominated: the
  IMSNG greater-than scan pays three dense masks per segment bit);
* a faulty ``run_tiled`` contrast-stretch filter run (CORDIV-dominated:
  the dense word path draws two read masks per stream position).

Run as a benchmark (appends to ``reproduction_report.txt``)::

    pytest benchmarks/bench_faults.py --benchmark-only -s

or standalone, e.g. for the Makefile smoke target::

    PYTHONPATH=src python benchmarks/bench_faults.py --length 64 --size 16

The standalone run enforces ``--min-speedup`` (default 5x, the acceptance
floor; the full-scale ratio is well above it on both workloads).
"""

import argparse
import pathlib
import time

import numpy as np

from repro.apps import run_app
from repro.config import RunConfig
from repro.apps.executor import run_tiled
from repro.apps.filters import contrast_stretch_inputs
from repro.apps.images import natural_scene
from repro.core.backend import use_backend
from repro.report import write_bench_record
from repro.reram.faults import DEFAULT_FAULT_RATES

ROOT = pathlib.Path(__file__).resolve().parent.parent

FULL_LENGTH = 512
FULL_SIZE = 48
MIN_SPEEDUP = 5.0

MODES = ("dense", "sparse")


def _time_app(mode: str, length: int, size: int, repeats: int,
              seed: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_app("interpolation", "sc", length=length, size=size, seed=seed,
                faulty=True, fault_domain="word", fault_sampling=mode,
                cell_model="column")
        best = min(best, time.perf_counter() - t0)
    return best


def _time_filter(mode: str, length: int, size: int, repeats: int,
                 seed: int) -> float:
    image = natural_scene(size, size, np.random.default_rng(seed))
    inputs = contrast_stretch_inputs(image)
    kwargs = {"fault_rates": DEFAULT_FAULT_RATES, "fault_sampling": mode,
              "cell_model": "column"}
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_tiled("contrast_stretch", inputs, length,
                  tile=max(4, size // 2), jobs=1, seed=seed,
                  engine_kwargs=kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def compare_fault_sampling(length: int = FULL_LENGTH, size: int = FULL_SIZE,
                           repeats: int = 2, seed: int = 0) -> dict:
    """Best-of-``repeats`` faulty wall time per sampling mode + speedups."""
    result = {"length": length, "size": size, "workloads": {}}
    with use_backend("packed"):
        for name, timer in (("interpolation", _time_app),
                            ("contrast_stretch", _time_filter)):
            rows = {mode: timer(mode, length, size, repeats, seed)
                    for mode in MODES}
            result["workloads"][name] = {
                "seconds": rows,
                "speedup": rows["dense"] / rows["sparse"],
            }
    result["best_speedup"] = max(w["speedup"]
                                 for w in result["workloads"].values())
    return result


def render(result: dict) -> str:
    lines = [
        f"faulty packed runs, N={result['length']} bits, "
        f"scene {result['size']}x{result['size']}, "
        f"rates=DEFAULT_FAULT_RATES (derived VCM gate rates)",
    ]
    for name, row in result["workloads"].items():
        lines.append(
            f"  {name:>16}: "
            f"dense {row['seconds']['dense'] * 1e3:8.1f} ms   "
            f"sparse {row['seconds']['sparse'] * 1e3:8.1f} ms   "
            f"({row['speedup']:5.2f}x)")
    lines.append(f"  best sparse speedup: {result['best_speedup']:.2f}x")
    return "\n".join(lines)


def test_fault_sampling_speedup(benchmark):
    from conftest import emit

    result = benchmark.pedantic(compare_fault_sampling, rounds=1,
                                iterations=1)
    emit("Faulty-path throughput -- sparse Binomial fault sampling vs the "
         "dense Bernoulli oracle", render(result))
    # Acceptance guard: sparse sampling must deliver >= 5x on a faulty
    # packed app/filter run at paper-representative gate rates (observed
    # ~28x on interpolation, ~10x on the CORDIV-bound contrast stretch).
    assert result["best_speedup"] >= MIN_SPEEDUP


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=FULL_LENGTH,
                        help="stream length N in bits")
    parser.add_argument("--size", type=int, default=FULL_SIZE,
                        help="scene edge length in pixels")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per mode (best is kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="fail unless the best sparse speedup reaches "
                             "this factor (0 disables, for tiny smoke "
                             "configs)")
    args = parser.parse_args()
    result = compare_fault_sampling(args.length, args.size, args.repeats,
                                    args.seed)
    print(render(result))
    path = ROOT / "BENCH_faults.json"
    write_bench_record(path, "faults",
                       config={"length": args.length, "size": args.size,
                               "repeats": args.repeats, "seed": args.seed,
                               "min_speedup": args.min_speedup},
                       results={"best_speedup": result["best_speedup"],
                                "workloads": result["workloads"]},
                       # headline side of the comparison: sparse sampling
                       run_config=RunConfig.fast(backend="packed",
                                                 seed=args.seed))
    print(f"bench record -> {path}")
    if result["best_speedup"] < args.min_speedup:
        print(f"FAIL: best speedup {result['best_speedup']:.2f}x < "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
