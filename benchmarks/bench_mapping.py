"""Bank-pipelining study: mapped SC programs on the NVMain-style simulator.

Quantifies the paper's multi-array pipelining claim: conversions for
different operands overlap across banks, so the flow's makespan approaches
one conversion plus the compute tail.
"""

from conftest import emit

from repro.analysis.tables import render_table
from repro.energy.nvmain import MemorySystem
from repro.imsc.mapping import ScProgram, map_program


def _compositing_program() -> ScProgram:
    return (ScProgram(length=256)
            .convert("f").convert("b").convert("a")
            .op("maj3", "c", "f", "b", "a")
            .to_binary("c"))


def _bank_sweep():
    out = {}
    for banks in (2, 3, 4, 8):
        mapping = map_program(_compositing_program(), n_banks=banks)
        res = MemorySystem(banks).simulate(mapping.trace)
        util = sum(res.bank_busy_s.values()) / (banks * res.makespan_s)
        out[banks] = (res.makespan_ns, res.energy_nj, util)
    return out


def test_bank_pipelining(benchmark):
    result = benchmark.pedantic(_bank_sweep, rounds=3, iterations=1)
    rows = [[b, m, e, f"{u:.0%}"] for b, (m, e, u) in result.items()]
    emit("Mapping -- compositing flow makespan vs banks "
         "(3 conversions + MAJ + S-to-B)",
         render_table(["banks", "makespan (ns)", "energy (nJ)", "avg util"],
                      rows, precision=1))
    # Pipelining shortens the critical path; energy is conserved.
    assert result[4][0] < result[2][0]
    assert result[2][1] == result[8][1]
    # With >= 4 banks the three conversions fully overlap: the makespan is
    # within 2x of a single conversion plus the compute tail.
    assert result[4][0] < 2 * 85.0
