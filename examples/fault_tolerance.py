"""Fault tolerance: SC's graceful degradation vs binary CIM's collapse.

Reproduces the core argument of Sec. IV-C: when CIM operations misfire,
a stochastic representation loses a little quality everywhere, while a
binary representation loses catastrophic amounts wherever a high-order bit
flips — image matting's divider being the worst case.

Run:  python examples/fault_tolerance.py
"""

from repro.analysis.tables import render_table
from repro.apps import run_app
from repro.reram.faults import derive_fault_rates
from repro.reram.device import DeviceParams


def main() -> None:
    print("Scouting-logic fault rates derived from the VCM device model:")
    rates = derive_fault_rates(trials_per_case=16_384, seed=1)
    print(f"  AND {rates.and2:.4f}  OR {rates.or2:.4f}  "
          f"XOR {rates.xor2:.4f}  MAJ3 {rates.maj3:.4f}\n")

    rows = []
    for app in ("compositing", "interpolation", "matting"):
        clean_sc = run_app(app, "sc", length=128, size=32, seed=0)
        dirty_sc = run_app(app, "sc", length=128, faulty=True, size=32,
                           seed=0)
        clean_bin = run_app(app, "bincim", size=32, seed=0)
        dirty_bin = run_app(app, "bincim", faulty=True, size=32, seed=0)
        rows.append([
            app,
            f"{clean_sc.ssim_pct:.1f} -> {dirty_sc.ssim_pct:.1f}",
            f"{clean_bin.ssim_pct:.1f} -> {dirty_bin.ssim_pct:.1f}",
        ])
    print(render_table(
        ["application", "SC SSIM (ideal -> faulty)",
         "binary CIM SSIM (ideal -> faulty)"],
        rows, title="Quality under CIM faults (paper Table IV's shape)"))

    print("\nWhy: a flipped stream bit changes a value by 1/N; a flipped "
          "quotient MSB changes it by half the full scale.")

    print("\nSensitivity: widening the HRS distribution raises fault rates:")
    rows = []
    for hrs_sigma in (0.35, 0.55, 0.75):
        r = derive_fault_rates(DeviceParams(hrs_sigma=hrs_sigma),
                               trials_per_case=8_192, seed=2)
        rows.append([hrs_sigma, f"{r.mean():.4f}"])
    print(render_table(["HRS sigma", "mean gate error"], rows))


if __name__ == "__main__":
    main()
