"""Serving mixed SC requests on a resident worker pool.

A tour of :mod:`repro.serve` in two acts:

1. **Mixed burst** — one :class:`~repro.serve.ServingClient` (resident
   worker pool + asyncio scheduler on a background thread) takes a burst
   of *different* requests — applications and filters, mixed stream
   lengths, fault-free and faulty engines — lets their tiles interleave
   fair round-robin on the shared workers, and proves every response
   bit-identical to the classic batch path ``run_tiled(jobs=1)``.
2. **Scene handles** — the same scene queried repeatedly is published
   *once* into the shared-memory scene store (:meth:`put_scene`); every
   follow-up request carries only the digest (``scene=``), ships zero
   scene bytes, and stays bit-identical.  :meth:`drop_scene` releases
   the pin when the caller is done.

Run:  PYTHONPATH=src python examples/serving.py
"""

import time

import numpy as np

from repro.analysis.tables import render_table
from repro.apps.executor import run_tiled
from repro.apps.filters import gamma_correct_inputs, mean_filter_inputs
from repro.apps.images import natural_scene
from repro.reram.faults import DEFAULT_FAULT_RATES
from repro.serve import ServingClient


def build_requests():
    """A burst of heterogeneous requests: (name, kernel, inputs, length, kw)."""
    rng = np.random.default_rng(42)
    scene = natural_scene(24, 24, rng)
    portrait = natural_scene(16, 16, rng)
    return [
        ("gamma 0.45",
         "gamma_correct", gamma_correct_inputs(scene), 128,
         dict(tile=8, seed=1, kernel_kwargs={"gamma": 0.45})),
        ("mean filter",
         "mean_filter", mean_filter_inputs(scene), 64,
         dict(tile=8, seed=2)),
        ("matting",
         "matting", {"composite": scene,
                     "background": scene * 0.5,
                     "foreground": np.clip(scene + 0.2, 0.0, 1.0)}, 64,
         dict(tile=8, seed=3)),
        ("faulty mean (sparse)",
         "mean_filter", mean_filter_inputs(portrait), 64,
         dict(tile=8, seed=4,
              engine_kwargs={"fault_rates": DEFAULT_FAULT_RATES,
                             "fault_sampling": "sparse"})),
    ]


def mixed_burst(client: ServingClient, requests) -> None:
    """Act 1: heterogeneous requests in flight at once, all bit-identical."""
    # Reference: each request through the classic batch path, alone.
    refs = {}
    t0 = time.perf_counter()
    for name, kernel, inputs, length, kw in requests:
        refs[name] = run_tiled(kernel, inputs, length, jobs=1, **kw)
    t_batch = time.perf_counter() - t0

    rows = []
    t0 = time.perf_counter()
    futures = [(name, client.submit(kernel, inputs, length, **kw))
               for name, kernel, inputs, length, kw in requests]
    for name, fut in futures:
        image, ledger = fut.result()
        ref_image, ref_ledger = refs[name]
        identical = np.array_equal(image, ref_image)
        rows.append([name, image.shape[0] * image.shape[1],
                     f"{ledger.energy_j * 1e9:.1f}",
                     "yes" if identical else "NO"])
        assert identical, f"served {name!r} diverged from run_tiled"
    t_served = time.perf_counter() - t0

    print(render_table(
        ["request", "pixels", "energy (nJ)", "== run_tiled(jobs=1)"], rows,
        title="Concurrent serving on one resident pool"))
    print(f"\nsequential batch: {t_batch * 1e3:7.1f} ms"
          f"\nserved burst:     {t_served * 1e3:7.1f} ms"
          f"  ({len(requests)} requests interleaved, bit-identical)")


def scene_handle_tour(client: ServingClient) -> None:
    """Act 2: publish a scene once, query it many times by digest."""
    inputs = gamma_correct_inputs(natural_scene(32, 32,
                                                np.random.default_rng(7)))
    before = client.stats()["scene_cache"]

    # One publish pins the scene in the shared-memory store...
    digest = client.put_scene(inputs)
    try:
        # ...and every request after it ships the digest, not the arrays
        # (inputs=None): five gamma sweeps over the same 32x32 scene move
        # the scene bytes across the process boundary exactly once.
        futures = [(gamma,
                    client.submit("gamma_correct", None, 64, tile=8,
                                  seed=11, scene=digest,
                                  kernel_kwargs={"gamma": gamma}))
                   for gamma in (0.25, 0.45, 0.7, 1.0, 1.6)]
        for gamma, fut in futures:
            image, _ = fut.result()
            ref_image, _ = run_tiled("gamma_correct", inputs, 64, tile=8,
                                     jobs=1, seed=11,
                                     kernel_kwargs={"gamma": gamma})
            assert np.array_equal(image, ref_image), \
                f"scene-handle gamma={gamma} diverged from run_tiled"
    finally:
        client.drop_scene(digest)   # unpin; the store may now evict it

    after = client.stats()["scene_cache"]
    shipped = after["bytes_shipped"] - before["bytes_shipped"]
    hits = after["hits"] - before["hits"]
    print(f"\nscene handle {digest[:12]}...: {len(futures)} requests, "
          f"{hits} scene-cache hits, {shipped} scene bytes shipped "
          f"(the {inputs['image'].nbytes}-byte scene was published once)")
    assert shipped == 0, "requests against a pinned handle ship no bytes"


def main() -> None:
    with ServingClient(jobs=4) as client:
        mixed_burst(client, build_requests())
        scene_handle_tour(client)


if __name__ == "__main__":
    main()
