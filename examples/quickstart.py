"""Quickstart: the all-in-memory stochastic computing flow in ~40 lines.

Runs the three SC stages — stochastic number generation, bulk-bitwise
arithmetic, stochastic-to-binary conversion — first in pure software, then
on the in-memory (ReRAM) engine with its cost ledger.

Run:  python examples/quickstart.py
"""


from repro.core import ComparatorSng, SoftwareRng, ops, scc
from repro.imsc import InMemorySCEngine


def software_flow() -> None:
    print("=== Software SC flow ===")
    sng = ComparatorSng(SoftwareRng(bits=8, seed=0))
    n = 1024

    # Multiplication needs uncorrelated streams: 0.5 * 0.6 = 0.3.
    x, y = sng.generate_pair(0.5, 0.6, n, correlated=False)
    print(f"AND multiply : 0.5 * 0.6 ~ {float(ops.mul_and(x, y).value()):.3f}")

    # Subtraction needs correlated streams: |0.8 - 0.3| = 0.5.
    a, b = sng.generate_pair(0.8, 0.3, n, correlated=True)
    print(f"XOR subtract : |0.8 - 0.3| ~ {float(ops.sub_xor(a, b).value()):.3f}"
          f"   (SCC = {float(scc(a, b)):+.2f})")

    # CORDIV division: 0.3 / 0.6 = 0.5.
    u, v = sng.generate_pair(0.3, 0.6, n, correlated=True)
    print(f"CORDIV divide: 0.3 / 0.6 ~ {float(ops.div_cordiv(u, v).value()):.3f}")


def in_memory_flow() -> None:
    print("\n=== In-memory (ReRAM) SC flow ===")
    engine = InMemorySCEngine(rng=0)
    n = 1024

    # IMSNG converts true-random bits into streams entirely in memory.
    x, y = engine.generate_pair(0.5, 0.6, n, correlated=False)
    product = engine.multiply(x, y)

    # The 3-input majority replaces the MUX for scaled addition: one
    # scouting-logic sensing cycle for the whole stream.
    s = engine.scaled_add(x, y)

    # S-to-B happens on a reference column read by the 8-bit ADC.
    print(f"multiply  : 0.5 * 0.6     ~ {float(engine.to_binary(product)):.3f}")
    print(f"scaled add: (0.5+0.6)/2   ~ {float(engine.to_binary(s)):.3f}")

    led = engine.ledger
    print(f"\ncost ledger: {led.latency_ns:.1f} ns on the critical path, "
          f"{led.energy_nj:.2f} nJ total")
    for cat, cost in led.breakdown().items():
        print(f"  {cat:18s} {cost['latency_ns']:9.2f} ns "
              f"{cost['energy_nj']:8.3f} nJ")


if __name__ == "__main__":
    software_flow()
    in_memory_flow()
