"""Extra SC image kernels on the in-memory engine (Li et al.'s workload
class: edge detection, smoothing, gamma, contrast).

Run:  python examples/sc_filters.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.apps import (
    contrast_stretch_float,
    contrast_stretch_sc,
    gamma_correct_float,
    gamma_correct_sc,
    mean_filter_float,
    mean_filter_sc,
    natural_scene,
    psnr,
    roberts_cross_float,
    roberts_cross_sc,
)
from repro.imsc import InMemorySCEngine


def main() -> None:
    image = natural_scene(32, 32, np.random.default_rng(11))
    length = 256
    rows = []
    kernels = [
        ("Roberts cross", roberts_cross_float,
         lambda e: roberts_cross_sc(e, image, length)),
        ("2x2 mean", mean_filter_float,
         lambda e: mean_filter_sc(e, image, length)),
        ("gamma 0.45", lambda img: gamma_correct_float(img, 0.45),
         lambda e: gamma_correct_sc(e, image, length, gamma=0.45)),
        ("contrast stretch", contrast_stretch_float,
         lambda e: contrast_stretch_sc(e, image, length)),
    ]
    for name, ref_fn, sc_fn in kernels:
        ref = ref_fn(image)
        engine = InMemorySCEngine(rng=0)
        out = sc_fn(engine)
        rows.append([name, f"{psnr(ref, out):.1f}",
                     f"{engine.ledger.energy_nj / 1e3:.2f} uJ"])
    print(render_table(["kernel", "PSNR vs float (dB)", "energy"],
                       rows,
                       title=f"SC image kernels, N = {length}, 32x32 input"))


if __name__ == "__main__":
    main()
