"""RNG quality and IMSNG accuracy (paper Table I, condensed).

Compares stochastic-number generation error across every random source the
paper evaluates — the in-memory TRNG-fed IMSNG, a software PRNG, an 8-bit
LFSR and an 8-bit Sobol generator — and shows the TRNG health statistics
plus the LFSR-polynomial caveat from the paper's footnote.

Run:  python examples/rng_quality.py
"""

from repro.analysis.tables import render_table
from repro.core import Lfsr, PAPER_POLY_8, sng_mse
from repro.core.rng import SobolRng, SoftwareRng
from repro.core.sng import ComparatorSng, SegmentSng
from repro.reram.trng import ReRamTrng, bit_statistics, von_neumann_debias


def main() -> None:
    lengths = (32, 128, 512)
    sources = {
        "IMSNG (ReRAM TRNG, M=8)": SegmentSng(ReRamTrng(rng=0)),
        "Software PRNG": ComparatorSng(SoftwareRng(8, seed=0)),
        "8-bit LFSR": ComparatorSng(Lfsr()),
        "8-bit Sobol": ComparatorSng(SobolRng(8)),
    }
    rows = []
    for label, sng in sources.items():
        rows.append([label] + [f"{sng_mse(sng, n, samples=8_000):.4f}"
                               for n in lengths])
    print(render_table(["source"] + [f"N={n}" for n in lengths], rows,
                       title="SBS generation MSE(%) (Table I, condensed)"))

    print("\nReRAM TRNG health (raw vs von-Neumann-debiased):")
    trng = ReRamTrng(bias=0.01, autocorr=0.02, rng=1)
    raw = trng.random_bits(100_000)
    stats = bit_statistics(raw)
    print(f"  raw:      bias={stats['bias']:+.4f}  "
          f"lag1={stats['lag1_autocorr']:+.4f}")
    deb = von_neumann_debias(raw)
    stats = bit_statistics(deb)
    print(f"  debiased: bias={stats['bias']:+.4f}  "
          f"lag1={stats['lag1_autocorr']:+.4f}  "
          f"(kept {deb.size / raw.size:.0%} of bits)")

    print("\nLFSR polynomial check (paper footnote):")
    paper = Lfsr(PAPER_POLY_8)
    ours = Lfsr()
    print(f"  x^8+x^5+x^3+1 (paper): period {paper.period:3d} "
          f"-> maximal: {paper.is_maximal()}")
    print(f"  x^8+x^4+x^3+x^2+1     : period {ours.period:3d} "
          f"-> maximal: {ours.is_maximal()}")


if __name__ == "__main__":
    main()
