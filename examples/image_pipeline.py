"""Image-processing pipeline across all three backends (paper Sec. IV-A).

Composites a synthetic scene, up-scales it and recovers the alpha matte on:

* the exact float reference,
* the in-memory SC engine (quality + energy from one execution),
* the binary CIM baseline.

Run:  python examples/image_pipeline.py
"""


from repro.apps import run_app
from repro.analysis.tables import render_table


def main() -> None:
    rows = []
    for app in ("compositing", "interpolation", "matting"):
        for backend in ("float", "sc", "bincim"):
            r = run_app(app, backend, length=128, size=32, seed=7)
            energy = (f"{r.ledger.energy_nj / 1e3:.2f} uJ"
                      if r.ledger is not None else "-")
            rows.append([app, backend, f"{r.ssim_pct:.1f}",
                         f"{r.psnr_db:.1f}", energy])
    print(render_table(
        ["application", "backend", "SSIM (%)", "PSNR (dB)", "energy"],
        rows, title="Quality and energy per backend (N = 128, 32x32 scene)"))

    print("\nStream-length sweep for SC compositing (accuracy vs cost):")
    rows = []
    for n in (32, 64, 128, 256):
        r = run_app("compositing", "sc", length=n, size=32, seed=7)
        rows.append([n, f"{r.ssim_pct:.1f}", f"{r.psnr_db:.1f}",
                     f"{r.ledger.energy_nj / 1e3:.2f} uJ"])
    print(render_table(["N", "SSIM (%)", "PSNR (dB)", "energy"], rows))


if __name__ == "__main__":
    main()
