"""Design-space exploration with the cost models and the NVMain-style
simulator.

Walks the hardware levers the paper discusses: IMSNG-naive vs IMSNG-opt,
stream length, bank-level pipelining, and the CMOS/binary baselines.

Run:  python examples/design_space.py
"""

from repro.analysis.experiments import (
    bincim_app_cost,
    cmos_app_cost,
    reram_app_cost,
)
from repro.analysis.tables import render_table
from repro.cmos import CmosScDesign
from repro.energy import MemorySystem
from repro.energy.traces import pipelined_flow_trace
from repro.imsc import ReRamScDesign, imsng_conversion_cost


def imsng_variants() -> None:
    rows = []
    for mode in ("naive", "opt"):
        led = imsng_conversion_cost(8, mode)
        rows.append([f"IMSNG-{mode}", f"{led.latency_ns:.1f}",
                     f"{led.energy_nj:.2f}"])
    print(render_table(["variant", "latency (ns)", "energy (nJ)"], rows,
                       title="IMSNG conversion (paper: 395.4/10.23 naive, "
                             "78.2/3.42 opt)"))


def op_costs() -> None:
    rows = []
    reram = ReRamScDesign().table_rows()
    for rng in ("lfsr", "sobol"):
        cmos = CmosScDesign(rng).table_rows()
        for op, cost in cmos.items():
            rows.append([f"CMOS ({rng})", op, f"{cost['latency_ns']:.1f}",
                         f"{cost['energy_nj']:.3f}"])
    for op, cost in reram.items():
        rows.append(["ReRAM (opt)", op, f"{cost['latency_ns']:.1f}",
                     f"{cost['energy_nj']:.3f}"])
    print(render_table(["design", "op", "latency (ns)", "energy (nJ)"], rows,
                       title="\nPer-operation hardware cost (Table III)"))


def banking() -> None:
    rows = []
    for banks in (1, 2, 4, 8):
        trace = pipelined_flow_trace(n_operands=3, op="mul", n_banks=banks)
        res = MemorySystem(banks).simulate(trace)
        util = sum(res.bank_busy_s.values()) / (banks * res.makespan_s)
        rows.append([banks, f"{res.makespan_ns:.1f}",
                     f"{res.energy_nj:.2f}", f"{util:.0%}"])
    print(render_table(["banks", "makespan (ns)", "energy (nJ)", "avg util"],
                       rows,
                       title="\nPipelining 3 conversions + multiply + S-to-B "
                             "across banks"))


def per_pixel() -> None:
    rows = []
    for app in ("compositing", "interpolation", "matting"):
        bin_led = bincim_app_cost(app)
        rows.append([app, "binary CIM", f"{bin_led.latency_ns:.1f}",
                     f"{bin_led.energy_nj:.2f}"])
        for n in (32, 256):
            r = reram_app_cost(app, n)
            rows.append([app, f"ReRAM SC N={n}", f"{r.latency_ns:.1f}",
                         f"{r.energy_nj:.2f}"])
        c = cmos_app_cost(app, 128)
        rows.append([app, "CMOS SC N=128", f"{c.latency_ns:.1f}",
                     f"{c.energy_nj:.2f}"])
    print(render_table(["application", "design", "ns/pixel", "nJ/pixel"],
                       rows, title="\nPer-pixel flow costs (Figs. 4-5 inputs)"))


if __name__ == "__main__":
    imsng_variants()
    op_costs()
    banking()
    per_pixel()
