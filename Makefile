# Developer entry points.  The tier-1 suite must pass under BOTH execution
# backends (see src/repro/core/backend.py); `make test` enforces that, and
# finishes with a tiny-config benchmark smoke run of both the backend chain
# and the application pipelines.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test lint lint-changed test-unpacked test-packed test-faulty \
	test-serving \
	bench-smoke serve-smoke bench-backend bench-apps bench-faults \
	bench-serve bench-serve-load bench-serve-soak bench-transport bench

test: lint test-unpacked test-packed bench-smoke serve-smoke

# Lint gate.  repro-lint (tools/repro_lint/, dependency-free) always
# runs: it carries both the project-invariant rules RL001-RL005 and a
# stdlib mirror of the pyproject ruff selection, so the hermetic
# container enforces the same floor as CI.  When ruff is installed it
# runs first for the richer diagnostics on the shared hygiene rules.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "ruff check"; ruff check .; \
	fi
	PYTHONPATH=tools $(PYTHON) -m repro_lint

# Fast pre-push loop: lint only the files changed against REF (default
# main).  Partial view — the unused-suppression and stale-baseline
# checks are skipped; the full `make lint` gate still runs everything.
REF ?= main
lint-changed:
	PYTHONPATH=tools $(PYTHON) -m repro_lint --changed-since $(REF)

test-unpacked:
	REPRO_BACKEND=unpacked $(PYTEST) -x -q

test-packed:
	REPRO_BACKEND=packed $(PYTEST) -x -q

# Faulty-mode focus run: the fault-sampling conformance/golden suite under
# both backends (a subset of the tier-1 suite, for quick iteration on the
# fault model).
test-faulty:
	REPRO_BACKEND=unpacked $(PYTEST) -x -q tests/test_fault_sampling.py
	REPRO_BACKEND=packed $(PYTEST) -x -q tests/test_fault_sampling.py

# Serving-layer focus run (a subset of the tier-1 suite, for quick
# iteration on the scheduler/pool).
test-serving:
	REPRO_BACKEND=unpacked $(PYTEST) -x -q tests/test_serving.py
	REPRO_BACKEND=packed $(PYTEST) -x -q tests/test_serving.py

# Quick throughput checks (~seconds): packed-vs-unpacked word chain, a
# tiny-config end-to-end app run (bench_apps pins each configuration's
# backend itself, so one invocation covers both), and shm-vs-copy scene
# transport on a small repeated scene.  Tiny workloads are
# overhead-dominated — this is a does-it-run smoke, not the >=4x/1.5x
# guards (those are bench-backend / bench-apps / bench-transport at
# full scale).
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py \
		--length 131072 --batch 128 --repeats 2
	PYTHONPATH=src $(PYTHON) benchmarks/bench_stob.py \
		--streams 8192 --length 256 --repeats 2
	PYTHONPATH=src $(PYTHON) benchmarks/bench_apps.py \
		--length 64 --size 24 --tile 12 --jobs 2 --repeats 1 --apps matting
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py \
		--length 64 --size 16 --repeats 1 --min-speedup 2
	PYTHONPATH=src $(PYTHON) benchmarks/bench_transport.py \
		--size 256 --tile 128 --requests 8 --jobs 2 --min-speedup 0

# Tiny-config serving smoke: resident-pool vs cold per-request pools on a
# handful of small requests.  Does-it-run + bit-identity only (speedup
# guard disabled: tiny timings flake under CI load); the 1.5x
# amortisation guard runs at full scale via bench-serve / make bench.
serve-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py \
		--requests 4 --size 12 --length 32 --jobs 2 --min-speedup 0

# Full acceptance-scale backend benchmark (1e6-bit x 1024-stream chain).
bench-backend:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py

# Full acceptance-scale faulty-path benchmark (sparse vs dense sampling).
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py

# Full acceptance-scale application benchmark (seed path vs packed+sharded).
bench-apps:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_apps.py

# Full acceptance-scale serving benchmark (resident pool amortisation).
bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py

# Full acceptance-scale scene-transport benchmark: shm scene store vs
# per-request copy on repeated big-scene requests (>= 1.5x served
# throughput, responses bit-identical to run_tiled(jobs=1) both ways).
bench-transport:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_transport.py

# Open-loop load generator at smoke scale: replays a mixed request trace
# (big+small scenes, faulty+fault-free engines, both backends) against
# ServingClient, verifies every response bit-identical to
# run_tiled(jobs=1), and reports p50/p90/p99 latency + saturation
# throughput into BENCH_serve.json.  Flags of interest (see
# benchmarks/loadgen.py): --rate R paces arrivals open-loop at R req/s
# (0 = one burst), --front-end stdio drives the JSON loop instead,
# --soak runs the >=1000-request worker-death acceptance soak.
bench-serve-load:
	PYTHONPATH=src $(PYTHON) benchmarks/loadgen.py \
		--requests 24 --jobs 2 --small 8 --big 12 --length 32

# Sustained-load acceptance soak: >= 1000 mixed requests with a worker
# death injected mid-stream; requires zero incorrect responses, only
# BrokenProcessPool failures at the kill, and a pool restart.
bench-serve-soak:
	PYTHONPATH=src $(PYTHON) benchmarks/loadgen.py --soak

# Full reproduction report (all tables/figures + perf guards).  The old
# `pytest benchmarks/ --benchmark-only` form collected nothing (bench_*.py
# is outside pytest's test_*.py pattern -> exit 5, no report); the driver
# runs the CLI and the bench scripts directly.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_report.py --fresh
