# Developer entry points.  The tier-1 suite must pass under BOTH execution
# backends (see src/repro/core/backend.py); `make test` enforces that.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-unpacked test-packed bench-smoke bench-backend bench

test: test-unpacked test-packed

test-unpacked:
	REPRO_BACKEND=unpacked $(PYTEST) -x -q

test-packed:
	REPRO_BACKEND=packed $(PYTEST) -x -q

# Quick packed-vs-unpacked throughput check (~seconds).
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py \
		--length 131072 --batch 128 --repeats 2

# Full acceptance-scale backend benchmark (1e6-bit x 1024-stream chain).
bench-backend:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backend.py

# Full reproduction report (all tables/figures).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s
