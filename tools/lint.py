"""Dependency-free lint gate: the `make lint` fallback when ruff is absent.

The container this repo grows in has no linter installed and nothing may
be pip-installed, so `make lint` prefers ruff (configured and
version-pinned in ``pyproject.toml``) and falls back to this stdlib AST
checker.  It enforces the subset of ruff's E/F rules that catch real
rot in this codebase:

* **syntax errors** (anything unparseable fails immediately);
* **unused imports** (F401) — module-level and nested, with the two
  sanctioned escape hatches: explicit re-exports spelled ``import X as
  X`` / ``from m import X as X`` (the PEP 484 convention ruff honours
  too) and names listed in ``__all__``;
* **duplicate imports** of the same name in the same scope (F811-lite);
* **trailing whitespace** and **tabs in indentation** (W291/W191-lite);
* **missing newline at end of file** (W292).

Run: ``python tools/lint.py [paths...]`` (default: the repo's Python
roots).  Exit code 1 if any finding, listing every one as
``path:line: code message``.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")

Finding = Tuple[pathlib.Path, int, str, str]


def iter_py_files(args: List[str]) -> Iterator[pathlib.Path]:
    roots = [pathlib.Path(a) for a in args] if args else \
        [REPO / r for r in DEFAULT_ROOTS]
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))


class _ImportCollector(ast.NodeVisitor):
    """Collect imported bindings and every name usage in one pass."""

    def __init__(self) -> None:
        self.imports: List[Tuple[str, int, bool]] = []  # (name, line, alias)
        self.used: set = set()
        self.exported: set = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            explicit = alias.asname is not None
            bound = alias.asname or alias.name.split(".")[0]
            # `import numpy.linalg` binds `numpy`; `import x.y as z` binds z
            redundant = explicit and alias.asname == alias.name
            self.imports.append((bound, node.lineno, redundant))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            redundant = alias.asname is not None \
                and alias.asname == alias.name
            self.imports.append((bound, node.lineno, redundant))

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # record the root name of dotted access (np.array -> np)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # names listed in __all__ count as used (public re-exports)
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for elt in ast.walk(node.value):
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        self.exported.add(elt.value)
        self.generic_visit(node)


def check_source(path: pathlib.Path, source: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        findings.append((path, exc.lineno or 0, "E999",
                         f"syntax error: {exc.msg}"))
        return findings

    collector = _ImportCollector()
    collector.visit(tree)
    # F811 only looks at module-level imports: deferred imports inside
    # two different functions legitimately bind the same name.
    top_level = {node.lineno for node in tree.body
                 if isinstance(node, (ast.Import, ast.ImportFrom))}
    seen_lines: dict = {}
    for name, lineno, redundant in collector.imports:
        if redundant:
            continue   # `import X as X`: the sanctioned re-export spelling
        if lineno in top_level:
            prev = seen_lines.get(name)
            if prev is not None and prev != lineno:
                findings.append((path, lineno, "F811",
                                 f"redefinition of imported name {name!r} "
                                 f"(first import at line {prev})"))
            seen_lines.setdefault(name, lineno)
        if name in collector.used or name in collector.exported:
            continue
        if name == "_":
            continue
        findings.append((path, lineno, "F401",
                         f"{name!r} imported but unused"))

    lines = source.splitlines()
    for i, line in enumerate(lines, 1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            findings.append((path, i, "W291", "trailing whitespace"))
        indent = stripped[:len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            findings.append((path, i, "W191", "tab in indentation"))
    if source and not source.endswith("\n"):
        findings.append((path, len(lines), "W292",
                         "no newline at end of file"))
    return findings


def main(argv: List[str]) -> int:
    findings: List[Finding] = []
    count = 0
    for path in iter_py_files(argv):
        count += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append((path, 0, "E902", f"unreadable: {exc}"))
            continue
        findings.extend(check_source(path, source))
    for path, lineno, code, message in findings:
        try:
            shown = path.relative_to(REPO)
        except ValueError:
            shown = path
        print(f"{shown}:{lineno}: {code} {message}")
    if findings:
        print(f"\n{len(findings)} finding(s) in {count} file(s)")
        return 1
    print(f"lint clean: {count} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
