"""Dependency-free lint gate: delegates to the repro_lint framework.

Historically this file *was* the checker (the stdlib AST fallback for
``make lint`` when ruff is absent).  It has since grown into the
plugin-based framework in ``tools/repro_lint/`` — stdlib hygiene rules
(the ruff-mirror subset E9/F401/F811/W191/W291/W292, still kept in sync
with pyproject.toml's ``select`` list) plus the project-invariant rules
RL001–RL005.  This shim remains so ``python tools/lint.py`` and the
Makefile keep working unchanged; it is exactly
``PYTHONPATH=tools python -m repro_lint``.

The historical ``iter_py_files`` bug — nonexistent path arguments were
silently skipped, so a typo'd path linted nothing and exited 0 — is fixed
in the framework's discovery: unknown paths are a hard error (exit 2).
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro_lint.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
