"""repro-lint core: single-parse runner, rule registry, suppressions, baseline.

The framework parses every file exactly once into a :class:`FileContext`
(source, AST, parent map, suppression table) and hands the shared context
to every registered rule — a rule never re-reads or re-parses.  Rules come
in two shapes:

* **file rules** (``file_check``) see one :class:`FileContext` at a time —
  everything that is decidable from a single module;
* **project rules** (``project_check``) see the whole :class:`Project` —
  cross-file analyses such as RL003's kernel-reachability walk.

Whole-program analysis
----------------------
``Project.call_graph()`` builds (once per run, shared by every project
rule) the module-resolving call graph of :mod:`repro_lint.callgraph`.
How the call graph resolves names, in brief: a ``src/``-relative path
maps to its dotted module (``src/repro/apps/executor.py`` →
``repro.apps.executor``); each module's symbol table holds its top-level
functions and classes plus every import binding — ``import a.b as c``,
``from a.b import x as y`` (aliases kept), relative imports resolved
against the importing package, and re-export chains through
``__init__.py`` followed recursively with a cycle guard.  A call site
resolves when its callee is a plain bound name, a dotted path rooted at
an imported module, ``self.m(...)``/``cls.m(...)`` inside a method (then
through resolvable base classes), or ``C.m(...)`` on a project class;
attribute calls on untyped values stay unresolved on purpose —
conservative edges, no guessed types.  Function-local *data* flow
(def-use chains for RL006's seed provenance) lives in
:mod:`repro_lint.dataflow`.

Suppressions
------------
A finding is silenced inline with::

    something_flagged()  # repro-lint: disable=RL003 -- why this is safe

The justification after ``--`` is **mandatory**: a bare ``disable=`` is
itself a finding (RL000), as is a suppression that never matches a finding
— suppressions must document real, current exceptions, not accumulate.  A
comment alone on its own line applies to the next line instead.

Baseline
--------
``baseline.json`` (next to this module) grandfathers findings that are
accepted long-term.  Every entry names its ``path``/``code``, a
``contains`` fragment of the offending source line (line numbers drift;
content does not), and a mandatory ``justification``.  Stale entries —
ones that no longer match any finding — fail the run, so the baseline can
only shrink or be consciously re-justified.
"""

from __future__ import annotations

import ast
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"

#: ruff `select` prefixes pyproject.toml must mirror (checked by
#: tests/test_repro_lint.py); every prefix must cover at least one of
#: :data:`STDLIB_CODES` and every stdlib code must be covered.
RUFF_SELECT = ("E9", "F401", "F811", "W191", "W291", "W292")
#: The hygiene codes this framework enforces itself (the ruff-mirror set).
STDLIB_CODES = ("E902", "E999", "F401", "F811", "W191", "W291", "W292")


@dataclass(frozen=True, order=True)
class Finding:
    """One reported problem, addressed as ``path:line: code message``."""

    relpath: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.relpath}:{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.relpath, "line": self.line,
                "code": self.code, "message": self.message}


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    codes: Tuple[str, ...]
    justification: str
    comment_line: int
    target_line: int
    used: bool = False


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\s]+?)"
    r"\s*(?:--\s*(?P<why>.*?))?\s*$")

#: Codes that can never be suppressed or baselined: the mechanisms
#: themselves (RL000) and unparseable files (E999/E902).
UNSILENCEABLE = frozenset({"RL000", "E999", "E902"})


class PathError(Exception):
    """A path argument that names nothing — a hard error, never silence.

    The historical ``tools/lint.py`` silently skipped nonexistent path
    arguments, so a typo'd path linted zero files and exited 0.
    """


class FileContext:
    """Everything rules may need about one file, computed at most once.

    Parsing (AST + parent map) and the tokenize-based suppression scan
    are **lazy**: they run on first access of :attr:`tree` /
    :attr:`suppressions`.  The parse cache relies on this — a cache-hit
    file replays its recorded findings and suppressions without ever
    touching the parser, unless a project rule later demands its AST.
    """

    #: process-lifetime count of actual ``ast.parse`` runs (test hook:
    #: proves the cache skips parses rather than timing it)
    parsed_total = 0

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self._parsed = False
        self._tree: Optional[ast.AST] = None
        self._syntax_error: Optional[Finding] = None
        self.parents: Dict[int, ast.AST] = {}
        self._scanned = False
        self._suppressions: List[Suppression] = []
        self._suppression_findings: List[Finding] = []
        #: scratch space for rules that share expensive per-file results
        self.cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _ensure_parsed(self) -> None:
        if self._parsed:
            return
        self._parsed = True
        FileContext.parsed_total += 1
        try:
            self._tree = ast.parse(self.source, filename=self.relpath)
        except SyntaxError as exc:
            self._syntax_error = Finding(self.relpath, exc.lineno or 0,
                                         "E999",
                                         f"syntax error: {exc.msg}")
        else:
            for node in ast.walk(self._tree):
                for child in ast.iter_child_nodes(node):
                    self.parents[id(child)] = node

    @property
    def tree(self) -> Optional[ast.AST]:
        self._ensure_parsed()
        return self._tree

    @property
    def syntax_error(self) -> Optional[Finding]:
        self._ensure_parsed()
        return self._syntax_error

    @property
    def suppressions(self) -> List[Suppression]:
        self._ensure_scanned()
        return self._suppressions

    @property
    def suppression_findings(self) -> List[Finding]:
        self._ensure_scanned()
        return self._suppression_findings

    def restore(self, suppressions: List[Suppression],
                suppression_findings: List[Finding]) -> None:
        """Adopt cached suppression state without a tokenize pass."""
        self._scanned = True
        self._suppressions = suppressions
        self._suppression_findings = suppression_findings

    def _ensure_scanned(self) -> None:
        if not self._scanned:
            self._scanned = True
            self._parse_suppressions()

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        self._ensure_parsed()
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[Tuple[ast.AST, ast.AST]]:
        """Yield ``(child, parent)`` pairs climbing from ``node`` to root."""
        current = node
        parent = self.parent(current)
        while parent is not None:
            yield current, parent
            current, parent = parent, self.parent(parent)

    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return   # unparseable files already fail with E999
        for tok in tokens:
            if tok.type != tokenize.COMMENT or "repro-lint" not in tok.string:
                continue
            row, col = tok.start
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                self.suppression_findings.append(Finding(
                    self.relpath, row, "RL000",
                    "malformed repro-lint comment; expected "
                    "'# repro-lint: disable=RL00x -- justification'"))
                continue
            codes = tuple(c.strip().upper()
                          for c in match.group(1).split(",") if c.strip())
            why = (match.group("why") or "").strip()
            if not codes or any(c in UNSILENCEABLE for c in codes):
                self.suppression_findings.append(Finding(
                    self.relpath, row, "RL000",
                    f"suppression names no suppressible rule code: "
                    f"{tok.string.strip()!r}"))
                continue
            if not why:
                self.suppression_findings.append(Finding(
                    self.relpath, row, "RL000",
                    f"suppression of {', '.join(codes)} has no "
                    f"justification; write "
                    f"'# repro-lint: disable={codes[0]} -- why'"))
                continue
            standalone = self.lines[row - 1][:col].strip() == ""
            self.suppressions.append(Suppression(
                codes, why, row, row + 1 if standalone else row))


class Project:
    """All parsed files of one run, for cross-file (project) rules."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self.by_path: Dict[str, FileContext] = {
            f.relpath: f for f in self.files}
        #: shared scratch space for cross-rule artefacts (the call graph)
        self.cache: Dict[str, object] = {}

    def call_graph(self):
        """The shared module-resolving :class:`~.callgraph.CallGraph`.

        Built lazily on first request and reused by every project rule
        in the run (RL003 reachability, RL008's transitive walks).
        """
        graph = self.cache.get("callgraph")
        if graph is None:
            from .callgraph import CallGraph
            graph = CallGraph(self.files)
            self.cache["callgraph"] = graph
        return graph


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
@dataclass
class Rule:
    """One registered rule: code, catalogue docs, scope, and its check."""

    code: str
    name: str
    summary: str
    explain: str
    scope: Callable[[str], bool] = field(default=lambda relpath: True)
    file_check: Optional[Callable[[FileContext], Iterable[Finding]]] = None
    project_check: Optional[Callable[[Project], Iterable[Finding]]] = None


RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (used by the plugin modules at import)."""
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    RULES[rule.code] = rule
    return rule


def load_plugins() -> None:
    """Import every rule module; importing registers its rules."""
    from . import rules as rules   # import side effect is the point


# ---------------------------------------------------------------------------
# file discovery
# ---------------------------------------------------------------------------
def iter_py_files(args: Sequence[str],
                  root: pathlib.Path = REPO) -> List[pathlib.Path]:
    """Resolve path arguments to the .py files to lint.

    Unlike the historical ``tools/lint.py``, a path that exists as neither
    a file nor a directory raises :class:`PathError` — a typo'd argument
    must fail the gate, not lint nothing and exit 0.  A directory that
    exists but contains **zero** ``.py`` files is the same hard error for
    the same reason (``repro_lint some/empty/dir`` linting nothing and
    exiting 0 is indistinguishable from a pass).
    """
    roots = ([pathlib.Path(a) for a in args] if args
             else [root / r for r in DEFAULT_ROOTS])
    out: List[pathlib.Path] = []
    for r in roots:
        if r.is_file():
            out.append(r)
        elif r.is_dir():
            found = sorted(r.rglob("*.py"))
            if not found:
                raise PathError(f"directory contains no .py files: {r}")
            out.extend(found)
        else:
            raise PathError(f"path does not exist: {r}")
    return out


def to_relpath(path: pathlib.Path, root: pathlib.Path = REPO) -> str:
    """Project-relative posix path (scope matching key); absolute if outside."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
@dataclass
class BaselineEntry:
    path: str
    code: str
    contains: str
    justification: str
    count: int = 1
    matched: int = 0


def load_baseline(path: pathlib.Path) -> Tuple[List[BaselineEntry],
                                               List[Finding]]:
    """Parse and validate the baseline file; config errors are findings."""
    errors: List[Finding] = []
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [], [Finding(str(path), 0, "RL000",
                            f"unreadable baseline: {exc}")]
    entries: List[BaselineEntry] = []
    shown = path.name
    for i, item in enumerate(raw.get("findings", [])):
        extra = sorted(set(item) - {"path", "code", "contains",
                                    "justification", "count"})
        missing = sorted({"path", "code", "contains",
                          "justification"} - set(item))
        if extra or missing:
            errors.append(Finding(shown, 0, "RL000",
                                  f"baseline entry {i}: "
                                  + (f"unknown key(s) {extra}" if extra
                                     else f"missing key(s) {missing}")))
            continue
        if item["code"] in UNSILENCEABLE:
            errors.append(Finding(shown, 0, "RL000",
                                  f"baseline entry {i}: {item['code']} "
                                  f"cannot be baselined"))
            continue
        if not str(item["justification"]).strip():
            errors.append(Finding(
                shown, 0, "RL000",
                f"baseline entry {i} ({item['path']}, {item['code']}): "
                f"empty justification — every grandfathered finding "
                f"must name why it is accepted"))
            continue
        entries.append(BaselineEntry(item["path"], item["code"],
                                     item["contains"],
                                     str(item["justification"]),
                                     int(item.get("count", 1))))
    return entries, errors


def write_baseline(path: pathlib.Path, findings: Sequence[Finding],
                   contexts: Dict[str, FileContext]) -> None:
    """Regenerate the baseline from the current findings (TODO markers)."""
    items = []
    for f in sorted(findings):
        if f.code in UNSILENCEABLE:
            continue
        ctx = contexts.get(f.relpath)
        line_text = ""
        if ctx and 1 <= f.line <= len(ctx.lines):
            line_text = ctx.lines[f.line - 1].strip()
        items.append({"path": f.relpath, "code": f.code,
                      "contains": line_text or f.message,
                      "justification": "TODO: justify or fix"})
    path.write_text(json.dumps({"version": 1, "findings": items},
                               indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------
@dataclass
class Result:
    """Outcome of one run: what fires, what was silenced, over how much."""

    findings: List[Finding]
    suppressed: List[Tuple[Finding, Suppression]]
    baselined: List[Tuple[Finding, BaselineEntry]]
    file_count: int
    project: Optional[Project] = None

    @property
    def clean(self) -> bool:
        return not self.findings


def run_sources(files: Sequence[Tuple[str, str]], *,
                baseline: Optional[Sequence[BaselineEntry]] = None,
                select: Optional[Sequence[str]] = None,
                cache: Optional["object"] = None,
                subset: bool = False) -> Result:
    """Run every (selected) rule over ``(relpath, source)`` pairs.

    ``select`` limits the run to the named codes (prefix match, like
    ruff's select).  The unused-suppression and stale-baseline checks only
    apply on full runs — on a partial run a suppression for an unselected
    rule is not evidence of rot.

    ``subset=True`` declares the *file set* partial (``--changed-since``):
    all rules run, but the unused-suppression and stale-baseline checks
    are skipped — a suppression justified by a project-rule finding
    rooted in an unlisted file, or a baseline entry for an unlisted
    file, is not evidence of rot either.

    ``cache`` is a :class:`~.cache.LintCache` (or ``None``): on full
    runs, files whose content hash matches a cached entry replay their
    per-file findings and suppressions without parsing or running file
    rules, and a run whose entire file set is unchanged replays the
    project-rule findings too — skipping every parse.  Partial
    (``select``/``subset``) runs never consult or populate the cache.
    """
    load_plugins()
    full_run = select is None
    complete = full_run and not subset
    use_cache = cache is not None and complete

    def selected(code: str) -> bool:
        return full_run or any(code.startswith(s) for s in select)

    contexts = [FileContext(relpath, source) for relpath, source in files]
    project = Project(contexts)
    raw: List[Finding] = []
    fresh: List[FileContext] = []
    digests: Dict[str, str] = {}
    all_hit = True
    for ctx in contexts:
        entry = None
        if use_cache:
            digests[ctx.relpath] = cache.digest(ctx.source)
            entry = cache.get_file(ctx.relpath, digests[ctx.relpath])
        if entry is not None:
            findings, sups, sup_findings = entry
            ctx.restore(sups, sup_findings)
            raw.extend(findings)
            raw.extend(sup_findings)
        else:
            all_hit = False
            fresh.append(ctx)

    per_file: Dict[str, List[Finding]] = {c.relpath: [] for c in fresh}
    for ctx in fresh:
        if ctx.syntax_error is not None:
            per_file[ctx.relpath].append(ctx.syntax_error)
    for code in sorted(RULES):
        rule = RULES[code]
        if rule.file_check is None or not selected(code):
            continue
        for ctx in fresh:
            if ctx.tree is not None and rule.scope(ctx.relpath):
                per_file[ctx.relpath].extend(rule.file_check(ctx))
    for ctx in fresh:
        findings = sorted(per_file[ctx.relpath])
        raw.extend(f for f in findings if selected(f.code))
        raw.extend(f for f in ctx.suppression_findings
                   if selected("RL000"))
        if use_cache:
            cache.put_file(ctx.relpath, digests[ctx.relpath], findings,
                           ctx.suppressions, ctx.suppression_findings)

    project_key = (cache.project_key(digests)
                   if use_cache else None)
    project_findings: Optional[List[Finding]] = None
    if use_cache and all_hit:
        project_findings = cache.get_project(project_key)
    if project_findings is None:
        project_findings = []
        for code in sorted(RULES):
            rule = RULES[code]
            if rule.project_check is not None and selected(code):
                project_findings.extend(rule.project_check(project))
        project_findings.sort()
        if use_cache:
            cache.put_project(project_key, project_findings)
    raw.extend(f for f in project_findings if selected(f.code))

    # inline suppressions
    visible: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    for f in sorted(raw):
        sup = None
        if f.code not in UNSILENCEABLE:
            ctx = project.by_path.get(f.relpath)
            if ctx is not None:
                sup = next((s for s in ctx.suppressions
                            if f.code in s.codes
                            and s.target_line == f.line), None)
        if sup is not None:
            sup.used = True
            suppressed.append((f, sup))
        else:
            visible.append(f)
    if complete:
        for ctx in contexts:
            for s in ctx.suppressions:
                if not s.used:
                    visible.append(Finding(
                        ctx.relpath, s.comment_line, "RL000",
                        f"suppression of {', '.join(s.codes)} never "
                        f"matched a finding — remove it (or it is on "
                        f"the wrong line)"))

    # baseline
    baselined: List[Tuple[Finding, BaselineEntry]] = []
    if baseline:
        remaining: List[Finding] = []
        for f in visible:
            entry = next(
                (b for b in baseline
                 if b.matched < b.count and b.path == f.relpath
                 and b.code == f.code
                 and _line_contains(project, f, b.contains)), None)
            if entry is not None:
                entry.matched += 1
                baselined.append((f, entry))
            else:
                remaining.append(f)
        visible = remaining
        if complete:
            for b in baseline:
                if b.matched == 0:
                    visible.append(Finding(
                        b.path, 0, "RL000",
                        f"stale baseline entry ({b.code}, "
                        f"contains={b.contains!r}): no current finding "
                        f"matches — delete it from baseline.json"))
    return Result(sorted(visible), suppressed, baselined, len(contexts),
                  project)


def _line_contains(project: Project, f: Finding, fragment: str) -> bool:
    ctx = project.by_path.get(f.relpath)
    if ctx is None or not (1 <= f.line <= len(ctx.lines)):
        return False
    return fragment in ctx.lines[f.line - 1]


def run_paths(paths: Sequence[str], *, root: pathlib.Path = REPO,
              baseline: Optional[Sequence[BaselineEntry]] = None,
              select: Optional[Sequence[str]] = None,
              cache: Optional["object"] = None,
              subset: bool = False) -> Result:
    """Discover files under ``paths`` and lint them (the CLI's core)."""
    files: List[Tuple[str, str]] = []
    unreadable: List[Finding] = []
    for path in iter_py_files(paths, root):
        relpath = to_relpath(path, root)
        try:
            files.append((relpath, path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(Finding(relpath, 0, "E902",
                                      f"unreadable: {exc}"))
    result = run_sources(files, baseline=baseline, select=select,
                         cache=cache, subset=subset)
    if unreadable:
        result = Result(sorted(result.findings + unreadable),
                        result.suppressed, result.baselined,
                        result.file_count + len(unreadable),
                        result.project)
    return result


def explain(code: str) -> str:
    """The ``--explain`` catalogue entry for one rule code."""
    load_plugins()
    rule = RULES.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {code!r}; known rules: {known}")
    return (f"{rule.code} — {rule.name}\n\n{rule.summary}\n\n"
            f"{rule.explain.strip()}\n")
