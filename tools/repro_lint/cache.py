"""Content-hash result cache: unchanged files skip parse and rule passes.

The cache maps ``sha256(file source)`` to that file's raw per-file
findings and suppression table, plus one whole-run entry keyed on the
sorted digest set that replays the project-rule findings when *nothing*
changed.  Combined with :class:`~.engine.FileContext`'s lazy parsing,
a fully warm ``make lint`` never calls ``ast.parse`` at all, and a run
with one edited file re-parses only what the project rules demand.

Correctness guards:

* the whole cache is salted with a hash of the linter's own sources —
  editing any rule, the engine, or this module invalidates everything;
* only **full** runs (no ``--select``) read or write the cache: a
  partial run computes a subset of findings and must never masquerade
  as the full set;
* entries store *raw* (pre-suppression, pre-baseline) findings, so
  suppression accounting and baseline matching still run live on every
  invocation — editing ``baseline.json`` needs no invalidation;
* :meth:`LintCache.get_file` returns freshly constructed
  :class:`~.engine.Suppression` objects each call (their ``used`` flags
  are mutated per run).

The cache lives in ``tools/repro_lint/.cache/`` by default (git-ignored)
and is written atomically; a corrupt or stale-salt file is discarded
wholesale, never trusted.  ``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, List, Optional, Tuple

from .engine import Finding, Suppression

DEFAULT_CACHE_DIR = pathlib.Path(__file__).resolve().parent / ".cache"
_CACHE_FORMAT = 1


def _package_salt() -> str:
    """Hash of every linter source file: code changes invalidate all."""
    package = pathlib.Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package.rglob("*.py")):
        digest.update(path.as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class LintCache:
    """One on-disk cache file, loaded once per run, saved once at exit."""

    def __init__(self, cache_dir: Optional[pathlib.Path] = None) -> None:
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None \
            else DEFAULT_CACHE_DIR
        self.path = self.cache_dir / "results.json"
        self.salt = _package_salt()
        self._files: Dict[str, Dict] = {}
        self._project: Optional[Dict] = None
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("format") != _CACHE_FORMAT \
                or raw.get("salt") != self.salt:
            return   # different linter version: discard wholesale
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files
        project = raw.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = json.dumps({"format": _CACHE_FORMAT, "salt": self.salt,
                              "files": self._files,
                              "project": self._project})
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = False

    # ------------------------------------------------------------------
    @staticmethod
    def digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    @staticmethod
    def project_key(digests: Dict[str, str]) -> str:
        joined = "\n".join(f"{path}\0{digest}"
                           for path, digest in sorted(digests.items()))
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def get_file(self, relpath: str, digest: str
                 ) -> Optional[Tuple[List[Finding], List[Suppression],
                                     List[Finding]]]:
        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            findings = [Finding(*item) for item in entry["findings"]]
            sups = [Suppression(tuple(codes), why, comment, target)
                    for codes, why, comment, target
                    in entry["suppressions"]]
            sup_findings = [Finding(*item)
                            for item in entry["suppression_findings"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, sups, sup_findings

    def put_file(self, relpath: str, digest: str,
                 findings: List[Finding], suppressions: List[Suppression],
                 suppression_findings: List[Finding]) -> None:
        self._files[relpath] = {
            "digest": digest,
            "findings": [[f.relpath, f.line, f.code, f.message]
                         for f in findings],
            "suppressions": [[list(s.codes), s.justification,
                              s.comment_line, s.target_line]
                             for s in suppressions],
            "suppression_findings": [[f.relpath, f.line, f.code, f.message]
                                     for f in suppression_findings],
        }
        self._dirty = True

    # ------------------------------------------------------------------
    def get_project(self, key: str) -> Optional[List[Finding]]:
        entry = self._project
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        try:
            return [Finding(*item) for item in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def put_project(self, key: str, findings: List[Finding]) -> None:
        self._project = {
            "key": key,
            "findings": [[f.relpath, f.line, f.code, f.message]
                         for f in findings],
        }
        self._dirty = True
