"""Mechanical autofixes (``--fix``) for the unambiguous hygiene findings.

Only fixes with exactly one correct rewrite are applied:

* **W291** trailing whitespace (blank lines included) — strip it;
* **W292** missing newline at end of file — append one;
* **F401** unused import — delete the import statement, but only when
  the statement imports exactly *one* name and occupies exactly the
  flagged line (a multi-name ``from x import a, b`` or a parenthesised
  multi-line import has several defensible rewrites, so it is left for
  a human).

Fixing runs to a fixpoint (``fix_source`` re-lints its own output until
nothing changes), which makes ``--fix`` idempotent by construction: a
second run finds nothing left to fix and rewrites nothing.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from .engine import run_sources

#: the codes --fix may act on; everything else is reported, never touched
FIXABLE = ("W291", "W292", "F401")
_MAX_PASSES = 8   # fixpoint bound; 2 passes suffice in practice


def _single_line_import(tree: ast.AST, line: int) -> bool:
    """Is the statement at ``line`` a one-alias, one-line import?"""
    for node in ast.walk(tree):
        if (isinstance(node, (ast.Import, ast.ImportFrom))
                and node.lineno == line):
            return (len(node.names) == 1
                    and getattr(node, "end_lineno", line) == line)
    return False


def _apply_once(relpath: str, source: str) -> Tuple[str, int]:
    result = run_sources([(relpath, source)], select=list(FIXABLE))
    trailing: Set[int] = set()
    drop: Set[int] = set()
    add_final_newline = False
    tree = None
    for f in result.findings:
        if f.code == "W291":
            trailing.add(f.line)
        elif f.code == "W292":
            add_final_newline = True
        elif f.code == "F401":
            if tree is None:
                try:
                    tree = ast.parse(source)
                except SyntaxError:
                    continue
            if _single_line_import(tree, f.line):
                drop.add(f.line)
    if not trailing and not drop and not add_final_newline:
        return source, 0
    ends_with_newline = source.endswith("\n")
    lines = source.splitlines()
    out: List[str] = []
    for i, text in enumerate(lines, start=1):
        if i in drop:
            continue
        out.append(text.rstrip() if i in trailing else text)
    fixed = "\n".join(out)
    if ends_with_newline or add_final_newline:
        fixed += "\n"
    return fixed, len(trailing) + len(drop) + int(add_final_newline)


def fix_source(relpath: str, source: str) -> Tuple[str, int]:
    """Fixed source and the number of fixes applied (0 = unchanged)."""
    total = 0
    for _ in range(_MAX_PASSES):
        source, applied = _apply_once(relpath, source)
        if not applied:
            break
        total += applied
    return source, total
