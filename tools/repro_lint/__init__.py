"""repro-lint: project-invariant static analysis for this repository.

A dependency-free, plugin-based analyzer that proves the codebase's
runtime invariants at lint time: determinism (RL001), worker-pool pickle
safety (RL002), the packed hot path never unpacking (RL003), a
never-blocked serving event loop (RL004) and paired shared-memory
releases (RL005) — plus the stdlib hygiene subset mirroring the ruff
config (E9/F401/F811/W191/W291/W292).

Run ``python -m repro_lint --help`` (with ``tools/`` on ``PYTHONPATH``)
or ``python tools/lint.py``; ``--explain RL00x`` prints the catalogue
entry for a rule.  See ``engine.py`` for the suppression and baseline
mechanics.
"""

from .engine import (
    DEFAULT_BASELINE as DEFAULT_BASELINE,
    DEFAULT_ROOTS as DEFAULT_ROOTS,
    FileContext as FileContext,
    Finding as Finding,
    PathError as PathError,
    Project as Project,
    REPO as REPO,
    RUFF_SELECT as RUFF_SELECT,
    RULES as RULES,
    Rule as Rule,
    STDLIB_CODES as STDLIB_CODES,
    explain as explain,
    iter_py_files as iter_py_files,
    load_baseline as load_baseline,
    load_plugins as load_plugins,
    register as register,
    run_paths as run_paths,
    run_sources as run_sources,
)
from .cli import main as main
