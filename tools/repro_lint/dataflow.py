"""Function-local def-use analysis shared by the data-flow rules.

:class:`FunctionFlow` summarises one function body: which names are
parameters, what value expression(s) each local name was assigned, and a
provenance query (:meth:`origins`) that chases a name back through
single-assignment chains to the expressions it ultimately came from.

The model is deliberately flow-insensitive (all assignments to a name
are merged) and function-local — it answers "could this value derive
from a parameter / a literal / this constructor?", which is exactly the
granularity RL006's seed-provenance check needs without the false
positives of a path-sensitive analysis.

Nested function and lambda bodies are *excluded* from the enclosing
function's flow (their assignments bind in a different scope); each
nested def gets its own :class:`FunctionFlow` when a rule wants one.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def _shallow_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    todo = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))


class FunctionFlow:
    """Def-use summary of one (async or plain) function definition."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        args = func.args
        self.params: Set[str] = {a.arg for a in args.args + args.posonlyargs
                                 + args.kwonlyargs}
        if args.vararg:
            self.params.add(args.vararg.arg)
        if args.kwarg:
            self.params.add(args.kwarg.arg)
        #: every value expression assigned to each local name
        self.defs: Dict[str, List[ast.AST]] = {}
        #: names bound by constructs with no traceable value expression
        #: (for-targets, with-targets, comprehensions, except handlers)
        self.opaque: Set[str] = set()
        self.calls: List[ast.Call] = []
        for node in _shallow_walk(func):
            if isinstance(node, ast.Call):
                self.calls.append(node)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(target, node.value)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    if node.value is not None:
                        self.defs.setdefault(node.target.id,
                                             []).append(node.value)
                    else:
                        self.opaque.add(node.target.id)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self.defs.setdefault(node.target.id,
                                         []).append(node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for n in ast.walk(node.target):
                    if isinstance(n, ast.Name):
                        self.opaque.add(n.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        if item.context_expr is not None:
                            self.defs.setdefault(
                                item.optional_vars.id,
                                []).append(item.context_expr)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.opaque.add(node.name)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    for n in ast.walk(gen.target):
                        if isinstance(n, ast.Name):
                            self.opaque.add(n.id)

    def _bind_target(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.defs.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # tuple unpack: each element derives from the shared value
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.defs.setdefault(elt.id, []).append(value)
                elif isinstance(elt, (ast.Tuple, ast.List)):
                    self._bind_target(elt, value)

    # ------------------------------------------------------------------
    def origins(self, expr: ast.AST, *, max_depth: int = 16
                ) -> List[ast.AST]:
        """The expressions ``expr`` ultimately derives from.

        A :class:`ast.Name` is chased through this function's assignment
        chains (all assignments merged).  Terminal origins are whatever
        the chase bottoms out on: parameter names, constants, calls,
        attribute reads, names with no local definition (globals), or
        names bound opaquely (loop targets etc. — returned as the Name).
        """
        out: List[ast.AST] = []
        seen: Set[str] = set()

        def chase(node: ast.AST, depth: int) -> None:
            if depth <= 0:
                out.append(node)
                return
            if isinstance(node, ast.Name):
                if node.id in self.params or node.id in seen:
                    out.append(node)
                    return
                values = self.defs.get(node.id)
                if not values or node.id in self.opaque:
                    out.append(node)
                    return
                seen.add(node.id)
                for value in values:
                    chase(value, depth - 1)
            elif isinstance(node, (ast.Tuple, ast.List)):
                for elt in node.elts:
                    chase(elt, depth - 1)
            elif isinstance(node, ast.Starred):
                chase(node.value, depth - 1)
            elif isinstance(node, ast.IfExp):
                chase(node.body, depth - 1)
                chase(node.orelse, depth - 1)
            elif isinstance(node, ast.BinOp):
                chase(node.left, depth - 1)
                chase(node.right, depth - 1)
            elif isinstance(node, ast.Subscript):
                chase(node.value, depth - 1)
            elif isinstance(node, ast.Await):
                chase(node.value, depth - 1)
            else:
                out.append(node)

        chase(expr, max_depth)
        return out

    def derives_from_param(self, expr: ast.AST) -> bool:
        """Does every origin of ``expr`` trace back to a parameter?

        Attribute reads rooted on a parameter (``self._seed``,
        ``config.seed``) and calls whose receiver or any argument is
        itself parameter-derived (``seed_seq.spawn(2)``,
        ``SeedSequence(seed)``) count as derived.
        """
        origins = self.origins(expr)
        if not origins:
            return False
        return all(self._origin_is_derived(o) for o in origins)

    def _origin_is_derived(self, node: ast.AST, depth: int = 8) -> bool:
        if depth <= 0:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.params
        if isinstance(node, ast.Attribute):
            return self._origin_is_derived(node.value, depth - 1)
        if isinstance(node, ast.Call):
            parts: List[ast.AST] = []
            if isinstance(node.func, ast.Attribute):
                parts.append(node.func.value)   # receiver
            parts.extend(node.args)
            parts.extend(k.value for k in node.keywords)
            return any(
                any(self._origin_is_derived(o, depth - 1)
                    for o in self.origins(p))
                for p in parts)
        if isinstance(node, ast.Subscript):
            return self._origin_is_derived(node.value, depth - 1)
        return False


def literal_int(node: ast.AST) -> Optional[int]:
    """The value of an integer-literal expression, else ``None``."""
    if (isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)):
        return node.value
    if (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))):
        inner = literal_int(node.operand)
        return inner if inner is None or isinstance(inner, int) else None
    return None


def functions_in(tree: ast.AST) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield every function def in a module with an is-method flag."""
    todo: List[Tuple[ast.AST, bool]] = [(tree, False)]
    while todo:
        node, in_class = todo.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, in_class
                todo.append((child, False))
            elif isinstance(child, ast.ClassDef):
                todo.append((child, True))
            else:
                todo.append((child, in_class))
