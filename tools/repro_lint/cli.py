"""repro-lint command line: ``python -m repro_lint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error (including a nonexistent
path argument — a typo'd path must fail the gate, not lint nothing).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from . import engine
from .engine import PathError, load_baseline, write_baseline


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="Project-invariant static analysis "
                    "(rule catalogue: --list-rules, --explain RL00x).")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "repo's Python roots: "
                             + ", ".join(engine.DEFAULT_ROOTS) + ")")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--explain", metavar="CODE", action="append",
                        default=[],
                        help="print the catalogue entry for a rule code "
                             "and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every registered rule and exit")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated code prefixes to run "
                             "(e.g. RL001,RL003 or just RL); disables "
                             "the unused-suppression and stale-baseline "
                             "checks")
    parser.add_argument("--baseline", metavar="FILE", type=pathlib.Path,
                        default=engine.DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in "
                             "tools/repro_lint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline file from the current "
                             "findings (justifications become TODO "
                             "markers to fill in)")
    parser.add_argument("--project-root", metavar="DIR", type=pathlib.Path,
                        default=engine.REPO,
                        help="root for scope-relative paths (default: "
                             "the repository root)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules or args.explain:
        engine.load_plugins()
        try:
            if args.explain:
                print("\n".join(engine.explain(c) for c in args.explain))
            else:
                for code in sorted(engine.RULES):
                    rule = engine.RULES[code]
                    print(f"{code}  {rule.name}: {rule.summary}")
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0

    baseline = None
    baseline_errors: List[engine.Finding] = []
    if not args.no_baseline and not args.write_baseline \
            and args.baseline.exists():
        baseline, baseline_errors = load_baseline(args.baseline)

    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    try:
        result = engine.run_paths(args.paths, root=args.project_root,
                                  baseline=baseline, select=select)
    except PathError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    findings = sorted(result.findings + baseline_errors)
    if args.write_baseline:
        contexts = result.project.by_path if result.project else {}
        write_baseline(args.baseline, findings, contexts)
        print(f"baseline written: {len(findings)} finding(s) -> "
              f"{args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "files": result.file_count,
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        silenced = (f" ({len(result.suppressed)} suppressed, "
                    f"{len(result.baselined)} baselined)"
                    if result.suppressed or result.baselined else "")
        if findings:
            print(f"\n{len(findings)} finding(s) in "
                  f"{result.file_count} file(s){silenced}")
        else:
            print(f"repro-lint clean: {result.file_count} "
                  f"file(s){silenced}")
    return 1 if findings else 0
