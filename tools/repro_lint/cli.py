"""repro-lint command line: ``python -m repro_lint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error (including a nonexistent
path argument or a directory containing no ``.py`` files — a typo'd
path must fail the gate, not lint nothing).

Full runs are cached by content hash (``tools/repro_lint/.cache/``);
``--no-cache`` bypasses it and ``--cache-dir`` relocates it.  ``--fix``
applies the mechanical hygiene fixes (trailing whitespace, final
newline, unambiguous unused imports) in place before linting.
``--changed-since REF`` lints only files ``git diff`` reports changed
against REF (the ``make lint-changed`` fast path).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import List, Optional

from . import engine
from .engine import PathError, load_baseline, write_baseline


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="Project-invariant static analysis "
                    "(rule catalogue: --list-rules, --explain RL00x).")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "repo's Python roots: "
                             + ", ".join(engine.DEFAULT_ROOTS) + ")")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format; 'sarif' emits a SARIF 2.1.0 "
                             "log for code-scanning UIs")
    parser.add_argument("--explain", metavar="CODE", action="append",
                        default=[],
                        help="print the catalogue entry for a rule code "
                             "and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every registered rule and exit")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated code prefixes to run "
                             "(e.g. RL001,RL003 or just RL); disables "
                             "the unused-suppression and stale-baseline "
                             "checks")
    parser.add_argument("--fix", action="store_true",
                        help="apply the mechanical hygiene fixes in "
                             "place (trailing whitespace, final newline, "
                             "single-name unused imports) before linting")
    parser.add_argument("--changed-since", metavar="REF",
                        help="lint only .py files git reports changed "
                             "against REF; skips the unused-suppression "
                             "and stale-baseline checks (partial view)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the result cache")
    parser.add_argument("--cache-dir", metavar="DIR", type=pathlib.Path,
                        default=None,
                        help="result-cache directory (default: "
                             "tools/repro_lint/.cache)")
    parser.add_argument("--baseline", metavar="FILE", type=pathlib.Path,
                        default=engine.DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in "
                             "tools/repro_lint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline file from the current "
                             "findings (justifications become TODO "
                             "markers to fill in)")
    parser.add_argument("--project-root", metavar="DIR", type=pathlib.Path,
                        default=engine.REPO,
                        help="root for scope-relative paths (default: "
                             "the repository root)")
    return parser


def _changed_files(ref: str, root: pathlib.Path) -> List[str]:
    """Repo-relative .py paths ``git diff`` reports changed against ref."""
    proc = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", ref, "--",
         "*.py"],
        cwd=str(root), capture_output=True, text=True, check=True)
    out: List[str] = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line and (root / line).is_file():
            out.append(str(root / line))
    return out


def _apply_fixes(paths: List[str], root: pathlib.Path) -> int:
    """Rewrite fixable findings in place; returns the fix count."""
    from .fixes import fix_source
    total = 0
    for path in engine.iter_py_files(paths, root):
        relpath = engine.to_relpath(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue   # the lint run reports it as E902
        fixed, applied = fix_source(relpath, source)
        if applied:
            path.write_text(fixed, encoding="utf-8")
            total += applied
    return total


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules or args.explain:
        engine.load_plugins()
        try:
            if args.explain:
                print("\n".join(engine.explain(c) for c in args.explain))
            else:
                for code in sorted(engine.RULES):
                    rule = engine.RULES[code]
                    print(f"{code}  {rule.name}: {rule.summary}")
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0

    paths = args.paths
    subset = False
    if args.changed_since:
        if paths:
            print("repro-lint: error: --changed-since and explicit "
                  "paths are mutually exclusive", file=sys.stderr)
            return 2
        try:
            paths = _changed_files(args.changed_since, args.project_root)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"repro-lint: error: git diff against "
                  f"{args.changed_since!r} failed: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(f"repro-lint clean: no .py files changed since "
                  f"{args.changed_since}")
            return 0
        subset = True

    if args.fix:
        try:
            fixed = _apply_fixes(paths, args.project_root)
        except PathError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        print(f"fixed {fixed} issue(s)")

    baseline = None
    baseline_errors: List[engine.Finding] = []
    if not args.no_baseline and not args.write_baseline \
            and args.baseline.exists():
        baseline, baseline_errors = load_baseline(args.baseline)

    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    cache = None
    if not args.no_cache and select is None and not subset:
        from .cache import LintCache
        cache = LintCache(args.cache_dir)
    try:
        result = engine.run_paths(paths, root=args.project_root,
                                  baseline=baseline, select=select,
                                  cache=cache, subset=subset)
    except PathError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if cache is not None:
        cache.save()

    findings = sorted(result.findings + baseline_errors)
    if args.write_baseline:
        contexts = result.project.by_path if result.project else {}
        write_baseline(args.baseline, findings, contexts)
        print(f"baseline written: {len(findings)} finding(s) -> "
              f"{args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "files": result.file_count,
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        }, indent=2))
    elif args.format == "sarif":
        from .sarif import to_sarif
        print(json.dumps(to_sarif(findings), indent=2))
    else:
        for f in findings:
            print(f.render())
        silenced = (f" ({len(result.suppressed)} suppressed, "
                    f"{len(result.baselined)} baselined)"
                    if result.suppressed or result.baselined else "")
        if findings:
            print(f"\n{len(findings)} finding(s) in "
                  f"{result.file_count} file(s){silenced}")
        else:
            print(f"repro-lint clean: {result.file_count} "
                  f"file(s){silenced}")
    return 1 if findings else 0
