"""Entry point: ``PYTHONPATH=tools python -m repro_lint [paths...]``."""

import sys

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
