"""Small AST helpers shared by the rule plugins."""

from __future__ import annotations

import ast
from typing import Optional


def dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None if not a chain)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``np.random.rand`` for that call)."""
    return dotted(node.func)


def enclosing_function(ctx, node: ast.AST) -> Optional[ast.AST]:
    """The nearest enclosing (async or plain) function definition."""
    for _, parent in ctx.ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def in_async_body(ctx, node: ast.AST) -> bool:
    """True when the *nearest* enclosing function is ``async def``.

    A sync ``def`` nested inside an ``async def`` shields its body: that
    code runs wherever the closure is called (often ``run_in_executor``),
    not on the event loop.
    """
    return isinstance(enclosing_function(ctx, node), ast.AsyncFunctionDef)
