"""RL006 — seed provenance: every RNG must trace back to a threaded seed.

The determinism story (``jobs=1 == jobs=N``, golden pins, bit-exact
preset equivalence) requires more than "no unseeded RNGs" (RL001): the
seed an RNG *is* built from must flow in from the caller — a function
parameter, ``self``-carried state, or ``RunConfig.seed`` — never appear
out of thin air.  Three anti-patterns defeat that silently:

* a **literal integer seed** baked into library code: every call
  produces the same stream no matter what the harness asked for, so two
  "independent" runs correlate perfectly and the CLI ``--seed`` flag
  lies;
* a **discarded spawn**: ``seed_seq.spawn(n)`` as a bare expression
  statement advances the parent's spawn counter and throws the children
  away — sibling streams silently shift;
* **one SeedSequence feeding two generators**: two streams built from
  the same sequence are bit-identical, not independent — Monte-Carlo
  variance estimates collapse.

The checks run on the function-local def-use chains of
:mod:`repro_lint.dataflow`, so a seed laundered through locals
(``s = 42; default_rng(s)``) is still caught, while anything whose
provenance is genuinely unknown (module globals, call results) is
deliberately allowed — precision over recall.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..dataflow import FunctionFlow, _shallow_walk, literal_int
from ..engine import FileContext, Finding, Rule, register

#: constructors taking a seed/entropy argument (numpy seeded surface)
_SEED_CTORS = frozenset({
    "default_rng", "SeedSequence", "PCG64", "PCG64DXSM", "Philox",
    "SFC64", "MT19937",
})


def _ctor_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _SEED_CTORS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _SEED_CTORS:
        return func.attr
    return None


def _seed_arg(call: ast.Call) -> Optional[ast.AST]:
    """The seed-carrying argument of a seed-family constructor call."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "entropy"):
            return kw.value
    return None


def _module_level_statements(tree: ast.AST) -> Iterable[ast.AST]:
    """Walk the module without descending into function/class-method bodies."""
    todo = list(ast.iter_child_nodes(tree))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        todo.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.AST) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _literal_origin(flow: Optional[FunctionFlow],
                    expr: ast.AST) -> Optional[int]:
    """An integer-literal value ``expr`` (or any of its origins) carries."""
    direct = literal_int(expr)
    if direct is not None:
        return direct
    if flow is not None:
        for origin in flow.origins(expr):
            value = literal_int(origin)
            if value is not None:
                return value
    return None


def _check_constructions(ctx: FileContext, calls: List[ast.Call],
                         flow: Optional[FunctionFlow]
                         ) -> Iterable[Finding]:
    #: bare local name used as the seed of a constructor → call sites
    consumers: Dict[str, List[Tuple[ast.Call, str]]] = {}
    for call in calls:
        ctor = _ctor_name(call)
        if ctor is None:
            continue
        seed = _seed_arg(call)
        if seed is None:
            continue   # argument-less constructors are RL001's finding
        value = _literal_origin(flow, seed)
        if value is not None:
            yield Finding(
                ctx.relpath, call.lineno, "RL006",
                f"literal integer seed {value} reaches {ctor}(): library "
                f"code must derive its seed from the caller (a seed "
                f"parameter / RunConfig.seed), or every run replays the "
                f"same stream regardless of --seed")
        if isinstance(seed, ast.Name) and flow is not None:
            consumers.setdefault(seed.id, []).append((call, ctor))
    for name, sites in consumers.items():
        if len(sites) < 2 or flow is None:
            continue
        # only flag names that demonstrably hold a SeedSequence: the
        # `rng if isinstance(...) else default_rng(rng)` idiom passes a
        # parameter to one constructor and must stay silent
        if not any(
                isinstance(origin, ast.Call)
                and _ctor_name(origin) == "SeedSequence"
                for origin in flow.origins(ast.Name(id=name,
                                                    ctx=ast.Load()))):
            continue
        for call, ctor in sites[1:]:
            yield Finding(
                ctx.relpath, call.lineno, "RL006",
                f"SeedSequence {name!r} already consumed by another "
                f"generator in this function; two streams built from one "
                f"sequence are bit-identical, not independent — "
                f".spawn() children instead")


def _check(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    # discarded spawn children: statement-position .spawn() anywhere
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "spawn"):
            findings.append(Finding(
                ctx.relpath, node.lineno, "RL006",
                ".spawn() children discarded: the call advances the "
                "parent SeedSequence's spawn counter and drops the "
                "children, silently shifting every later sibling stream"))
    order = lambda n: (n.lineno, n.col_offset)   # walk order is not source order
    module_calls = sorted((n for n in _module_level_statements(ctx.tree)
                           if isinstance(n, ast.Call)), key=order)
    findings.extend(_check_constructions(ctx, module_calls, None))
    for func in _functions(ctx.tree):
        flow = FunctionFlow(func)
        calls = sorted((n for n in _shallow_walk(func)
                        if isinstance(n, ast.Call)), key=order)
        findings.extend(_check_constructions(ctx, calls, flow))
    return findings


register(Rule(
    code="RL006", name="seed-flow",
    summary="RNG seeds must flow from the caller, once, and never be "
            "literals.",
    explain="""\
Scope: src/repro/ (tests/benchmarks pin literal seeds legitimately).
Runs the def-use pass (repro_lint/dataflow.py) over every function and
flags three seed-provenance defects:

* a literal integer seed reaching `default_rng` / `SeedSequence` /
  a bit-generator constructor — directly or laundered through locals
  (`s = 42; default_rng(s)`).  Library streams must derive from a seed
  parameter, self-carried seed state, or RunConfig.seed;
* `seed_seq.spawn(n)` in statement position — the children are
  discarded but the parent's spawn counter still advances, so every
  later sibling stream silently shifts;
* one local that provably holds a `SeedSequence(...)` passed as the
  seed of two or more generator constructions in the same function —
  the streams are bit-identical, not independent; spawn children
  instead.

Unknown provenance (module globals, call results, attributes) is
deliberately not flagged: the rule reports confident defects only.""",
    scope=lambda relpath: relpath.startswith("src/repro/"),
    file_check=_check))
