"""RL004 — blocking calls in the asyncio serving layer.

One synchronous sleep or blocking wait inside an ``async def`` under
src/repro/serve/ parks the entire event loop: every in-flight request
stalls, the stdio front-end stops reading, and under backpressure the
whole server can deadlock against a pipelining client.  The scheduler's
fairness and latency contracts all assume the loop never blocks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Finding, Rule, register
from ._util import call_name, in_async_body

#: dotted callee names that block the calling thread outright
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "socket.create_connection", "urllib.request.urlopen",
})
#: builtins that perform synchronous I/O when called on the loop
_BLOCKING_BUILTINS = frozenset({"open", "input"})


def _check(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        in_async = in_async_body(ctx, node)
        if name == "time.sleep":
            # Flagged everywhere under serve/ (not just async bodies):
            # this layer's sync methods run on or adjacent to the loop
            # thread, and the legitimate worker-side exceptions must be
            # documented with a justified suppression.
            where = ("inside an async def" if in_async
                     else "in the serving layer")
            yield Finding(
                ctx.relpath, node.lineno, "RL004",
                f"time.sleep {where} blocks the event loop; use "
                f"await asyncio.sleep(...) (or justify a worker-side "
                f"sleep with a suppression)")
        elif not in_async:
            continue
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "result" and not node.args):
            yield Finding(
                ctx.relpath, node.lineno, "RL004",
                "synchronous Future.result() inside an async def blocks "
                "the loop until the future resolves; await an asyncio "
                "wrapper (wrap_future / run_in_executor) instead")
        elif name in _BLOCKING_CALLS or name in _BLOCKING_BUILTINS:
            yield Finding(
                ctx.relpath, node.lineno, "RL004",
                f"blocking call {name}(...) inside an async def; move "
                f"it off-loop via loop.run_in_executor(...)")


register(Rule(
    code="RL004", name="blocking-in-async",
    summary="No synchronous blocking on the serve/ event loop.",
    explain="""\
Scope: src/repro/serve/ only.  Flags:

* `time.sleep(...)` anywhere in the layer — inside `async def` it parks
  the loop outright; in sync helpers it is allowed only with a justified
  suppression (e.g. the worker-side warmup dwell in serve/pool.py, which
  runs in a pool worker process, never on the loop);
* inside `async def` bodies additionally: `concurrent.futures`-style
  `.result()` (use `asyncio.wrap_future`/`run_in_executor`), `open()`,
  `input()`, `subprocess.*`, `os.system`, socket/urllib connects.

A sync `def` nested inside an `async def` is exempt: its body runs where
the closure is invoked (typically handed to `run_in_executor`, like the
stdio front-end's off-loop response writer).  `asyncio.sleep` and awaited
executor hops never match.""",
    scope=lambda relpath: relpath.startswith("src/repro/serve/"),
    file_check=_check))
