"""RL007 — RunConfig coherence: every field on every surface.

``RunConfig`` is the one value that crosses every boundary in the stack:
validated in ``__post_init__``, JSON round-tripped by
``to_dict``/``from_dict``, materialised by the preset table, exposed as a
CLI flag, and embedded in ``BENCH_*.json`` records.  Adding a field is
therefore a *seven-surface* change, and history shows the failure mode:
the field lands in the dataclass, works in unit tests, and silently
cannot be set from the command line (or silently vanishes from bench
records) because one surface was missed.

This rule makes the surfaces statically checkable.  It finds the
``RunConfig`` dataclass (a class of that name in a ``config.py``), reads
its field list straight from the annotated assignments (``ClassVar``
annotations excluded), and then demands, for **every** field:

* a ``self.<field>`` use inside ``__post_init__`` (validation),
* a ``<field>:`` entry in the class docstring's field catalogue,
* coverage by ``to_dict`` / ``from_dict`` — generic implementations
  (``dataclasses.asdict`` / ``field_names()``) cover all fields at once,
* an explicit ``"<field>"`` key in **each** preset of the
  ``PRESET_FIELDS`` table (riding a dataclass default is exactly the
  silent drift this rule exists to stop),
* a ``--<field-with-dashes>`` flag *and* a ``"<field>"`` wiring string
  in the sibling ``cli.py``,
* a ``RunConfig.from_dict`` validation call in the sibling ``report.py``
  (generic: the bench-record schema follows the dataclass).

Surfaces whose file is not part of the lint run are skipped, so partial
runs and fixtures stay usable; on the full tree every surface is live.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..engine import FileContext, Finding, Project, Rule, register

_CLASS = "RunConfig"
_TABLE = "PRESET_FIELDS"


def _is_classvar(annotation: ast.AST) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return isinstance(node, ast.Name) and node.id == "ClassVar"


def _find_runconfig(project: Project
                    ) -> Tuple[Optional[FileContext],
                               Optional[ast.ClassDef]]:
    for ctx in sorted(project.files, key=lambda c: c.relpath):
        if ctx.relpath.split("/")[-1] != "config.py" or ctx.tree is None:
            continue
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == _CLASS:
                return ctx, node
    return None, None


def _dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    fields: List[Tuple[str, int]] = []
    for node in cls.body:
        if (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and not node.target.id.startswith("_")
                and not _is_classvar(node.annotation)):
            fields.append((node.target.id, node.lineno))
    return fields


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    for node in cls.body:
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name):
            return node
    return None


def _self_attrs(func: ast.AST) -> set:
    return {n.attr for n in ast.walk(func)
            if isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name) and n.value.id == "self"}


def _string_constants(node: ast.AST) -> set:
    return {n.value for n in ast.walk(node)
            if isinstance(n, ast.Constant) and isinstance(n.value, str)}


def _calls_any(func: ast.AST, names: set) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Name) and f.id in names:
            return True
        if isinstance(f, ast.Attribute) and f.attr in names:
            return True
    return False


def _preset_table(cls: ast.ClassDef) -> Optional[ast.AST]:
    for node in cls.body:
        target = None
        if isinstance(node, ast.AnnAssign):
            target = node.target
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        if (isinstance(target, ast.Name) and target.id == _TABLE
                and isinstance(getattr(node, "value", None), ast.Dict)):
            return node.value
    return None


def _preset_entries(table: ast.Dict
                    ) -> Iterable[Tuple[str, ast.Dict]]:
    for key, value in zip(table.keys, table.values):
        if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                and isinstance(value, ast.Dict)):
            yield key.value, value


def _docstring_entries(cls: ast.ClassDef) -> set:
    doc = ast.get_docstring(cls) or ""
    return {line.strip().rstrip(":") for line in doc.splitlines()
            if line.strip().endswith(":")}


def _check(project: Project) -> Iterable[Finding]:
    ctx, cls = _find_runconfig(project)
    if ctx is None or cls is None:
        return []
    findings: List[Finding] = []
    fields = _dataclass_fields(cls)
    here = ctx.relpath

    post_init = _method(cls, "__post_init__")
    validated = _self_attrs(post_init) if post_init is not None else None
    if post_init is None:
        findings.append(Finding(
            here, cls.lineno, "RL007",
            f"{_CLASS} has no __post_init__: every field must be "
            f"validated at construction"))

    doc_entries = _docstring_entries(cls)

    to_dict = _method(cls, "to_dict")
    to_dict_generic = (to_dict is not None
                       and _calls_any(to_dict, {"asdict"}))
    from_dict = _method(cls, "from_dict")
    from_dict_generic = (from_dict is not None
                         and _calls_any(from_dict,
                                        {"field_names", "fields"}))
    for name, missing in (("to_dict", to_dict), ("from_dict", from_dict)):
        if missing is None:
            findings.append(Finding(
                here, cls.lineno, "RL007",
                f"{_CLASS} has no {name}(): the JSON round-trip surface "
                f"is part of the config contract"))

    table = _preset_table(cls)
    presets = list(_preset_entries(table)) if table is not None else []
    if table is None:
        findings.append(Finding(
            here, cls.lineno, "RL007",
            f"{_CLASS} has no {_TABLE} table: presets must name every "
            f"field explicitly so new fields cannot silently ride "
            f"dataclass defaults"))
    field_names = {name for name, _ in fields}
    for preset_name, entry in presets:
        entry_keys = {k.value for k in entry.keys
                      if isinstance(k, ast.Constant)
                      and isinstance(k.value, str)}
        for extra in sorted(entry_keys - field_names):
            findings.append(Finding(
                here, entry.lineno, "RL007",
                f"preset {preset_name!r} names {extra!r}, which is not "
                f"a {_CLASS} field"))

    # sibling-surface files (skipped when absent from this run)
    pkg_dir = here.rsplit("/", 1)[0] if "/" in here else ""
    cli_ctx = project.by_path.get(
        f"{pkg_dir}/cli.py" if pkg_dir else "cli.py")
    cli_strings = (_string_constants(cli_ctx.tree)
                   if cli_ctx is not None and cli_ctx.tree is not None
                   else None)
    report_ctx = project.by_path.get(
        f"{pkg_dir}/report.py" if pkg_dir else "report.py")
    if report_ctx is not None and report_ctx.tree is not None:
        validates = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "from_dict"
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id == _CLASS
            for n in ast.walk(report_ctx.tree))
        if not validates:
            findings.append(Finding(
                report_ctx.relpath, 1, "RL007",
                f"report.py never validates bench-record run_config "
                f"via {_CLASS}.from_dict: BENCH_*.json records could "
                f"carry configs the library cannot parse back"))

    for name, lineno in fields:
        if validated is not None and name not in validated:
            findings.append(Finding(
                here, lineno, "RL007",
                f"field {name!r} is never touched in __post_init__: "
                f"every field is validated at construction"))
        if name not in doc_entries:
            findings.append(Finding(
                here, lineno, "RL007",
                f"field {name!r} missing from the {_CLASS} docstring's "
                f"field catalogue (a '{name}:' entry)"))
        if (to_dict is not None and not to_dict_generic
                and name not in _string_constants(to_dict)):
            findings.append(Finding(
                here, lineno, "RL007",
                f"field {name!r} not covered by to_dict(): the JSON "
                f"round-trip would silently drop it"))
        if (from_dict is not None and not from_dict_generic
                and name not in _string_constants(from_dict)):
            findings.append(Finding(
                here, lineno, "RL007",
                f"field {name!r} not covered by from_dict(): "
                f"round-tripped configs would lose it"))
        for preset_name, entry in presets:
            entry_keys = {k.value for k in entry.keys
                          if isinstance(k, ast.Constant)}
            if name not in entry_keys:
                findings.append(Finding(
                    here, entry.lineno, "RL007",
                    f"field {name!r} missing from preset "
                    f"{preset_name!r} in {_TABLE}: every preset names "
                    f"every field explicitly"))
        if cli_strings is not None:
            flag = "--" + name.replace("_", "-")
            if flag not in cli_strings:
                findings.append(Finding(
                    cli_ctx.relpath, 1, "RL007",
                    f"no {flag} flag in cli.py: {_CLASS} field "
                    f"{name!r} cannot be set from the command line"))
            elif name not in cli_strings:
                findings.append(Finding(
                    cli_ctx.relpath, 1, "RL007",
                    f"{flag} exists but {name!r} never appears as a "
                    f"wiring string in cli.py: the flag's value is "
                    f"not threaded into the config overrides"))
    return findings


register(Rule(
    code="RL007", name="config-coherence",
    summary="Every RunConfig field must appear on every config surface.",
    explain="""\
Locates the RunConfig dataclass (class `RunConfig` in a config.py),
reads its fields from the annotated assignments (ClassVar excluded),
and requires each field to appear on every surface of the config
contract:

* validated in `__post_init__` (a `self.<field>` use),
* documented in the class docstring's field catalogue (`<field>:`),
* covered by `to_dict`/`from_dict` — generic implementations via
  `dataclasses.asdict` / `field_names()` cover everything at once,
* named explicitly in **each** preset of the `PRESET_FIELDS` table
  (presets must not ride dataclass defaults: that is how a new field
  silently diverges between presets),
* exposed in the sibling cli.py as a `--field-with-dashes` flag whose
  field name also appears as a wiring string,
* validated in the sibling report.py via `RunConfig.from_dict` (the
  BENCH_*.json record schema).

Preset keys that are not fields, and a missing table/method, are also
findings.  Surfaces whose file is absent from the lint run are skipped,
so fixture/partial runs work; the repo gate lints the full tree.""",
    project_check=_check))
