"""Stdlib hygiene rules: the ruff-mirror subset (E9/F401/F811/W19x/W29x).

Ported from the original single-file ``tools/lint.py`` so the no-ruff
container enforces the same set pyproject.toml selects for ruff.  Keep
:data:`repro_lint.engine.RUFF_SELECT` and the pyproject ``select`` list in
sync — ``tests/test_repro_lint.py`` asserts it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from ..engine import FileContext, Finding, Rule, register


class _ImportCollector(ast.NodeVisitor):
    """Collect imported bindings and every name usage in one pass."""

    def __init__(self) -> None:
        self.imports: List[Tuple[str, int, bool]] = []  # (name, line, re-export)
        self.used: set = set()
        self.exported: set = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            # `import numpy.linalg` binds `numpy`; `import x.y as z` binds z
            bound = alias.asname or alias.name.split(".")[0]
            redundant = alias.asname is not None \
                and alias.asname == alias.name
            self.imports.append((bound, node.lineno, redundant))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            redundant = alias.asname is not None \
                and alias.asname == alias.name
            self.imports.append((bound, node.lineno, redundant))

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # names listed in __all__ count as used (public re-exports)
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for elt in ast.walk(node.value):
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        self.exported.add(elt.value)
        self.generic_visit(node)


def _collected(ctx: FileContext) -> _ImportCollector:
    collector = ctx.cache.get("hygiene.imports")
    if collector is None:
        collector = _ImportCollector()
        collector.visit(ctx.tree)
        ctx.cache["hygiene.imports"] = collector
    return collector


def _check_f401(ctx: FileContext) -> Iterable[Finding]:
    collector = _collected(ctx)
    for name, lineno, redundant in collector.imports:
        if redundant or name == "_":
            continue   # `import X as X`: the sanctioned re-export spelling
        if name in collector.used or name in collector.exported:
            continue
        yield Finding(ctx.relpath, lineno, "F401",
                      f"{name!r} imported but unused")


def _check_f811(ctx: FileContext) -> Iterable[Finding]:
    # Module level only: deferred imports inside two different functions
    # legitimately bind the same name.
    collector = _collected(ctx)
    top_level = {node.lineno for node in ctx.tree.body
                 if isinstance(node, (ast.Import, ast.ImportFrom))}
    seen: dict = {}
    for name, lineno, redundant in collector.imports:
        if redundant or lineno not in top_level:
            continue
        prev = seen.get(name)
        if prev is not None and prev != lineno:
            yield Finding(ctx.relpath, lineno, "F811",
                          f"redefinition of imported name {name!r} "
                          f"(first import at line {prev})")
        seen.setdefault(name, lineno)


def _check_whitespace(code: str):
    def check(ctx: FileContext) -> Iterable[Finding]:
        for i, line in enumerate(ctx.lines, 1):
            if code == "W291" and line != line.rstrip():
                yield Finding(ctx.relpath, i, "W291", "trailing whitespace")
            if code == "W191":
                indent = line[:len(line) - len(line.lstrip())]
                if "\t" in indent:
                    yield Finding(ctx.relpath, i, "W191",
                                  "tab in indentation")
        if code == "W292" and ctx.source and not ctx.source.endswith("\n"):
            yield Finding(ctx.relpath, len(ctx.lines), "W292",
                          "no newline at end of file")
    return check


register(Rule(
    code="E999", name="syntax-error",
    summary="The file does not parse; nothing else can be checked.",
    explain="""\
Emitted by the engine itself during the shared parse pass.  Unparseable
files fail the gate immediately and are exempt from every other rule
(there is no AST to check).  Not suppressible or baselinable."""))

register(Rule(
    code="E902", name="unreadable-file",
    summary="The file cannot be read or decoded as UTF-8.",
    explain="""\
Emitted by the engine's file loader.  Not suppressible or baselinable."""))

register(Rule(
    code="F401", name="unused-import",
    summary="An imported name is never used in the module.",
    explain="""\
Escape hatches (both also honoured by ruff): re-exports spelled
`import X as X` / `from m import X as X` (the PEP 484 convention) and
names listed in `__all__`.""",
    file_check=_check_f401))

register(Rule(
    code="F811", name="duplicate-import",
    summary="A module-level import rebinds a name an earlier import bound.",
    explain="""\
Only module-level imports are considered: deferred imports inside two
different functions legitimately bind the same name.""",
    file_check=_check_f811))

register(Rule(
    code="W191", name="tab-indentation",
    summary="A line is indented with a tab character.",
    explain="The repo indents with spaces only; tabs break the diff tools.",
    file_check=_check_whitespace("W191")))

register(Rule(
    code="W291", name="trailing-whitespace",
    summary="A line ends in spaces or tabs.",
    explain="Trailing whitespace churns diffs and trips strict editors.",
    file_check=_check_whitespace("W291")))

register(Rule(
    code="W292", name="missing-final-newline",
    summary="The file's last line has no terminating newline.",
    explain="POSIX text files end in a newline; several tools misread "
            "files that don't.",
    file_check=_check_whitespace("W292")))
