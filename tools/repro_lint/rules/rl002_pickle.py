"""RL002 — pool-boundary pickle safety.

Everything crossing the ``WorkerPool`` boundary is pickled (under every
start method the serving layer uses — spawn and forkserver pickle the
callable too, not just the arguments).  A lambda, a function nested
inside another function, or a bound method of a function-local object
pickles never or only by accident — and the failure surfaces as an opaque
``PicklingError`` from a worker, far from the call site.  This rule moves
that failure to lint time.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..engine import FileContext, Finding, Rule, register

#: plain-name calls whose callable/kernel argument crosses the boundary
_NAME_TARGETS = {
    "pool_map": ("fn", 0),
    "run_tiled": ("kernel", 0),
    "build_tile_tasks": ("kernel", 0),
}
#: method calls whose first argument crosses the boundary (WorkerPool's
#: submit/map; ServingClient.submit takes a kernel *name* string, which
#: this rule never flags, so the shared method name is harmless)
_ATTR_TARGETS = {"submit", "map"}
#: constructors whose every argument is shipped to workers
_CTOR_TARGETS = {"EngineFactory"}


class _Scope:
    """Names bound locally inside one enclosing function."""

    def __init__(self, func: ast.AST) -> None:
        self.variables: set = {a.arg for a in func.args.args
                               + func.args.posonlyargs
                               + func.args.kwonlyargs}
        if func.args.vararg:
            self.variables.add(func.args.vararg.arg)
        if func.args.kwarg:
            self.variables.add(func.args.kwarg.arg)
        self.functions: set = set()
        self.lambda_vars: set = set()
        self._prescan(func)

    def _prescan(self, func: ast.AST) -> None:
        todo = list(ast.iter_child_nodes(func))
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.add(node.name)
                continue   # deeper bindings belong to the nested scope
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.variables.add(target.id)
                        if isinstance(node.value, ast.Lambda):
                            self.lambda_vars.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    self.variables.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for n in ast.walk(node.target):
                    if isinstance(n, ast.Name):
                        self.variables.add(n.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        self.variables.add(item.optional_vars.id)
            todo.extend(ast.iter_child_nodes(node))


def _offending_args(node: ast.Call) -> List[Tuple[ast.AST, str]]:
    """(arg node, boundary description) pairs this call ships to workers."""
    func = node.func
    out: List[Tuple[ast.AST, str]] = []
    if isinstance(func, ast.Name) and func.id in _NAME_TARGETS:
        kw_name, pos = _NAME_TARGETS[func.id]
        arg = next((k.value for k in node.keywords if k.arg == kw_name),
                   node.args[pos] if len(node.args) > pos else None)
        if arg is not None:
            out.append((arg, f"{func.id}({kw_name}=...)"))
    elif isinstance(func, ast.Attribute) and func.attr in _ATTR_TARGETS:
        if node.args:
            out.append((node.args[0], f".{func.attr}(...)"))
    elif isinstance(func, ast.Name) and func.id in _CTOR_TARGETS:
        for arg in node.args:
            out.append((arg, f"{func.id}(...)"))
        for kw in node.keywords:
            out.append((kw.value, f"{func.id}({kw.arg}=...)"))
    return out


def _classify(arg: ast.AST, scopes: List[_Scope]) -> Optional[str]:
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name):
        if any(arg.id in s.functions for s in scopes):
            return f"nested function {arg.id!r}"
        if any(arg.id in s.lambda_vars for s in scopes):
            return f"lambda-valued local {arg.id!r}"
    if (isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and any(arg.value.id in s.variables for s in scopes)):
        return (f"bound method {arg.value.id}.{arg.attr} of a "
                f"function-local object")
    return None


def _check(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []

    def visit(node: ast.AST, scopes: List[_Scope]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes = scopes + [_Scope(node)]
        elif isinstance(node, ast.Call) and scopes:
            for arg, boundary in _offending_args(node):
                why = _classify(arg, scopes)
                if why is not None:
                    findings.append(Finding(
                        ctx.relpath, arg.lineno, "RL002",
                        f"{why} passed across the worker-pool boundary "
                        f"via {boundary}: not picklable under "
                        f"spawn/forkserver — use a module-level function "
                        f"(or a picklable factory like EngineFactory)"))
        for child in ast.iter_child_nodes(node):
            visit(child, scopes)

    visit(ctx.tree, [])
    return findings


register(Rule(
    code="RL002", name="pool-pickle-safety",
    summary="Callables crossing the WorkerPool boundary must be picklable.",
    explain="""\
Flags, at any call to pool_map(fn, ...), WorkerPool .submit/.map,
run_tiled/build_tile_tasks(kernel=...) or EngineFactory(...):

* a lambda (or a local variable assigned a lambda),
* a function nested inside the calling function,
* a bound method of a function-local object (`obj.meth` where `obj` is a
  parameter or local variable),

because the pool pickles the callable under spawn/forkserver and these
forms fail (or capture unpicklable state) at runtime, as an opaque
worker-side PicklingError.  Module-level functions, KERNELS name strings
and picklable factories (EngineFactory) are the sanctioned currencies.
Module-scope calls are exempt: only function bodies can close over
function-local state.""",
    file_check=_check))
