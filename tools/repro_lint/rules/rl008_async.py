"""RL008 — whole-program async-concurrency defects.

RL004 catches blocking calls written *directly* inside an ``async def``.
The serving bugs that actually bite are one step removed: the coroutine
that was never awaited (it silently does nothing), the
``create_task``/``ensure_future`` whose result is dropped (the task can
be garbage-collected mid-flight and its exception is swallowed), the
thread lock held across an ``await`` (every other coroutine needing the
lock deadlocks behind the suspended holder), the innocuous sync helper
that hides a ``time.sleep`` three calls deep, and the lambda that rides
a helper into the worker-pool pickle boundary.

All of these need the whole-program view, so this rule runs on the
shared call graph (:meth:`~repro_lint.engine.Project.call_graph`):

* **unawaited coroutine** — a statement-position call that resolves to
  an ``async def``;
* **dropped task handle** — ``create_task(...)`` / ``ensure_future(...)``
  in statement position;
* **lock across await** — a synchronous ``with <lock>:`` (the name or
  attribute mentions "lock", or the context expression is a
  ``threading.Lock``-family constructor) whose body contains ``await``
  inside an ``async def``; ``async with`` never matches.  This is also
  the refcount hazard: the scene-store pin counts are guarded by these
  locks, so holding one across a suspension point stalls every release;
* **transitive blocking** — a call inside an ``async def`` to a sync
  function from which the graph can reach a blocking call (RL004's
  catalogue).  Blocking calls already silenced by a justified
  RL004/RL008 suppression at their own line do not count as sources;
* **transitive pickle boundary** — RL002's check extended through the
  graph: a parameter that is forwarded (possibly through several hops)
  into ``pool_map``/``.submit``/``.map``/``run_tiled(kernel=)``/
  ``EngineFactory`` marks its position as a boundary, and passing a
  lambda / nested function / local bound method there is flagged at the
  outermost call site.  Direct boundary calls stay RL002's finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..callgraph import CallGraph, FuncKey, FunctionInfo
from ..engine import FileContext, Finding, Project, Rule, register
from ._util import call_name
from .rl002_pickle import _classify, _offending_args, _Scope
from .rl004_async import _BLOCKING_BUILTINS, _BLOCKING_CALLS

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore"})


def _src_scope(relpath: str) -> bool:
    return relpath.startswith("src/repro/")


# ---------------------------------------------------------------------------
# component: unawaited coroutines + dropped task handles
# ---------------------------------------------------------------------------
def _stmt_position_calls(graph: CallGraph,
                         project: Project) -> Iterable[Finding]:
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if not _src_scope(info.relpath):
            continue
        mod = graph.by_relpath[info.relpath]
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            f = call.func
            spawner = (f.attr if isinstance(f, ast.Attribute) else
                       f.id if isinstance(f, ast.Name) else None)
            if spawner in _TASK_SPAWNERS:
                yield Finding(
                    info.relpath, node.lineno, "RL008",
                    f"{spawner}(...) result dropped: an unreferenced "
                    f"task can be garbage-collected mid-flight and its "
                    f"exception is silently swallowed — keep the handle "
                    f"(and await or add a done-callback)")
                continue
            target = graph.resolve_call(mod, call, info)
            if target is not None and target.is_async:
                yield Finding(
                    info.relpath, node.lineno, "RL008",
                    f"coroutine {target.qualname}(...) is never awaited: "
                    f"calling an async def only builds the coroutine "
                    f"object — nothing runs and the result is discarded")


# ---------------------------------------------------------------------------
# component: sync lock held across a suspension point
# ---------------------------------------------------------------------------
def _is_lockish(expr: ast.AST) -> bool:
    node = expr
    if isinstance(node, ast.Call):
        f = node.func
        name = (f.attr if isinstance(f, ast.Attribute) else
                f.id if isinstance(f, ast.Name) else None)
        if name in _LOCK_CTORS:
            return True
        node = f
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return any("lock" in p.lower() for p in parts)


def _lock_across_await(graph: CallGraph) -> Iterable[Finding]:
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if not info.is_async or not _src_scope(info.relpath):
            continue
        for node in ast.walk(info.node):
            if not isinstance(node, ast.With):
                continue
            if not any(_is_lockish(item.context_expr)
                       for item in node.items):
                continue
            suspension = next(
                (n for b in node.body for n in ast.walk(b)
                 if isinstance(n, ast.Await)), None)
            if suspension is not None:
                yield Finding(
                    info.relpath, node.lineno, "RL008",
                    f"thread lock held across await (line "
                    f"{suspension.lineno}) in async "
                    f"{info.qualname}(): the holder suspends while "
                    f"every other coroutine (and thread) needing the "
                    f"lock deadlocks behind it — release before "
                    f"awaiting, or use asyncio.Lock with async with")


# ---------------------------------------------------------------------------
# component: blocking calls reachable from async call sites
# ---------------------------------------------------------------------------
def _blocking_call_in(info: FunctionInfo,
                      ctx: Optional[FileContext]) -> Optional[str]:
    """Name of an unsuppressed blocking call directly in this body."""
    silenced: Set[int] = set()
    if ctx is not None:
        for s in ctx.suppressions:
            if any(c in ("RL004", "RL008") for c in s.codes):
                silenced.add(s.target_line)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call) or node.lineno in silenced:
            continue
        name = call_name(node)
        if name in _BLOCKING_CALLS or name in _BLOCKING_BUILTINS:
            return name
    return None


def _transitive_blocking(graph: CallGraph,
                         project: Project) -> Iterable[Finding]:
    direct: Dict[FuncKey, str] = {}
    for key, info in graph.functions.items():
        name = _blocking_call_in(info, project.by_path.get(info.relpath))
        if name is not None:
            direct[key] = name
    # propagate: blocks[f] = the blocking call some callee chain reaches
    blocks: Dict[FuncKey, str] = dict(direct)
    callers = graph.callers()
    queue = list(direct)
    while queue:
        key = queue.pop(0)
        for caller in callers.get(key, ()):
            if caller not in blocks:
                blocks[caller] = blocks[key]
                queue.append(caller)
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if not info.is_async or not _src_scope(info.relpath):
            continue
        mod = graph.by_relpath[info.relpath]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = graph.resolve_call(mod, node, info)
            if (target is None or target.is_async
                    or target.key not in blocks):
                continue
            yield Finding(
                info.relpath, node.lineno, "RL008",
                f"async {info.qualname}() calls {target.qualname}(), "
                f"which reaches blocking {blocks[target.key]}(...) "
                f"through the call graph: the event loop parks for the "
                f"full duration — move the chain off-loop via "
                f"run_in_executor")


# ---------------------------------------------------------------------------
# component: pickle boundary, transitively
# ---------------------------------------------------------------------------
def _param_names(info: FunctionInfo) -> List[str]:
    a = info.node.args
    names = [x.arg for x in a.posonlyargs + a.args]
    if info.class_name is not None and names and names[0] in ("self",
                                                              "cls"):
        names = names[1:]
    return names


def _boundary_params(graph: CallGraph) -> Dict[FuncKey, Set[str]]:
    """Fixpoint: parameters that flow into a worker-pool boundary."""
    boundary: Dict[FuncKey, Set[str]] = {}
    for key, info in graph.functions.items():
        params = set(_param_names(info)) | {
            x.arg for x in info.node.args.kwonlyargs}
        found = {arg.id for node in ast.walk(info.node)
                 if isinstance(node, ast.Call)
                 for arg, _ in _offending_args(node)
                 if isinstance(arg, ast.Name) and arg.id in params}
        if found:
            boundary[key] = found
    changed = True
    while changed:
        changed = False
        for key, info in graph.functions.items():
            params = set(_param_names(info)) | {
                x.arg for x in info.node.args.kwonlyargs}
            mod = graph.by_relpath[info.relpath]
            for call in (n for n in ast.walk(info.node)
                         if isinstance(n, ast.Call)):
                if _offending_args(call):
                    continue   # direct boundary: handled above / RL002
                target = graph.resolve_call(mod, call, info)
                if target is None or target.key not in boundary:
                    continue
                for arg, pname in _call_bindings(target, call):
                    if (pname in boundary[target.key]
                            and isinstance(arg, ast.Name)
                            and arg.id in params
                            and arg.id not in boundary.get(key, set())):
                        boundary.setdefault(key, set()).add(arg.id)
                        changed = True
    return boundary


def _call_bindings(target: FunctionInfo,
                   call: ast.Call) -> Iterable[Tuple[ast.AST, str]]:
    """(argument expression, parameter name) pairs of one call site."""
    names = _param_names(target)
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(names):
            yield arg, names[i]
    for kw in call.keywords:
        if kw.arg is not None:
            yield kw.value, kw.arg


def _transitive_pickle(graph: CallGraph) -> Iterable[Finding]:
    boundary = _boundary_params(graph)
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if not _src_scope(info.relpath):
            continue
        mod = graph.by_relpath[info.relpath]
        scopes = [_Scope(info.node)]
        for call in (n for n in ast.walk(info.node)
                     if isinstance(n, ast.Call)):
            if _offending_args(call):
                continue   # the direct boundary is RL002's finding
            target = graph.resolve_call(mod, call, info)
            if target is None or target.key not in boundary:
                continue
            for arg, pname in _call_bindings(target, call):
                if pname not in boundary[target.key]:
                    continue
                why = _classify(arg, scopes)
                if why is not None:
                    yield Finding(
                        info.relpath, arg.lineno, "RL008",
                        f"{why} passed to {target.qualname}"
                        f"({pname}=...), which forwards it across the "
                        f"worker-pool pickle boundary: not picklable "
                        f"under spawn/forkserver — use a module-level "
                        f"function")


def _check(project: Project) -> Iterable[Finding]:
    graph = project.call_graph()
    findings: List[Finding] = []
    findings.extend(_stmt_position_calls(graph, project))
    findings.extend(_lock_across_await(graph))
    findings.extend(_transitive_blocking(graph, project))
    findings.extend(_transitive_pickle(graph))
    return findings


register(Rule(
    code="RL008", name="async-concurrency",
    summary="Whole-program async/pickle hazards via the shared call graph.",
    explain="""\
Runs on the shared module-resolving call graph over src/repro/ and
flags five whole-program concurrency defects RL002/RL004 cannot see
file-locally:

* a statement-position call that resolves to an `async def` — the
  coroutine is built and discarded, nothing ever runs;
* `create_task(...)` / `ensure_future(...)` in statement position —
  an unreferenced task can be garbage-collected mid-flight and its
  exception is swallowed; bind the handle;
* a synchronous `with <lock>:` whose body awaits, inside an
  `async def` — the holder suspends while every other coroutine and
  thread queues on the lock (the scene-store pin counts sit behind
  exactly such locks); `async with asyncio.Lock()` never matches;
* a call inside an `async def` to a sync function from which the graph
  reaches one of RL004's blocking calls (time.sleep, subprocess,
  urllib, open, ...) any number of hops away.  A blocking call already
  silenced by a justified RL004/RL008 suppression at its own line is
  not counted as a source;
* RL002's pickle-boundary check, transitively: parameters forwarded
  (through any number of resolved hops) into pool_map / .submit /
  .map / run_tiled(kernel=) / EngineFactory mark boundary positions,
  and a lambda, nested function, or local bound method passed there is
  flagged at the outermost call site.  Calls that *are* the boundary
  stay RL002 findings — this rule only adds the hops.""",
    project_check=_check))
