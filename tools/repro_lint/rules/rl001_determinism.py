"""RL001 — determinism: no hidden entropy sources in the library.

``jobs=1 == jobs=N`` and every golden pin in the test suite rest on all
randomness flowing through an explicitly seeded ``numpy.random.Generator``
(derived from a ``SeedSequence`` chain).  One unseeded ``default_rng()``,
one legacy ``np.random.<dist>`` global-state call, one ``random.random()``
or one wall-clock read inside the library silently breaks that contract —
and only shows up as an unreproducible golden-test flake much later.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Finding, Rule, register
from ._util import call_name

#: numpy.random attributes that are part of the *seeded* API surface.
_NP_RANDOM_OK = frozenset({
    "SeedSequence", "Generator", "BitGenerator", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: stdlib `random` module functions (global-state; all banned).
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "seed", "Random", "SystemRandom",
})

#: dotted wall-clock reads (timezone/NTP-dependent values).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "time.asctime",
})

#: wall-clock constructors on datetime/date objects.
_DATETIME_READS = frozenset({"now", "utcnow", "today"})


def _check(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        parts = name.split(".")
        if name in ("np.random.default_rng", "numpy.random.default_rng",
                    "default_rng") and not node.args and not node.keywords:
            yield Finding(
                ctx.relpath, node.lineno, "RL001",
                "argument-less default_rng() seeds from the OS — thread "
                "a SeedSequence/Generator (or an integer seed) instead")
        elif (name.startswith(("np.random.", "numpy.random."))
                and parts[-1] not in _NP_RANDOM_OK):
            yield Finding(
                ctx.relpath, node.lineno, "RL001",
                f"legacy global-state call {name}(): draws from the "
                f"hidden module RNG; use an explicit seeded Generator")
        elif (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _RANDOM_FUNCS):
            yield Finding(
                ctx.relpath, node.lineno, "RL001",
                f"stdlib {name}() uses interpreter-global RNG state; use "
                f"a seeded numpy Generator threaded from the caller")
        elif name in _WALL_CLOCK or (
                len(parts) >= 2 and parts[-1] in _DATETIME_READS
                and any(p in ("datetime", "date") for p in parts[:-1])):
            yield Finding(
                ctx.relpath, node.lineno, "RL001",
                f"wall-clock read {name}() makes output depend on when "
                f"it runs; monotonic timers (time.perf_counter / "
                f"time.monotonic) are fine for durations")


register(Rule(
    code="RL001", name="determinism",
    summary="Ban unseeded/global RNGs and wall-clock reads in src/repro/.",
    explain="""\
Flags, anywhere under src/repro/ (benchmarks/, tests/, examples/ and
tools/ are out of scope — harness timing code is legitimate there):

* `np.random.default_rng()` with no arguments — seeds from OS entropy,
  silently breaking the jobs=1 == jobs=N bit-identity contract;
* legacy `np.random.<dist>(...)` global-state calls (rand, randn,
  randint, choice, shuffle, seed, ...) — the seeded surface
  (SeedSequence, Generator, default_rng(seed), bit generators) is fine;
* stdlib `random.<fn>(...)` — interpreter-global state;
* wall-clock reads: `time.time()`, `datetime.now()/utcnow()/today()`,
  `time.localtime()` etc.  Monotonic *duration* timers
  (`time.perf_counter`, `time.monotonic`) are deliberately allowed —
  the serving metrics use them and they never feed computed results.

Fix by threading a `numpy.random.SeedSequence`/`Generator` from the
caller (see core/rng.py and the per-tile spawn in apps/executor.py).""",
    scope=lambda relpath: relpath.startswith("src/repro/"),
    file_check=_check))
