"""RL003 — no-unpack hot path (project rule: kernel reachability).

The packed backend's whole speedup rests on registered application
kernels staying in the word domain end to end.  The runtime no-unpack
asserts catch a violation only on the code path a test happens to
execute; this rule proves it statically for every function reachable from
the kernel registry.

Reachability is a conservative, name-based static call graph:

* roots are the functions registered in ``apps/executor.KERNELS``;
* an edge follows every plain-name call (``helper(...)``) resolved
  through the module's own top-level functions and its ``from . import``
  map (relative imports within src/repro/);
* method calls (``engine.maj(...)``, ``batch.select(...)``) are *not*
  followed — the engine/StreamBatch layer keeps its own runtime
  no-unpack asserts, and following untyped attribute calls would drown
  the rule in false edges.

Inside the reachable set the rule flags the bit-expansion markers:
``.to_bits()``, ``.to_bitstream()`` (flagged so every use is *audited*:
the StreamBatch payload wrap is zero-copy, and each call site must say so
with a justified suppression), ``np.unpackbits`` and per-bit Python
loops over the stream length.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import Finding, Project, Rule, register

_EXECUTOR = "src/repro/apps/executor.py"
_UNPACK_ATTRS = frozenset({"to_bits", "to_bitstream"})
_LOOP_NAMES = frozenset({"length", "n_bits", "nbits"})

FuncKey = Tuple[str, str]   # (relpath, function name)


def _top_level_functions(tree: ast.AST) -> Dict[str, ast.AST]:
    return {node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _relative_target(relpath: str, level: int,
                     module: Optional[str]) -> Optional[str]:
    """Resolve ``from ..m import x`` in ``relpath`` to a module relpath."""
    parts = relpath.split("/")[:-1]
    if level - 1 > len(parts):
        return None
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    if module:
        parts = parts + module.split(".")
    return "/".join(parts) + ".py"


def _import_map(relpath: str, tree: ast.AST) -> Dict[str, FuncKey]:
    """imported-name -> (defining module relpath, original name)."""
    out: Dict[str, FuncKey] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level > 0:
            target = _relative_target(relpath, node.level, node.module)
            if target is None:
                continue
            for alias in node.names:
                if alias.name != "*":
                    out[alias.asname or alias.name] = (target, alias.name)
    return out


def _kernel_roots(project: Project) -> List[Tuple[str, FuncKey]]:
    """(kernel registry name, function key) for every KERNELS entry."""
    executor = project.by_path.get(_EXECUTOR)
    if executor is None or executor.tree is None:
        return []
    funcs = _top_level_functions(executor.tree)
    imports = _import_map(_EXECUTOR, executor.tree)
    roots: List[Tuple[str, FuncKey]] = []
    for node in executor.tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "KERNELS"
                        for t in node.targets)
                and isinstance(node.value, ast.Dict)):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not isinstance(value, ast.Name):
                continue
            reg_name = (key.value if isinstance(key, ast.Constant)
                        else value.id)
            if value.id in funcs:
                roots.append((str(reg_name), (_EXECUTOR, value.id)))
            elif value.id in imports:
                roots.append((str(reg_name), imports[value.id]))
    return roots


def _call_edges(relpath: str, func: ast.AST,
                funcs: Dict[str, ast.AST],
                imports: Dict[str, FuncKey]) -> Iterable[FuncKey]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in funcs:
                yield (relpath, name)
            elif name in imports:
                yield imports[name]


def _scan_markers(relpath: str, func: ast.AST,
                  witness: str) -> Iterable[Finding]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _UNPACK_ATTRS:
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f".{f.attr}() on the hot path (reachable from "
                    f"registered kernel {witness!r}): must be zero-copy "
                    f"word-domain interop — audit and suppress with a "
                    f"justification, or stay in the word domain")
            elif ((isinstance(f, ast.Attribute) and f.attr == "unpackbits")
                    or (isinstance(f, ast.Name)
                        and f.id == "unpackbits")):
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f"np.unpackbits on the hot path (reachable from "
                    f"registered kernel {witness!r}): expands the packed "
                    f"payload to one byte per bit")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                    and any((isinstance(a, ast.Name)
                             and a.id in _LOOP_NAMES)
                            or (isinstance(a, ast.Attribute)
                                and a.attr in _LOOP_NAMES)
                            for a in it.args)):
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f"per-bit Python loop over the stream length "
                    f"(reachable from registered kernel {witness!r}): "
                    f"the word backends exist so this never happens")


def _check(project: Project) -> Iterable[Finding]:
    tables: Dict[str, Dict[str, ast.AST]] = {}
    imports: Dict[str, Dict[str, FuncKey]] = {}
    for ctx in project.files:
        if ctx.tree is not None and ctx.relpath.startswith("src/repro/"):
            tables[ctx.relpath] = _top_level_functions(ctx.tree)
            imports[ctx.relpath] = _import_map(ctx.relpath, ctx.tree)

    reached: Dict[FuncKey, str] = {}
    queue: List[Tuple[FuncKey, str]] = []
    for reg_name, key in _kernel_roots(project):
        if key[0] in tables and key[1] in tables[key[0]]:
            queue.append((key, reg_name))
    while queue:
        key, witness = queue.pop()
        if key in reached:
            continue
        reached[key] = witness
        relpath, name = key
        func = tables[relpath][name]
        for edge in _call_edges(relpath, func, tables[relpath],
                                imports[relpath]):
            if (edge not in reached and edge[0] in tables
                    and edge[1] in tables[edge[0]]):
                queue.append((edge, witness))

    findings: List[Finding] = []
    for (relpath, name), witness in sorted(reached.items()):
        findings.extend(_scan_markers(relpath, tables[relpath][name],
                                      witness))
    return findings


register(Rule(
    code="RL003", name="no-unpack-hot-path",
    summary="Kernel-reachable code must never expand packed bit payloads.",
    explain="""\
Builds a name-based static call graph rooted at the functions registered
in apps/executor.KERNELS (following plain-name calls through relative
imports inside src/repro/; method calls are not followed — the
engine/StreamBatch layer keeps its runtime no-unpack asserts) and flags,
anywhere in the reachable set:

* `.to_bits()` / `.to_bitstream()` calls — to_bitstream *is* a zero-copy
  payload wrap today, which is exactly why every call site must carry a
  justified suppression: the audit trail is the point, and a future
  packing change cannot silently ride an unaudited call;
* `np.unpackbits(...)` — the definitional unpack;
* `for ... in range(length)`-style per-bit Python loops.

Before this rule these were only caught by runtime no-unpack asserts on
whichever configuration a test happened to execute.""",
    project_check=_check))
