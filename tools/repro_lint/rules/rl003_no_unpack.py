"""RL003 — no-unpack hot path (project rule: kernel reachability).

The packed backend's whole speedup rests on registered application
kernels staying in the word domain end to end.  The runtime no-unpack
asserts catch a violation only on the code path a test happens to
execute; this rule proves it statically for every function reachable from
the kernel registry.

Reachability runs on the shared module-resolving call graph
(:meth:`~repro_lint.engine.Project.call_graph` — see
:mod:`repro_lint.callgraph`), which replaced the original name-matching
heuristic:

* roots are the functions registered in ``apps/executor.KERNELS``,
  resolved through import aliases and ``__init__`` re-exports, not just
  same-file names;
* edges follow every call the graph can resolve — plain names through
  imports (absolute and relative, aliased or not), ``module.helper(...)``
  attribute calls on imported modules, ``self.helper(...)`` methods, and
  calls to decorated functions;
* attribute calls on *untyped* values (``engine.maj(...)``,
  ``batch.select(...)`` where the receiver is a parameter) are still not
  followed — the engine/StreamBatch layer keeps its own runtime
  no-unpack asserts, and guessing receiver types would drown the rule in
  false edges.

Inside the reachable set the rule flags the bit-expansion markers:
``.to_bits()``, ``.to_bitstream()`` (flagged so every use is *audited*:
the StreamBatch payload wrap is zero-copy, and each call site must say so
with a justified suppression), ``np.unpackbits`` and per-bit Python
loops over the stream length.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from ..callgraph import FuncKey
from ..engine import Finding, Project, Rule, register

_EXECUTOR = "src/repro/apps/executor.py"
_UNPACK_ATTRS = frozenset({"to_bits", "to_bitstream"})
_LOOP_NAMES = frozenset({"length", "n_bits", "nbits"})


def _kernel_roots(project: Project) -> List[Tuple[FuncKey, str]]:
    """(function key, kernel registry name) for every KERNELS entry."""
    executor = project.by_path.get(_EXECUTOR)
    if executor is None or executor.tree is None:
        return []
    graph = project.call_graph()
    roots: List[Tuple[FuncKey, str]] = []
    for node in executor.tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "KERNELS"
                        for t in node.targets)
                and isinstance(node.value, ast.Dict)):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not isinstance(value, ast.Name):
                continue
            reg_name = (key.value if isinstance(key, ast.Constant)
                        else value.id)
            info = graph.lookup(_EXECUTOR, value.id)
            if info is not None:
                roots.append((info.key, str(reg_name)))
    return roots


def _scan_markers(relpath: str, func: ast.AST,
                  witness: str) -> Iterable[Finding]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _UNPACK_ATTRS:
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f".{f.attr}() on the hot path (reachable from "
                    f"registered kernel {witness!r}): must be zero-copy "
                    f"word-domain interop — audit and suppress with a "
                    f"justification, or stay in the word domain")
            elif ((isinstance(f, ast.Attribute) and f.attr == "unpackbits")
                    or (isinstance(f, ast.Name)
                        and f.id == "unpackbits")):
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f"np.unpackbits on the hot path (reachable from "
                    f"registered kernel {witness!r}): expands the packed "
                    f"payload to one byte per bit")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                    and any((isinstance(a, ast.Name)
                             and a.id in _LOOP_NAMES)
                            or (isinstance(a, ast.Attribute)
                                and a.attr in _LOOP_NAMES)
                            for a in it.args)):
                yield Finding(
                    relpath, node.lineno, "RL003",
                    f"per-bit Python loop over the stream length "
                    f"(reachable from registered kernel {witness!r}): "
                    f"the word backends exist so this never happens")


def _check(project: Project) -> Iterable[Finding]:
    roots = _kernel_roots(project)
    if not roots:
        return []
    graph = project.call_graph()
    reached = graph.reachable(roots)
    findings: List[Finding] = []
    for key in sorted(reached):
        info = graph.functions[key]
        findings.extend(_scan_markers(info.relpath, info.node,
                                      reached[key]))
    return findings


register(Rule(
    code="RL003", name="no-unpack-hot-path",
    summary="Kernel-reachable code must never expand packed bit payloads.",
    explain="""\
Walks the shared module-resolving call graph (Project.call_graph(), see
repro_lint/callgraph.py) from the functions registered in
apps/executor.KERNELS and flags, anywhere in the reachable set:

* `.to_bits()` / `.to_bitstream()` calls — to_bitstream *is* a zero-copy
  payload wrap today, which is exactly why every call site must carry a
  justified suppression: the audit trail is the point, and a future
  packing change cannot silently ride an unaudited call;
* `np.unpackbits(...)` — the definitional unpack;
* `for ... in range(length)`-style per-bit Python loops.

Since the call-graph migration, edges follow aliased and absolute
imports, `module.helper(...)` calls on imported modules, re-exports
through `__init__.py`, `self.helper(...)` methods and decorated
functions — not just same-name top-level calls.  Attribute calls on
untyped receivers (`engine.maj(...)`) are still not followed; the
engine/StreamBatch layer keeps its runtime no-unpack asserts.""",
    project_check=_check))
