"""Rule plugins: importing this package registers every rule.

Each module is one concern; adding a rule means adding a module here (or
a ``register(Rule(...))`` call in an existing one) — the engine, CLI and
``--explain`` catalogue pick it up automatically.
"""

from . import hygiene as hygiene
from . import rl001_determinism as rl001_determinism
from . import rl002_pickle as rl002_pickle
from . import rl003_no_unpack as rl003_no_unpack
from . import rl004_async as rl004_async
from . import rl005_resources as rl005_resources
from . import rl006_seed_flow as rl006_seed_flow
from . import rl007_config as rl007_config
from . import rl008_async as rl008_async
