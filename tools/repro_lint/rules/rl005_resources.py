"""RL005 — resource pairing for shared-memory scenes.

A ``SharedMemory(create=True)`` segment or a ``SceneStore``
``publish``/``checkout`` reference that is not released on *every* exit
path leaks ``/dev/shm`` blocks (until reboot — these outlive the process)
or strands a scene refcount so its segment never unlinks.  The store's
tests catch the paths they execute; this rule proves the pairing shape
statically: every acquire must sit inside a ``try`` whose ``finally`` (or
exception handler) releases, and silent ``except: pass`` swallowing is
banned outright.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Finding, Rule, register

#: attribute calls that acquire a scene-store reference
_ACQUIRE_ATTRS = frozenset({"publish", "checkout"})
#: calls that count as a release inside a handler/finally
_RELEASE_ATTRS = frozenset({"release", "unpin", "close", "unlink",
                            "shutdown"})
_RELEASE_NAMES = frozenset({"_unlink_quiet"})


def _is_acquire(node: ast.Call) -> str:
    func = node.func
    if (isinstance(func, ast.Attribute) or isinstance(func, ast.Name)):
        name = func.attr if isinstance(func, ast.Attribute) else func.id
        if name == "SharedMemory" and any(
                k.arg == "create" and isinstance(k.value, ast.Constant)
                and k.value.value is True for k in node.keywords):
            return "SharedMemory(create=True)"
        if isinstance(func, ast.Attribute) and name in _ACQUIRE_ATTRS:
            return f".{name}()"
    return ""


def _has_release(body) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and f.attr in _RELEASE_ATTRS:
                    return True
                if isinstance(f, ast.Name) and f.id in _RELEASE_NAMES:
                    return True
    return False


def _protected(ctx: FileContext, node: ast.AST) -> bool:
    """Is ``node`` inside a try whose finally/handlers release resources?"""
    for child, parent in ctx.ancestors(node):
        if not isinstance(parent, ast.Try):
            continue
        in_body = any(child is stmt for stmt in parent.body) or \
            any(child is stmt for stmt in parent.orelse)
        if not in_body:
            continue
        if parent.finalbody:
            return True
        if any(_has_release(h.body) for h in parent.handlers):
            return True
    return False


def _check(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            what = _is_acquire(node)
            if what and not _protected(ctx, node):
                yield Finding(
                    ctx.relpath, node.lineno, "RL005",
                    f"{what} acquires a shared-memory resource outside "
                    f"any try/finally (or try/except that releases): an "
                    f"exception on the way to the paired release leaks "
                    f"the segment/refcount")
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None and all(isinstance(s, ast.Pass)
                                         for s in node.body):
                yield Finding(
                    ctx.relpath, node.lineno, "RL005",
                    "bare 'except: pass' silently swallows every error "
                    "(including KeyboardInterrupt and teardown failures "
                    "that leak resources); catch something specific")


register(Rule(
    code="RL005", name="resource-pairing",
    summary="Every shm/scene acquire must release on all exit paths.",
    explain="""\
Scope: src/repro/ (tests exercise unpaired acquires on purpose).  Flags:

* `SharedMemory(create=True)` or a `.publish(...)`/`.checkout(...)`
  scene-store acquire whose call site is not lexically inside a `try`
  block that pairs it — i.e. one with a `finally:` (assumed to clean
  up), or an exception handler whose body calls `.release`/`.unpin`/
  `.close`/`.unlink`/`_unlink_quiet`;
* bare `except: pass` — it swallows the very exceptions the pairing
  exists for.

Store-internal acquisition (SceneStore._new_segment, pin's
publish-then-convert) transfers ownership to the store's refcount
tables, whose close()/finalizer path unlinks; those sites are
grandfathered in baseline.json with that justification rather than
restructured into artificial try blocks.""",
    scope=lambda relpath: relpath.startswith("src/repro/"),
    file_check=_check))
