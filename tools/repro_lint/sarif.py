"""SARIF 2.1.0 serialisation of a lint run (``--format sarif``).

SARIF is the interchange format code-scanning UIs (GitHub code scanning,
VS Code SARIF viewers) ingest natively: emitting it makes repro-lint
findings annotate pull-request diffs with no adapter glue.  Only the
small stable core of the spec is produced — tool driver with the rule
catalogue, one run, one result per finding with a physical location.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .engine import RULES, Finding, load_plugins

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _rule_entry(code: str) -> Dict[str, object]:
    rule = RULES.get(code)
    if rule is None:   # hygiene passes emit pycodestyle/pyflakes codes
        return {"id": code}
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.explain.strip()},
    }


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """One SARIF log dict for the findings of one run."""
    load_plugins()
    codes = sorted({f.code for f in findings})
    results: List[Dict[str, object]] = []
    for f in sorted(findings):
        results.append({
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.relpath},
                    # SARIF regions are 1-based; line 0 findings
                    # (whole-file problems) anchor to the first line
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        })
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": [_rule_entry(c) for c in codes],
            }},
            "results": results,
        }],
    }
