"""Whole-program call graph: module-resolving name lookup over src/repro/.

This replaces the name-matching heuristic RL003 shipped with (same-name
top-level functions plus a relative-import map) with a real resolver the
project rules share.  The graph is built once per :class:`~.engine.Project`
(``Project.call_graph()``) and answers two questions:

* *what does this name mean here?* — :meth:`CallGraph.resolve_call`
  resolves a call expression in a given function to the
  :class:`FunctionInfo` it invokes, through module boundaries;
* *what is reachable from these roots?* — :meth:`CallGraph.reachable`
  walks resolved call edges breadth-first, carrying a witness label.

Resolution model (documented in ``engine.py``'s module docstring too)
---------------------------------------------------------------------
Files under ``src/`` map to dotted modules by dropping the prefix
(``src/repro/apps/executor.py`` → ``repro.apps.executor``;
``__init__.py`` names the package itself).  Within one module the symbol
table holds top-level functions (decorators don't hide a function — the
def itself is the symbol), top-level classes with their methods, and
every import binding:

* ``import a.b`` binds ``a`` (a module prefix), ``import a.b as c``
  binds ``c`` directly to module ``a.b``;
* ``from a.b import x as y`` binds ``y`` to symbol ``x`` of ``a.b`` —
  where ``x`` may itself be a submodule (``from repro.apps import
  executor``);
* relative forms resolve against the importing file's package.

Symbol lookup follows **re-export chains**: looking up ``Engine`` in a
package ``__init__.py`` that says ``from .engine import Engine as
Engine`` recurses into ``engine.py`` (cycle-guarded, so mutually
re-exporting modules terminate).

A call site resolves when its callee is

* a plain name bound to a local top-level function or an imported one
  (aliases included),
* a dotted path whose base is an imported module binding
  (``executor.helper(...)``, ``repro.apps.executor.helper(...)``),
* ``self.m(...)`` / ``cls.m(...)`` inside a method — resolved to the
  enclosing class's method ``m``, then through resolvable base classes,
* ``C.m(...)`` / ``C().m(...)`` where ``C`` resolves to a project class.

Anything else (attribute calls on untyped values — ``engine.maj(...)``
where ``engine`` is a parameter) stays deliberately unresolved: the
engine/StreamBatch layer keeps its own runtime asserts, and guessing
attribute types would drown the rules in false edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: (relpath, qualified function name) — e.g. ("src/repro/imsc/engine.py",
#: "InMemorySCEngine.maj") or ("src/repro/apps/filters.py", "blend").
FuncKey = Tuple[str, str]


@dataclass
class FunctionInfo:
    """One function (or method) definition the graph knows about."""

    key: FuncKey
    node: ast.AST                       # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_name: Optional[str] = None    # set for methods
    #: resolved callee keys of every call site in the body, in AST order
    callees: List[FuncKey] = field(default_factory=list)

    @property
    def relpath(self) -> str:
        return self.key[0]

    @property
    def qualname(self) -> str:
        return self.key[1]


@dataclass
class _ImportBinding:
    """One imported name: a module alias and/or a symbol of a module."""

    module: Optional[str] = None   # bound directly to this module
    symbol: Optional[Tuple[str, str]] = None   # (module, original name)


class _Module:
    """Symbol table of one parsed file."""

    def __init__(self, relpath: str, name: str, tree: ast.AST) -> None:
        self.relpath = relpath
        self.name = name
        self.functions: Dict[str, ast.AST] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.imports: Dict[str, _ImportBinding] = {}
        self.star_imports: List[str] = []
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = _ImportBinding(
                            module=alias.name)
                    else:
                        root = alias.name.split(".")[0]
                        self.imports.setdefault(
                            root, _ImportBinding(module=root))
            elif isinstance(node, ast.ImportFrom):
                target = self._from_target(node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self.star_imports.append(target)
                        continue
                    self.imports[alias.asname or alias.name] = \
                        _ImportBinding(symbol=(target, alias.name))

    def _from_target(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute module a ``from ... import`` pulls from, or None."""
        if node.level == 0:
            return node.module
        # relative: climb from this module's package
        parts = self.name.split(".")
        if not self.relpath.endswith("__init__.py"):
            parts = parts[:-1]   # the file's own package
        climb = node.level - 1
        if climb > len(parts):
            return None
        if climb:
            parts = parts[:len(parts) - climb]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None


def module_name(relpath: str) -> Optional[str]:
    """Dotted module name of a project-relative ``.py`` path.

    ``src/`` and ``tools/`` layout prefixes are dropped;
    ``pkg/__init__.py`` names the package ``pkg`` itself.
    """
    if not relpath.endswith(".py"):
        return None
    parts = relpath[:-3].split("/")
    if parts[0] in ("src", "tools"):
        parts = parts[1:]
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


class CallGraph:
    """Resolved call edges over the project's ``src/`` modules."""

    def __init__(self, files: Sequence) -> None:
        """``files``: FileContext-likes with ``relpath`` and ``tree``."""
        self.modules: Dict[str, _Module] = {}
        self.by_relpath: Dict[str, _Module] = {}
        for ctx in files:
            if ctx.tree is None or not ctx.relpath.startswith("src/"):
                continue
            name = module_name(ctx.relpath)
            if name is None:
                continue
            mod = _Module(ctx.relpath, name, ctx.tree)
            self.modules[name] = mod
            self.by_relpath[ctx.relpath] = mod
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        for mod in self.modules.values():
            for fname, fnode in mod.functions.items():
                self._add_function(mod, fname, fnode, None)
            for cname, cnode in mod.classes.items():
                for stmt in cnode.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._add_function(mod, f"{cname}.{stmt.name}",
                                           stmt, cname)
        for info in self.functions.values():
            self._resolve_body(info)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_function(self, mod: _Module, qualname: str, node: ast.AST,
                      class_name: Optional[str]) -> None:
        key = (mod.relpath, qualname)
        self.functions[key] = FunctionInfo(
            key=key, node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name)

    def _resolve_body(self, info: FunctionInfo) -> None:
        mod = self.by_relpath[info.relpath]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(mod, node, info)
                if target is not None:
                    info.callees.append(target.key)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_symbol(self, mod: _Module, name: str,
                       _seen: Optional[Set[Tuple[str, str]]] = None
                       ) -> Optional[object]:
        """``name`` in ``mod`` → FunctionInfo | ClassDef | _Module | None.

        Follows import bindings and re-export chains (``from .x import y``
        in an ``__init__.py``), guarding against cycles.
        """
        if _seen is None:
            _seen = set()
        if (mod.name, name) in _seen:
            return None
        _seen.add((mod.name, name))
        if name in mod.functions:
            return self.functions.get((mod.relpath, name))
        if name in mod.classes:
            return mod.classes[name]
        binding = mod.imports.get(name)
        if binding is not None:
            if binding.module is not None:
                return self.modules.get(binding.module)
            assert binding.symbol is not None
            target_name, original = binding.symbol
            target = self.modules.get(target_name)
            if target is not None:
                resolved = self.resolve_symbol(target, original, _seen)
                if resolved is not None:
                    return resolved
            # `from pkg import sub` where sub is a submodule
            return self.modules.get(f"{target_name}.{original}")
        # attribute access naming a submodule of a package
        submodule = self.modules.get(f"{mod.name}.{name}")
        if submodule is not None:
            return submodule
        for star_target in mod.star_imports:
            target = self.modules.get(star_target)
            if target is not None:
                resolved = self.resolve_symbol(target, name, _seen)
                if resolved is not None:
                    return resolved
        return None

    def _class_method(self, mod: _Module, cls: ast.ClassDef, method: str,
                      _seen: Optional[Set[Tuple[str, str]]] = None
                      ) -> Optional[FunctionInfo]:
        """Method lookup on a project class, walking resolvable bases."""
        if _seen is None:
            _seen = set()
        if (mod.relpath, cls.name) in _seen:
            return None
        _seen.add((mod.relpath, cls.name))
        info = self.functions.get((mod.relpath, f"{cls.name}.{method}"))
        if info is not None:
            return info
        for base in cls.bases:
            resolved = None
            if isinstance(base, ast.Name):
                resolved = self.resolve_symbol(mod, base.id)
            elif isinstance(base, ast.Attribute):
                resolved = self._resolve_dotted(mod, base)
            if isinstance(resolved, ast.ClassDef):
                # the base class lives in whatever module defines it
                base_mod = self._defining_module(resolved)
                if base_mod is not None:
                    found = self._class_method(base_mod, resolved,
                                               method, _seen)
                    if found is not None:
                        return found
        return None

    def _defining_module(self, cls: ast.ClassDef) -> Optional[_Module]:
        for mod in self.modules.values():
            if mod.classes.get(cls.name) is cls:
                return mod
        return None

    def _resolve_dotted(self, mod: _Module, node: ast.AST
                        ) -> Optional[object]:
        """Resolve an ``a.b.c`` attribute chain to a project object."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        current = self.resolve_symbol(mod, parts[0])
        for attr in parts[1:]:
            if not isinstance(current, _Module):
                return None
            current = self.resolve_symbol(current, attr)
        return current

    def resolve_call(self, mod: _Module, call: ast.Call,
                     enclosing: Optional[FunctionInfo] = None
                     ) -> Optional[FunctionInfo]:
        """Resolve one call expression to the FunctionInfo it invokes."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_symbol(mod, func.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, ast.ClassDef):
                owner = self._defining_module(resolved)
                if owner is not None:
                    return self._class_method(owner, resolved, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        # self.m(...) / cls.m(...) inside a method
        if (isinstance(base, ast.Name) and base.id in ("self", "cls")
                and enclosing is not None
                and enclosing.class_name is not None):
            cls = mod.classes.get(enclosing.class_name)
            if cls is not None:
                return self._class_method(mod, cls, func.attr)
            return None
        # C.m(...) / C().m(...) on a resolvable class
        if isinstance(base, ast.Call):
            base = base.func
        resolved_base: Optional[object] = None
        if isinstance(base, ast.Name):
            resolved_base = self.resolve_symbol(mod, base.id)
        elif isinstance(base, ast.Attribute):
            resolved_base = self._resolve_dotted(mod, base)
        if isinstance(resolved_base, _Module):
            resolved = self.resolve_symbol(resolved_base, func.attr)
            return resolved if isinstance(resolved, FunctionInfo) else None
        if isinstance(resolved_base, ast.ClassDef):
            owner = self._defining_module(resolved_base)
            if owner is not None:
                return self._class_method(owner, resolved_base, func.attr)
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, relpath: str, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` as seen from module ``relpath`` (or None)."""
        mod = self.by_relpath.get(relpath)
        if mod is None:
            return None
        resolved = self.resolve_symbol(mod, name)
        return resolved if isinstance(resolved, FunctionInfo) else None

    def reachable(self, roots: Iterable[Tuple[FuncKey, str]]
                  ) -> Dict[FuncKey, str]:
        """Transitive closure over call edges; keeps the first witness.

        ``roots`` are ``(function key, witness label)`` pairs; the result
        maps every reachable function to the witness of the root that
        first reached it (BFS order, so cycles terminate).
        """
        reached: Dict[FuncKey, str] = {}
        queue: List[Tuple[FuncKey, str]] = [
            (key, witness) for key, witness in roots
            if key in self.functions]
        while queue:
            key, witness = queue.pop(0)
            if key in reached:
                continue
            reached[key] = witness
            for callee in self.functions[key].callees:
                if callee not in reached and callee in self.functions:
                    queue.append((callee, witness))
        return reached

    def callers(self) -> Dict[FuncKey, List[FuncKey]]:
        """Reverse edge map: callee → list of caller keys."""
        out: Dict[FuncKey, List[FuncKey]] = {}
        for key, info in self.functions.items():
            for callee in info.callees:
                out.setdefault(callee, []).append(key)
        return out
