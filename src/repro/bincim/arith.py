"""Bit-serial in-memory binary arithmetic (the AritPIM-style baseline [35]).

Digital processing-in-memory executes binary-radix arithmetic as long
sequences of stateful-logic gates (MAGIC NORs): each gate is one memory
cycle whose output is written into a row of cells.  This module implements
the arithmetic *at the gate level* — every NOR executed is counted (that is
the latency/energy driver) and is a fault-injection site (that is the
Table IV quality driver):

* ripple-carry addition — 11 NOR cycles per bit (4 for the majority carry,
  7 for the two XOR stages, sharing one term);
* multiplication — shift-and-add over AND-masked partial products,
  ``O(n^2)`` cycles;
* restoring fixed-point division — ``O(n^2)`` cycles of trial subtraction
  and conditional restore, matching the paper's note that CIM division on
  integer data needs ``O(n^2)`` write cycles.

Operands travel as *bit-planes*: ``planes[i]`` is a batch array holding bit
``i`` (LSB first) of every element, mirroring the row-per-bit crossbar
layout.  All gate ops are vectorised across the batch — the row-parallel
SIMD of digital CIM.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..reram.faults import BitFlipInjector

__all__ = ["BitSerialAlu", "to_planes", "from_planes"]


def to_planes(values: np.ndarray, bits: int) -> np.ndarray:
    """Split unsigned integers into LSB-first bit-planes ``(bits, ...)``."""
    vals = np.asarray(values, dtype=np.int64)
    if np.any(vals < 0) or np.any(vals >= (1 << bits)):
        raise ValueError(f"values outside [0, 2^{bits})")
    planes = np.empty((bits,) + vals.shape, dtype=np.uint8)
    for i in range(bits):
        planes[i] = (vals >> i) & 1
    return planes


def from_planes(planes: np.ndarray) -> np.ndarray:
    """Recombine LSB-first bit-planes into unsigned integers."""
    planes = np.asarray(planes, dtype=np.int64)
    out = np.zeros(planes.shape[1:], dtype=np.int64)
    for i in range(planes.shape[0]):
        out += planes[i] << i
    return out


class BitSerialAlu:
    """Gate-level bit-serial ALU with cycle counting and fault injection.

    Parameters
    ----------
    fault_rate:
        Per-gate output bit-flip probability (0 = ideal).  In digital CIM a
        flipped gate output lands in a cell and propagates at full binary
        significance — no graceful degradation.
    """

    def __init__(self, fault_rate: float = 0.0,
                 rng=None):
        self.fault_rate = fault_rate
        self._injector = (BitFlipInjector(fault_rate, rng)
                          if fault_rate > 0.0 else None)
        self.cycles = 0
        self.gate_cells = 0

    # ------------------------------------------------------------------
    # The primitive: one MAGIC NOR cycle
    # ------------------------------------------------------------------
    def nor(self, a: np.ndarray, b: np.ndarray,
            c: Optional[np.ndarray] = None) -> np.ndarray:
        """One stateful-logic NOR cycle (2- or 3-input)."""
        out = 1 - (a | b if c is None else a | b | c)
        out = out.astype(np.uint8)
        self.cycles += 1
        self.gate_cells += int(np.prod(out.shape))
        if self._injector is not None:
            out = self._injector.inject(out)
        return out

    def not_(self, a: np.ndarray) -> np.ndarray:
        return self.nor(a, a)

    def and_(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """AND from 3 NOR cycles."""
        return self.nor(self.not_(a), self.not_(b))

    def or_(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """OR from 2 NOR cycles."""
        return self.not_(self.nor(a, b))

    def xnor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XNOR from 4 NOR cycles (the natural NOR-network parity gate)."""
        t1 = self.nor(a, b)
        t2 = self.nor(a, t1)
        t3 = self.nor(b, t1)
        return self.nor(t2, t3)

    def xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR from 5 NOR cycles (XNOR plus an inverter)."""
        return self.not_(self.xnor(a, b))

    def mux(self, sel: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``b if sel else a`` from 4 NOR cycles (for conditional restore).

        Canonical NOR form: ``nor(nor(a, sel), nor(b, not sel))``.
        """
        nsel = self.not_(sel)
        t2 = self.nor(a, sel)
        return self.nor(t2, self.nor(b, nsel))

    # ------------------------------------------------------------------
    # Adder
    # ------------------------------------------------------------------
    def full_adder(self, a: np.ndarray, b: np.ndarray,
                   cin: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sum and carry from 11 NOR cycles (shared first term)."""
        g1 = self.nor(a, b)
        g2 = self.nor(b, cin)
        g3 = self.nor(a, cin)
        cout = self.nor(g1, g2, g3)            # MAJ via 3-input NOR
        t2 = self.nor(a, g1)
        t3 = self.nor(b, g1)
        axb_n = self.nor(t2, t3)                # XNOR(a, b)
        u1 = self.nor(axb_n, cin)
        u2 = self.nor(axb_n, u1)
        u3 = self.nor(cin, u1)
        # XNOR(XNOR(a, b), cin) = a XOR b XOR cin: the two complements
        # cancel, giving the sum with no extra inverter.
        s = self.nor(u2, u3)
        return s, cout

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Ripple-carry addition of two plane stacks; returns n+1 planes."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape != b.shape:
            raise ValueError("operand plane shapes differ")
        n = a.shape[0]
        out = np.empty((n + 1,) + a.shape[1:], dtype=np.uint8)
        carry = np.zeros(a.shape[1:], dtype=np.uint8)
        for i in range(n):
            out[i], carry = self.full_adder(a[i], b[i], carry)
        out[n] = carry
        return out

    def sub(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Two's-complement subtraction; returns (diff planes, borrow-free).

        ``borrow_free`` is 1 where ``a >= b`` (the carry out of the
        complemented addition).
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        n = a.shape[0]
        diff = np.empty_like(a)
        carry = np.ones(a.shape[1:], dtype=np.uint8)
        for i in range(n):
            nb = self.not_(b[i])
            diff[i], carry = self.full_adder(a[i], nb, carry)
        return diff, carry

    # ------------------------------------------------------------------
    # Multiplier
    # ------------------------------------------------------------------
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Shift-and-add multiplication; returns ``2n`` planes."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        n = a.shape[0]
        batch = a.shape[1:]
        acc = np.zeros((2 * n,) + batch, dtype=np.uint8)
        for j in range(n):
            # Partial product: multiplicand masked by multiplier bit j.
            pp = np.zeros((2 * n,) + batch, dtype=np.uint8)
            for i in range(n):
                pp[i + j] = self.and_(a[i], b[j])
            acc = self.add(acc, pp)[: 2 * n]
        return acc

    # ------------------------------------------------------------------
    # Divider
    # ------------------------------------------------------------------
    def divide_fixed(self, num: np.ndarray, den: np.ndarray,
                     frac_bits: int, int_bits: int = 0) -> np.ndarray:
        """Restoring long division: ``(num << frac_bits) / den``.

        Produces ``int_bits + frac_bits`` quotient planes (LSB first) — the
        fixed-point kernel behind image matting's
        ``alpha = (I - B) / (F - B)``.  With ``int_bits = n`` the full
        quotient is returned (no saturation): exactly the unbounded binary
        representation whose fault behaviour Table IV's matting row exposes.
        Division by zero saturates to the maximum code.

        Classic shift-subtract over the zero-extended dividend: quotient bit
        ``k`` (MSB first) comes from comparing the running remainder against
        the divisor after shifting in dividend bit ``k``.
        """
        num = np.asarray(num, dtype=np.uint8)
        den = np.asarray(den, dtype=np.uint8)
        n = num.shape[0]
        batch = num.shape[1:]
        q_bits = int_bits + frac_bits
        # Dividend X = num << frac_bits, MSB-first bit feed.  The running
        # remainder stays below 2*den < 2^(n+1).
        width = n + 1
        rem = np.zeros((width,) + batch, dtype=np.uint8)
        quot = np.zeros((q_bits,) + batch, dtype=np.uint8)
        den_w = np.zeros((width,) + batch, dtype=np.uint8)
        den_w[:n] = den
        # Dividend bit at position p (0 = LSB of X): num bit (p - frac_bits).
        for step in range(q_bits):
            pos = q_bits - 1 - step
            x_bit = (num[pos - frac_bits] if pos >= frac_bits
                     else np.zeros(batch, dtype=np.uint8))
            # rem = (rem << 1) | x_bit  (a row remap; no gate cycles).
            rem[1:] = rem[:-1]
            rem[0] = x_bit
            trial, ge = self.sub(rem, den_w)
            # Conditional restore: keep the trial remainder where rem >= den.
            for i in range(width):
                rem[i] = self.mux(ge, rem[i], trial[i])
            quot[pos] = ge
        # Saturate where the denominator is zero: quotient = all ones.
        den_zero = den.max(axis=0) == 0
        if np.any(den_zero):
            quot[:, den_zero] = 1
        return quot
