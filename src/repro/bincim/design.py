"""Binary CIM design: cost and quality evaluation of the digital baseline.

Wraps the gate-level ALU of :mod:`repro.bincim.arith` with the memory cost
model: every NOR cycle is one stateful-logic (MAGIC-style) operation whose
latency is a row-write pulse and whose energy scales with the cells written.
This is the ✧ baseline of Table IV and the reference (normalisation) design
of Figs. 4 and 5.

The design processes one *row batch* of elements per gate sequence
(row-parallel SIMD): latency is per batch, energy is per cell.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..energy.model import EnergyLedger
from ..energy.params import DEFAULT_RERAM_COSTS, ReRamStepCosts
from .arith import BitSerialAlu, from_planes, to_planes

__all__ = ["BinaryCimDesign", "BINARY_OP_CYCLES"]

# NOR-cycle counts of the gate-level implementations at n = 8, measured
# from BitSerialAlu (regenerate with BinaryCimDesign.measure_cycles()):
# add = 11 cycles/bit ripple; sub = complement + adder; abs-subtract runs
# two subtractions plus a mux per bit; multiply = 8 AND-masked partials +
# 8 double-width accumulations; divide = 8 restoring steps over a 9-plane
# remainder.
BINARY_OP_CYCLES: Dict[str, int] = {
    "add": 88,
    "sub": 224,
    "multiply": 1600,
    "divide": 2304,
}

# Every MAGIC gate evaluation needs its output cells initialised (RESET)
# before execution.  The initialisation writes happen ahead of time in
# background-prepared work rows, so they cost energy but stay off the
# latency-critical path.
MAGIC_INIT_ENERGY_FACTOR = 2.0


class BinaryCimDesign:
    """The digital (binary-radix) CIM baseline.

    Parameters
    ----------
    bits:
        Operand precision (8 for image data).
    fault_rate:
        CIM fault intensity; 0 = ideal (✗ columns).
    fault_granularity:
        'word' (default) flips each bit of every *operation result* with
        ``fault_rate`` — the paper's injection methodology ("the derived
        failure rates are used to simulate fault injections") applied to
        the digital baseline.  'gate' instead flips every intermediate NOR
        output, a strictly harsher model useful for sensitivity studies.
    costs:
        Memory step costs; each NOR cycle is priced as one row write.
    """

    def __init__(self, bits: int = 8, fault_rate: float = 0.0,
                 fault_granularity: str = "word",
                 costs: ReRamStepCosts = DEFAULT_RERAM_COSTS,
                 rng=None):
        if fault_granularity not in ("word", "gate"):
            raise ValueError("fault_granularity must be 'word' or 'gate'")
        self.bits = bits
        self.fault_rate = fault_rate
        self.fault_granularity = fault_granularity
        self.costs = costs
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self.ledger = EnergyLedger()

    def _alu(self) -> BitSerialAlu:
        rate = self.fault_rate if self.fault_granularity == "gate" else 0.0
        return BitSerialAlu(rate, self._gen)

    def _word_faults(self, values: np.ndarray, width: int) -> np.ndarray:
        """Flip each bit of each result word with the configured rate."""
        if self.fault_rate <= 0.0 or self.fault_granularity != "word":
            return values
        out = np.asarray(values, dtype=np.int64).copy()
        for k in range(width):
            flips = self._gen.random(out.shape) < self.fault_rate
            out = out ^ (flips.astype(np.int64) << k)
        return out

    def _book(self, alu: BitSerialAlu, category: str) -> None:
        """Price the ALU's executed cycles: one write pulse per NOR cycle.

        Output-row initialisation adds energy (see
        :data:`MAGIC_INIT_ENERGY_FACTOR`) but is latency-hidden.
        """
        c = self.costs
        self.ledger.record(
            category, c.t_write * alu.cycles,
            c.e_write_cell * alu.gate_cells * MAGIC_INIT_ENERGY_FACTOR)

    # ------------------------------------------------------------------
    # Value-level operations (vectorised over batches)
    # ------------------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Saturating unsigned addition of ``bits``-wide integer batches."""
        alu = self._alu()
        out = alu.add(to_planes(a, self.bits), to_planes(b, self.bits))
        self._book(alu, "bincim_add")
        vals = self._word_faults(from_planes(out), self.bits + 1)
        return np.minimum(vals, (1 << self.bits) - 1)

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Absolute difference |a - b| (two-pass conditional subtract)."""
        alu = self._alu()
        pa = to_planes(a, self.bits)
        pb = to_planes(b, self.bits)
        d1, ge = alu.sub(pa, pb)
        d2, _ = alu.sub(pb, pa)
        out = np.empty_like(d1)
        for i in range(self.bits):
            out[i] = alu.mux(ge, d2[i], d1[i])
        self._book(alu, "bincim_sub")
        return self._word_faults(from_planes(out), self.bits)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full-width product of two ``bits``-wide integer batches."""
        alu = self._alu()
        out = alu.multiply(to_planes(a, self.bits), to_planes(b, self.bits))
        self._book(alu, "bincim_mul")
        return self._word_faults(from_planes(out), 2 * self.bits)

    def multiply_scaled(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fixed-point product ``(a * b) >> bits`` (image blending kernel)."""
        prod = self.multiply(a, b)
        return prod >> self.bits

    def divide_fixed(self, num: np.ndarray, den: np.ndarray,
                     int_bits: Optional[int] = None) -> np.ndarray:
        """Fixed-point ratio ``(num << bits) / den``, full-width quotient.

        ``int_bits`` defaults to ``bits``: the quotient carries the complete
        integer part (values above 1.0 representable), matching the
        unbounded binary representation of the AritPIM divider.
        """
        ib = self.bits if int_bits is None else int_bits
        alu = self._alu()
        out = alu.divide_fixed(to_planes(num, self.bits),
                               to_planes(den, self.bits), self.bits, ib)
        self._book(alu, "bincim_div")
        return self._word_faults(from_planes(out), self.bits + ib)

    # ------------------------------------------------------------------
    # Cost summaries
    # ------------------------------------------------------------------
    def measure_cycles(self) -> Dict[str, int]:
        """Execute each kernel once on scalars and report NOR cycles."""
        out: Dict[str, int] = {}
        for name, fn in (
            ("add", lambda alu: alu.add(to_planes(np.array([5]), self.bits),
                                        to_planes(np.array([9]), self.bits))),
            ("sub", lambda alu: alu.sub(to_planes(np.array([5]), self.bits),
                                        to_planes(np.array([9]), self.bits))),
            ("multiply", lambda alu: alu.multiply(
                to_planes(np.array([5]), self.bits),
                to_planes(np.array([9]), self.bits))),
            ("divide", lambda alu: alu.divide_fixed(
                to_planes(np.array([5]), self.bits),
                to_planes(np.array([9]), self.bits), self.bits, self.bits)),
        ):
            alu = BitSerialAlu()
            fn(alu)
            out[name] = alu.cycles
        return out

    def op_cost(self, op: str, batch: int = 256) -> EnergyLedger:
        """Closed-form cost of one op over a row batch."""
        if op not in BINARY_OP_CYCLES:
            raise ValueError(f"unknown op {op!r}")
        cycles = BINARY_OP_CYCLES[op]
        led = EnergyLedger()
        led.record(f"bincim_{op}", self.costs.t_write * cycles,
                   self.costs.e_write_cell * cycles * batch
                   * MAGIC_INIT_ENERGY_FACTOR)
        return led

    def reset_ledger(self) -> None:
        self.ledger = EnergyLedger()
