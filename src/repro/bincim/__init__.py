"""Binary CIM baseline: gate-level bit-serial arithmetic with faults."""

from .arith import BitSerialAlu, from_planes, to_planes
from .design import BINARY_OP_CYCLES, BinaryCimDesign

__all__ = [
    "BitSerialAlu", "from_planes", "to_planes",
    "BINARY_OP_CYCLES", "BinaryCimDesign",
]
