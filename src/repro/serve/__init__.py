"""Async serving layer: persistent worker pool + fair tile scheduler.

The production-facing face of the tile executor.  Where
:func:`repro.apps.executor.run_tiled` is the batch entry point (one
request, one throwaway pool), this package keeps a resident
:class:`WorkerPool` and serves *concurrent* requests over it:

* :class:`WorkerPool` — long-lived worker processes with an explicitly
  pinned multiprocessing start method and per-worker backend pinning;
  ``pool_map``/``run_tiled`` accept instances via ``pool=`` so even the
  classic batch path can amortise startup.
* :class:`Scheduler` — asyncio request scheduler; decomposes each request
  with the executor's own task builder, interleaves tiles from different
  requests fair round-robin, and stitches per-request results exactly as
  ``run_tiled`` does.  Served output is bit-identical to the batch path
  per request.
* :class:`ServingClient` — blocking facade (background event loop) for
  scripts and benchmarks.
* :class:`SceneStore` — content-addressed shared-memory scene transport
  (:mod:`repro.serve.transport`): the default ``transport='shm'`` mode
  publishes each request's input arrays once, workers attach lazily, and
  tile tasks carry ``(digest, window)`` references instead of copied
  arrays; ``put_scene`` handles let a client stream requests over the
  same scene while shipping its bytes exactly once.
* :func:`serve_stdio` — the line-delimited JSON request loop behind
  ``python -m repro serve --jobs N`` (strict RFC 8259 responses; a
  ``{"type": "stats"}`` request returns the metrics snapshot;
  ``put_scene``/``drop_scene`` manage scene handles).
* :class:`ServeMetrics` — Prometheus-style serving metrics (per-request
  queue wait / exec time / latency percentiles, tiles dispatched, pool
  restarts, in-flight high-water marks); every scheduler carries one,
  exposed via ``Scheduler.stats()`` / ``ServingClient.stats()``.

See ``examples/serving.py`` for an end-to-end tour,
``benchmarks/bench_serve.py`` for the pool-amortisation guard, and
``benchmarks/loadgen.py`` for the open-loop sustained-load/soak harness.
"""

from .pool import BrokenProcessPool, WorkerPool, default_mp_context
from .metrics import ServeMetrics
from .transport import SceneStore
from .scheduler import Scheduler
from .client import ServingClient
from .service import serve_stdio

__all__ = ["WorkerPool", "BrokenProcessPool", "default_mp_context",
           "ServeMetrics", "SceneStore", "Scheduler", "ServingClient",
           "serve_stdio"]
