"""Zero-copy shared-memory scene transport for the serving stack.

Before this module every served request round-tripped its payload the
slow way: :func:`repro.apps.executor.build_tile_tasks` copied each tile
slice out of the scene arrays and pickled them through the pool's task
pipe, so a client streaming requests over the *same* scene re-shipped the
whole image on every request.  :class:`SceneStore` removes that ceiling:

* the front-end publishes a scene's input arrays **once** into a
  ``multiprocessing.shared_memory`` segment, keyed by a content digest
  (SHA-256 over names, shapes, dtypes and raw bytes) — publishing the
  same scene again is a cache *hit* that ships zero bytes;
* tile tasks carry only a tiny picklable :class:`SceneTileRef`
  (``digest``, segment name, field table, ``(r0, r1, c0, c1)`` window)
  instead of copied arrays;
* workers attach to a segment lazily (:func:`fetch_tile`), cache the
  attachment in a bounded LRU, and copy out just their tile window — the
  scene bytes cross the process boundary through the page cache, not the
  pickle pipe.

Lifetime and hygiene contracts
------------------------------
* **Refcounted unlink.**  Every in-flight request holds one reference on
  its scene (taken by ``publish``/``checkout``, dropped by ``release`` in
  the scheduler's finalize path, ok/failed/cancelled alike).  The store
  itself holds one *cache* reference per resident scene (bounded LRU by
  count and bytes) and one *pin* per explicit ``put_scene`` handle.  A
  segment is unlinked exactly when its last reference drops.
* **Leak-proof teardown.**  ``close()`` unlinks every segment regardless
  of outstanding references (teardown is final), and a ``weakref``
  finalizer does the same if a store is dropped or the interpreter exits
  with scenes resident — no orphaned ``/dev/shm`` blocks and no
  ``resource_tracker`` "leaked shared_memory" noise from the parent.
* **Worker-death safety.**  Workers only ever *attach* (read-only use);
  a SIGKILL'd worker's mappings are reclaimed by the kernel and the
  parent still owns the unlink, so a crash mid-request leaks nothing.
  Worker attachments deliberately bypass ``SharedMemory`` in favour of a
  raw read-only ``shm_open`` + ``mmap``: attaching through
  ``SharedMemory`` registers the name with the *attaching* process's
  ``resource_tracker``, and either way that goes wrong — a worker forked
  before the parent's tracker existed spawns its own tracker, which
  "cleans up" the segment registration at worker exit and warns about
  leaks it never owned, while a worker sharing the parent's tracker
  (forkserver/spawn) would, if it *unregistered* to avoid that, erase
  the parent's registration and crash the shared tracker on the real
  unlink.  A plain mmap touches no tracker in any start method.
* **Isolation.**  ``fetch_tile`` returns tile *copies*; kernels never
  see shm-backed memory, so a (buggy) kernel mutating its inputs cannot
  corrupt the shared scene or other requests.
"""

from __future__ import annotations

import hashlib
import itertools
import mmap
import os
import secrets
import threading
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

try:   # CPython's POSIX shared-memory primitive (what SharedMemory wraps)
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX platform
    _posixshmem = None

__all__ = ["SceneStore", "SceneTileRef", "SceneTicket", "scene_digest",
           "fetch_tile", "attached_segments", "detach_all"]

#: Shared-memory segment names are ``<prefix>-<digest12>-<pid>-<token>`` —
#: greppable in ``/dev/shm`` so the hygiene tests can assert none outlive
#: their store.
SCENE_PREFIX = "repro-scene"


def scene_digest(inputs: Dict[str, np.ndarray]) -> str:
    """Content address of a scene: SHA-256 over names, dtypes, shapes, bytes.

    Field order is normalised (sorted by name) so two dicts with the same
    contents hash identically regardless of insertion order.
    """
    h = hashlib.sha256()
    for name in sorted(inputs):
        arr = np.ascontiguousarray(inputs[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.data)
    return h.hexdigest()


class SceneTileRef(NamedTuple):
    """Picklable reference one tile task carries instead of copied arrays.

    ``fields`` is the scene's layout table: ``(name, offset, shape,
    dtype_str)`` per input array, all sharing one 2-D ``shape`` inside the
    segment named ``shm_name``.  ``window`` is the tile's ``(r0, r1, c0,
    c1)`` bounds; :func:`fetch_tile` resolves the reference in the worker.
    """

    digest: str
    shm_name: str
    fields: Tuple[Tuple[str, int, Tuple[int, ...], str], ...]
    window: Tuple[int, int, int, int]


class SceneTicket(NamedTuple):
    """Per-request transport accounting, recorded on the tile plan.

    ``digest`` is ``None`` in copy mode (nothing to release).  ``hit``
    says whether the scene bytes were already resident; ``bytes_shipped``
    counts what actually crossed a process boundary for the scene — the
    full input bytes in copy mode or on an shm miss, zero on an shm hit.
    """

    digest: Optional[str]
    hit: bool
    bytes_shipped: int


class _Scene:
    """One resident scene: its segment, layout, and reference counts."""

    __slots__ = ("shm", "fields", "shape", "nbytes", "refs", "cached",
                 "pins")

    def __init__(self, shm: shared_memory.SharedMemory,
                 fields: Tuple[Tuple[str, int, Tuple[int, ...], str], ...],
                 shape: Tuple[int, ...], nbytes: int) -> None:
        self.shm = shm
        self.fields = fields
        self.shape = shape
        self.nbytes = nbytes
        self.refs = 0      # in-flight requests holding this scene
        self.pins = 0      # explicit put_scene handles
        self.cached = False  # held by the store's LRU


def _unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views at teardown
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _finalize_scenes(scenes: Dict[str, _Scene]) -> None:
    """Weakref/atexit fallback: unlink whatever the store still holds."""
    for scene in list(scenes.values()):
        _unlink_quiet(scene.shm)
    scenes.clear()


class SceneStore:
    """Content-addressed shared-memory store of served scene inputs.

    Parameters
    ----------
    max_cached_scenes / max_cached_bytes:
        Bounds on the cross-request cache (scenes kept resident after
        their last request finishes, so the next request over the same
        scene is a hit).  Pinned scenes (``put_scene`` handles) and
        scenes with requests in flight never count against eviction —
        only idle cached scenes are evicted, oldest first.

    Thread-safe: the serving client publishes from caller threads while
    the scheduler releases on its event loop.
    """

    def __init__(self, max_cached_scenes: int = 64,
                 max_cached_bytes: int = 256 * 1024 * 1024) -> None:
        if max_cached_scenes < 0 or max_cached_bytes < 0:
            raise ValueError("cache bounds must be >= 0")
        self.max_cached_scenes = max_cached_scenes
        self.max_cached_bytes = max_cached_bytes
        self._scenes: "OrderedDict[str, _Scene]" = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self._seq = itertools.count()
        # Counters (reported via stats(); the scheduler mirrors the
        # per-request ones into ServeMetrics).
        self.hits = 0
        self.misses = 0
        self.bytes_shipped = 0
        self._finalizer = weakref.finalize(self, _finalize_scenes,
                                           self._scenes)

    # ------------------------------------------------------------------
    # publish / checkout / release
    # ------------------------------------------------------------------
    def publish(self, inputs: Dict[str, np.ndarray]) -> SceneTicket:
        """Ensure a scene is resident; returns its ticket with one
        reference taken (the caller's request must ``release`` it)."""
        if not inputs:
            raise ValueError("cannot publish an empty scene")
        digest = scene_digest(inputs)
        with self._lock:
            self._ensure_open()
            scene = self._scenes.get(digest)
            if scene is not None:
                scene.refs += 1
                self._scenes.move_to_end(digest)
                self.hits += 1
                return SceneTicket(digest, True, 0)
            scene = self._create(digest, inputs)
            scene.refs = 1
            scene.cached = self.max_cached_scenes > 0
            self._scenes[digest] = scene
            self.misses += 1
            self.bytes_shipped += scene.nbytes
            self._evict()
            return SceneTicket(digest, False, scene.nbytes)

    def checkout(self, digest: str) -> Tuple[Tuple, Tuple[int, ...]]:
        """Take one reference on an already-resident scene by digest.

        Returns ``(fields, shape)`` so a tile plan can be built without
        the arrays.  Raises :class:`KeyError` with a client-readable
        message when the digest is unknown or already expired.
        """
        with self._lock:
            self._ensure_open()
            scene = self._scenes.get(digest)
            if scene is None:
                raise KeyError(
                    f"unknown or expired scene {digest!r}: publish it "
                    f"first (put_scene) or resend the inputs")
            scene.refs += 1
            self._scenes.move_to_end(digest)
            self.hits += 1
            return scene.fields, scene.shape

    def release(self, digest: str) -> None:
        """Drop one request reference; unlink when nothing holds the scene."""
        with self._lock:
            scene = self._scenes.get(digest)
            if scene is None:
                return
            scene.refs = max(0, scene.refs - 1)
            self._maybe_unlink(digest, scene)

    # ------------------------------------------------------------------
    # explicit handles (put_scene / drop_scene)
    # ------------------------------------------------------------------
    def pin(self, inputs: Dict[str, np.ndarray]) -> SceneTicket:
        """Publish and pin a scene: it stays resident until ``unpin``
        (or store close), regardless of LRU pressure."""
        ticket = self.publish(inputs)
        with self._lock:
            scene = self._scenes.get(ticket.digest)
            if scene is not None:
                scene.pins += 1
                scene.refs -= 1   # convert the publish ref into the pin
        return ticket

    def unpin(self, digest: str) -> None:
        with self._lock:
            scene = self._scenes.get(digest)
            if scene is None:
                return
            scene.pins = max(0, scene.pins - 1)
            self._maybe_unlink(digest, scene)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            resident = len(self._scenes)
            resident_bytes = sum(s.nbytes for s in self._scenes.values())
            pinned = sum(1 for s in self._scenes.values() if s.pins)
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else None,
            "bytes_shipped": self.bytes_shipped,
            "resident": resident,
            "resident_bytes": resident_bytes,
            "pinned": pinned,
        }

    @property
    def resident(self) -> int:
        with self._lock:
            return len(self._scenes)

    def segment_names(self) -> List[str]:
        """Names of the live segments (the hygiene tests sweep these)."""
        with self._lock:
            return [s.shm.name for s in self._scenes.values()]

    def close(self) -> None:
        """Unlink every segment.  Final: outstanding references are void
        (only reachable at teardown, when no new tiles will dispatch)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            _finalize_scenes(self._scenes)
        self._finalizer.detach()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SceneStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("SceneStore is closed")

    def _create(self, digest: str, inputs: Dict[str, np.ndarray]) -> _Scene:
        arrays = {name: np.ascontiguousarray(arr)
                  for name, arr in inputs.items()}
        shapes = {a.shape for a in arrays.values()}
        if len(shapes) != 1:
            raise ValueError("scene inputs must share one shape")
        (shape,) = shapes
        fields = []
        offset = 0
        for name in sorted(arrays):
            arr = arrays[name]
            fields.append((name, offset, arr.shape, str(arr.dtype)))
            offset += arr.nbytes
        total = max(offset, 1)
        shm = self._new_segment(digest, total)
        for (name, off, fshape, dtype) in fields:
            view = np.ndarray(fshape, dtype=np.dtype(dtype),
                              buffer=shm.buf, offset=off)
            view[...] = arrays[name]
        return _Scene(shm, tuple(fields), shape, offset)

    def _new_segment(self, digest: str,
                     size: int) -> shared_memory.SharedMemory:
        for _ in range(16):
            name = (f"{SCENE_PREFIX}-{digest[:12]}-{os.getpid()}-"
                    f"{next(self._seq)}-{secrets.token_hex(2)}")
            try:
                return shared_memory.SharedMemory(name=name, create=True,
                                                  size=size)
            except FileExistsError:  # stale block from a killed run
                continue
        raise RuntimeError("could not allocate a scene segment name")

    def _maybe_unlink(self, digest: str, scene: _Scene) -> None:
        if scene.refs <= 0 and scene.pins <= 0 and not scene.cached:
            del self._scenes[digest]
            _unlink_quiet(scene.shm)

    def _evict(self) -> None:
        """Evict idle cached scenes (oldest first) past the LRU bounds."""
        def over() -> bool:
            cached = [s for s in self._scenes.values() if s.cached]
            return (len(cached) > self.max_cached_scenes
                    or sum(s.nbytes for s in cached) > self.max_cached_bytes)
        while over():
            victim = next((d for d, s in self._scenes.items()
                           if s.cached and s.refs <= 0 and s.pins <= 0),
                          None)
            if victim is None:   # everything busy/pinned: nothing evictable
                break
            scene = self._scenes[victim]
            scene.cached = False
            self._maybe_unlink(victim, scene)

    # ------------------------------------------------------------------
    # plan-side helpers
    # ------------------------------------------------------------------
    def tile_ref(self, digest: str,
                 window: Tuple[int, int, int, int]) -> SceneTileRef:
        """Build one tile's reference (the caller holds a reference)."""
        with self._lock:
            scene = self._scenes[digest]
            return SceneTileRef(digest, scene.shm.name, scene.fields,
                                window)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Attachment:
    """Read-only mapping of one scene segment, tracker-neutral.

    On POSIX this maps the segment with raw ``shm_open`` + ``mmap``
    (see the module docstring for why attaching through ``SharedMemory``
    would poison the ``resource_tracker`` in one start method or
    another).  Windows has no resource tracker for shared memory, so the
    ``SharedMemory`` fallback there is already safe.
    """

    __slots__ = ("name", "buf", "_shm")

    def __init__(self, name: str) -> None:
        self.name = name
        if _posixshmem is not None:
            self._shm = None
            fd = _posixshmem.shm_open("/" + name, os.O_RDONLY, mode=0o600)
            try:
                size = os.fstat(fd).st_size
                self.buf = mmap.mmap(fd, size, prot=mmap.PROT_READ)
            finally:
                os.close(fd)
        else:  # pragma: no cover - non-POSIX platform
            self._shm = shared_memory.SharedMemory(name=name)
            self.buf = self._shm.buf

    def close(self) -> None:
        if self._shm is not None:  # pragma: no cover - non-POSIX platform
            self._shm.close()
        else:
            self.buf.close()


#: Bounded LRU of segment attachments, keyed by segment name.  An entry
#: is just the mapping — ndarray views are created per task and dropped
#: immediately, so eviction can always close the mapping without
#: tripping over exported buffers.
_ATTACHMENTS: "OrderedDict[str, _Attachment]" = OrderedDict()
_MAX_ATTACHMENTS = 32


def _attach(shm_name: str) -> _Attachment:
    att = _ATTACHMENTS.get(shm_name)
    if att is not None:
        _ATTACHMENTS.move_to_end(shm_name)
        return att
    att = _Attachment(shm_name)
    _ATTACHMENTS[shm_name] = att
    while len(_ATTACHMENTS) > _MAX_ATTACHMENTS:
        _, old = _ATTACHMENTS.popitem(last=False)
        try:
            old.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return att


def fetch_tile(ref: SceneTileRef) -> Dict[str, np.ndarray]:
    """Resolve one tile reference into named 1-D arrays (worker side).

    Attaches to the scene segment (cached across tasks of the same
    worker), then copies out just the tile window per field — the copy
    both isolates the kernel from the shared bytes and matches the copy
    mode's ``.copy().ravel()`` layout bit for bit.
    """
    att = _attach(ref.shm_name)
    r0, r1, c0, c1 = ref.window
    out = {}
    for (name, offset, shape, dtype) in ref.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=att.buf,
                          offset=offset)
        out[name] = view[r0:r1, c0:c1].copy().ravel()
    return out


def attached_segments() -> List[str]:
    """Names this process currently has attached (for tests)."""
    return list(_ATTACHMENTS)


def detach_all() -> int:
    """Close every cached attachment; returns how many were open."""
    n = len(_ATTACHMENTS)
    while _ATTACHMENTS:
        _, att = _ATTACHMENTS.popitem(last=False)
        try:
            att.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return n
