"""Persistent worker pool: resident processes shared across submissions.

:class:`WorkerPool` is the long-lived counterpart of the throwaway
``ProcessPoolExecutor`` that :func:`repro.apps.executor.pool_map` used to
spin up per call.  A request-serving workload (many small tiled scenes
back to back) pays pool startup once, here, instead of once per request;
``pool_map`` remains the one-shot wrapper and accepts a ``pool=`` argument
to run over a resident instance instead.

Contracts
---------
* **Explicit start method.**  The executor's fork/spawn-identical
  behaviour is only guaranteed when the start method is actually pinned;
  relying on the interpreter's mutable global default would let any
  library ``set_start_method`` call change worker semantics under us.
  Every pool therefore resolves an explicit ``multiprocessing`` context:
  ``mp_context`` may be a context object, a method name (``'fork'`` /
  ``'spawn'`` / ``'forkserver'``) or ``None`` for
  :func:`default_mp_context` (``fork`` where the platform offers it,
  ``spawn`` otherwise).
* **Backend pinning.**  Each worker pins the execution backend once at
  startup (the pool creator's active backend by default).  Tasks that
  carry their own backend name — like the tile executor's — may still
  re-select per task; ``set_backend`` is idempotent, so the initializer
  only saves the per-task switch in the common single-backend case and
  keeps mixed-backend serving correct.
* **Determinism.**  The pool adds no randomness: tasks carry their own
  seed material, and result order is the caller's submission order
  (``map``) or per-future (``submit``).
* **Crash containment.**  A task that *raises* fails only its own future;
  the processes stay resident.  A task that *kills* its worker breaks the
  underlying executor (every in-flight future gets
  :class:`BrokenProcessPool`); :meth:`restart` respawns the workers so the
  pool object itself stays serviceable — the async scheduler does this
  automatically.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Union

from ..core.backend import get_backend, set_backend

__all__ = ["WorkerPool", "BrokenProcessPool", "default_mp_context",
           "serving_mp_context", "resolve_mp_context"]

MpContextLike = Union[str, multiprocessing.context.BaseContext, None]


def default_mp_context() -> multiprocessing.context.BaseContext:
    """The pinned default start method: ``fork`` on Linux, else ``spawn``.

    ``fork`` keeps pool startup cheap (no re-import of numpy per worker)
    but is only trusted on Linux: macOS *offers* fork yet its system
    libraries (Accelerate BLAS, ObjC runtime) are fork-unsafe — the very
    reason CPython 3.8 moved the darwin default to spawn — and Windows
    has no fork at all.  Both methods are equivalent for results: tasks
    are self-contained picklable tuples and the spawn-context regression
    test asserts bit-identical output.
    """
    methods = multiprocessing.get_all_start_methods()
    use_fork = sys.platform.startswith("linux") and "fork" in methods
    return multiprocessing.get_context("fork" if use_fork else "spawn")


def serving_mp_context() -> multiprocessing.context.BaseContext:
    """Context for long-lived serving front-ends: ``forkserver``/``spawn``.

    A serving process is multi-threaded for its whole life (event loop,
    reader threads, executor callbacks) and auto-restarts crashed
    workers; only a forkserver or spawn pool can respawn without forking
    a threaded process.  One-shot batch pools keep the cheaper
    :func:`default_mp_context`.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


def resolve_mp_context(mp_context: MpContextLike
                       ) -> multiprocessing.context.BaseContext:
    """Normalise a context argument to an explicit context object."""
    if mp_context is None:
        return default_mp_context()
    if isinstance(mp_context, str):
        return multiprocessing.get_context(mp_context)
    return mp_context


def _pin_backend(name: str) -> None:
    """Worker initializer: select the execution backend once per process."""
    set_backend(name)


def _warmup_pid(delay: float) -> int:
    """Warmup task: report the worker's pid after a short dwell.

    The dwell keeps an already-warm worker busy long enough for its
    still-booting siblings to win the next task off the shared queue —
    without it one fast worker can drain every warmup task while the
    others are still spawning.
    """
    # repro-lint: disable=RL004 -- runs inside a pool worker process, never on the serving event loop
    time.sleep(delay)
    return os.getpid()


class WorkerPool:
    """A resident process pool with pinned start method and backend.

    Parameters
    ----------
    jobs:
        Number of resident worker processes (the pool's ``capacity``).
    mp_context:
        Start method: a context object, a method name, or ``None`` for
        :func:`default_mp_context`.
    backend:
        Execution-backend name each worker pins at startup; defaults to
        the backend active in the creating process.
    scene_store:
        An optional :class:`repro.serve.transport.SceneStore` whose
        lifetime this pool adopts: :meth:`close` closes (unlinks) it
        after the workers shut down, so a pool torn down by any path —
        context-manager exit, explicit close, test fixture — cannot
        strand shared-memory scene segments.

    Use as a context manager, or call :meth:`close` explicitly; workers
    stay resident between calls either way.
    """

    def __init__(self, jobs: int, *, mp_context: MpContextLike = None,
                 backend: Optional[str] = None,
                 scene_store: Optional[Any] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.backend = backend if backend is not None else get_backend().name
        self._ctx = resolve_mp_context(mp_context)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self.scene_store = scene_store
        #: Lifetime count of :meth:`restart` calls — the serving metrics
        #: read it as the pool's crash-respawn trajectory.
        self.restarts = 0
        self._spawn_executor()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_executor(self) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._ctx,
            initializer=_pin_backend, initargs=(self.backend,))
        self._broken = False

    def restart(self) -> None:
        """Respawn the workers (after a hard crash broke the executor).

        Respawning uses the pool's pinned context.  Under ``fork`` this
        forks from whatever threads the process has by then (the usual
        CPython lazy-pool caveat); long-lived servers that must survive
        worker crashes safely should pin ``forkserver`` (fork-safe
        respawn from a clean single-threaded server, startup still
        cheap) or ``spawn`` — ``serve_stdio`` does exactly that.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._spawn_executor()
        self.restarts += 1

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.scene_store is not None:
            # After the workers are gone: segments unlink exactly once,
            # whatever order the owning front-end tears things down in.
            self.scene_store.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Worker count — the natural in-flight budget for a scheduler."""
        return self.jobs

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    @property
    def broken(self) -> bool:
        """True once a worker death broke the executor (see :meth:`restart`)."""
        return self._broken

    @property
    def closed(self) -> bool:
        return self._executor is None

    def worker_pids(self) -> List[int]:
        """PIDs of the currently resident worker processes.

        Empty until workers exist (``ProcessPoolExecutor`` spawns them
        lazily — :meth:`warmup` forces the full fleet up).  The load
        harness uses this to inject a worker death mid-soak.
        """
        if self._executor is None:
            return []
        return [p.pid for p in self._executor._processes.values()]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[Any], Any], task: Any) -> Future:
        """Submit one picklable task; returns its future immediately."""
        if self._executor is None:
            raise RuntimeError("WorkerPool is closed")
        try:
            fut = self._executor.submit(fn, task)
        except BrokenProcessPool:
            self._broken = True
            raise
        fut.add_done_callback(self._note_broken)
        return fut

    def _note_broken(self, fut: Future) -> None:
        if not fut.cancelled() and isinstance(fut.exception(),
                                              BrokenProcessPool):
            self._broken = True

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> List[Any]:
        """Ordered map over ``tasks`` on the resident workers.

        On the first failing task the not-yet-started remainder is
        cancelled before the exception propagates (matching
        ``Executor.map`` semantics), so a 100-tile run that dies on tile
        3 doesn't compute 97 doomed tiles first.
        """
        futures = [self.submit(fn, t) for t in tasks]
        results = []
        try:
            for f in futures:
                results.append(f.result())
        except BaseException:
            for f in futures:
                f.cancel()
            raise
        return results

    def warmup(self, timeout: float = 30.0) -> set:
        """Start every worker now; returns the set of warmed worker pids.

        Pool startup is otherwise lazy, which would bill the first
        request for process spawn time.  Submitting ``jobs`` no-op tasks
        and waiting on the futures is *not* enough: a fast worker can
        finish its task (and grab its siblings') while the others are
        still booting, so that warmup returns with cold workers and the
        first requests still pay spawn cost.  Instead this loops
        barrier-style — rounds of short dwell tasks, collecting worker
        pids — until ``jobs`` *distinct* pids have responded (every
        worker provably up and serving) or ``timeout`` elapses (a
        heavily loaded host: the workers that did come up are warm, and
        boot must not hang forever).
        """
        deadline = time.monotonic() + timeout
        seen: set = set()
        delay = 0.002
        while len(seen) < self.jobs:
            batch = [self.submit(_warmup_pid, delay)
                     for _ in range(self.jobs)]
            wait(batch)
            seen.update(f.result() for f in batch)
            if time.monotonic() >= deadline:
                break
            delay = min(delay * 2, 0.05)
        return seen
