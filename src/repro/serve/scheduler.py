"""Asyncio request scheduler: concurrent tiled requests on one shared pool.

:class:`Scheduler` is the serving counterpart of the batch entry point
:func:`repro.apps.executor.run_tiled`.  A request
(:meth:`Scheduler.submit_app`) is decomposed into per-tile tasks by the
same :func:`~repro.apps.executor.build_tile_tasks` the batch path uses,
the tasks are dispatched onto a resident :class:`~repro.serve.pool.WorkerPool`,
and the results are reassembled by the same
:func:`~repro.apps.executor.stitch_tiles` — so a served request is
**bit-identical** to ``run_tiled`` with the same ``(kernel, inputs,
length, tile, seed, kwargs)``, no matter what else is in flight.

Fairness
--------
The scheduler keeps at most ``max_inflight`` (default: pool capacity)
tiles submitted at once and picks the next tile **round-robin across
active requests**, so a 1000-tile scene admitted first cannot starve a
4-tile request admitted a moment later: while both are active their tiles
alternate onto the workers.  Dispatch order is deterministic given the
admission order (``dispatch_log`` records it for the test suite); results
are never order-sensitive, as each tile's RNG derives from its request's
``SeedSequence`` child alone.

Failure containment
-------------------
* Invalid requests (unknown kernel/kwargs, bad shapes) fail inside
  ``submit_app`` during task building — before anything touches the pool.
* A tile task that raises fails only its own request; worker processes
  stay resident and other requests proceed.
* A tile task that *kills* its worker breaks the pool's executor: every
  request with tiles in flight at that moment fails with
  :class:`~repro.serve.pool.BrokenProcessPool`, the scheduler restarts
  the pool's workers, and queued/later requests run normally — the
  resident pool object is never poisoned.
* A request whose caller cancels the ``submit_app`` future (e.g. an
  ``asyncio.wait_for`` timeout) is abandoned: its undispatched tiles are
  dropped so they stop occupying slots other requests need.

Observability
-------------
Every scheduler carries a :class:`~repro.serve.metrics.ServeMetrics`
(``scheduler.metrics``): per-request queue wait (admission to first tile
dispatch), exec time, end-to-end latency, tiles dispatched (one count per
``dispatch_log`` entry), pool restarts, and in-flight high-water marks.
:meth:`Scheduler.stats` snapshots it together with the pool's state; the
stdio front-end serves the same snapshot as the ``{"type": "stats"}``
request.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..apps import executor as _executor
from ..config import RunConfig
from ..energy.model import EnergyLedger
from .metrics import ServeMetrics
from .pool import BrokenProcessPool, WorkerPool
from .transport import SceneStore

__all__ = ["Scheduler", "ServeRequest"]


class ServeRequest:
    """Bookkeeping for one in-flight request (internal to the scheduler)."""

    def __init__(self, req_id: int, plan: "_executor.TilePlan",
                 future: "asyncio.Future") -> None:
        self.id = req_id
        self.plan = plan
        self.future = future
        self.results: List[Optional[Tuple[np.ndarray, EnergyLedger]]] = \
            [None] * len(plan.tasks)
        self.next_tile = 0
        self.completed = 0
        self.failed = False
        self.t_admit = time.perf_counter()
        self.t_first_dispatch: Optional[float] = None
        self.counted = False   # metrics: finalized exactly once

    @property
    def has_pending(self) -> bool:
        return not self.failed and self.next_tile < len(self.plan.tasks)

    def take(self) -> Tuple[int, Tuple]:
        idx = self.next_tile
        self.next_tile += 1
        return idx, self.plan.tasks[idx]


class Scheduler:
    """Fair round-robin tile scheduler over a resident :class:`WorkerPool`.

    One scheduler serves one asyncio event loop; requests may be submitted
    concurrently from any number of coroutines (or across threads via
    :class:`repro.serve.client.ServingClient`).  See the module docstring
    for the determinism, fairness and failure contracts.

    Parameters
    ----------
    pool:
        The resident worker pool to dispatch onto.
    max_inflight:
        Maximum tiles submitted to the pool at once; defaults to the
        pool's capacity, which makes every dispatch decision as late —
        and therefore as fair — as possible.
    metrics:
        The :class:`~repro.serve.metrics.ServeMetrics` registry to feed;
        a fresh one is created when omitted.
    transport:
        ``'shm'`` ships each request's scene through the
        content-addressed shared-memory
        :class:`~repro.serve.transport.SceneStore` — repeated scenes are
        cache hits shipping zero bytes, and tile tasks carry references
        instead of copied arrays.  ``'copy'`` is the PR 5 behaviour
        (self-contained pickled tile tasks).  Both are bit-identical to
        ``run_tiled``.  ``None`` (default) takes the config's transport
        (``'shm'`` on the default preset).
    scene_store:
        Use an existing store instead of owning one (``transport='shm'``
        only; the caller then keeps responsibility for closing it).
    config:
        The scheduler's default :class:`repro.config.RunConfig` —
        applied to every request that doesn't carry its own (see
        :meth:`submit_app`) and echoed verbatim under ``"config"`` in
        :meth:`stats`.  ``None`` resolves to ``RunConfig.default()``,
        the fast preset.  The config's ``jobs`` field is ignored here:
        the shared pool owns its capacity.
    """

    def __init__(self, pool: WorkerPool,
                 max_inflight: Optional[int] = None,
                 metrics: Optional[ServeMetrics] = None,
                 transport: Optional[str] = None,
                 scene_store: Optional[SceneStore] = None,
                 config: Optional[RunConfig] = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        cfg = RunConfig.resolve(config)
        if transport is None:
            transport = cfg.transport
        if transport not in ("shm", "copy"):
            raise ValueError(f"unknown transport {transport!r}; "
                             f"expected 'shm' or 'copy'")
        if transport != cfg.transport:
            cfg = cfg.replace(transport=transport)
        if scene_store is not None and transport != "shm":
            raise ValueError("scene_store= requires transport='shm'")
        self.config = cfg
        self.pool = pool
        self.max_inflight = (max_inflight if max_inflight is not None
                             else pool.capacity)
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.transport = transport
        self._owns_store = transport == "shm" and scene_store is None
        self.scene_store = (scene_store if scene_store is not None
                            else SceneStore() if transport == "shm"
                            else None)
        self._round_robin: "deque[ServeRequest]" = deque()
        self._inflight = 0
        self._ids = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._outstanding: set = set()
        #: ``(request_id, tile_index)`` in dispatch order — the fairness
        #: audit trail the test suite asserts on.  Bounded: a long-running
        #: serve loop dispatches millions of tiles and must not accumulate
        #: an ever-growing list, so only the most recent entries survive.
        self.dispatch_log: "deque[Tuple[int, int]]" = deque(maxlen=4096)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    async def submit_app(self, kernel: str,
                         inputs: Optional[Dict[str, np.ndarray]],
                         length: int, *,
                         config: Optional[RunConfig] = None,
                         tile: Optional[int] = None,
                         seed: Optional[int] = None,
                         engine_kwargs: Optional[Dict[str, Any]] = None,
                         kernel_kwargs: Optional[Dict[str, Any]] = None,
                         backend: Optional[str] = None,
                         scene: Optional[str] = None
                         ) -> Tuple[np.ndarray, EnergyLedger]:
        """Serve one tiled request; returns ``(image, ledger)``.

        Arguments and result match :func:`repro.apps.executor.run_tiled`
        exactly (minus ``jobs``, which the shared pool owns) and so does
        the output, bit for bit.  ``config`` pins the request's full run
        configuration (engine model axes, tile, seed, backend); ``None``
        falls back to the scheduler's own config, and the explicit
        ``tile``/``seed``/``backend``/``engine_kwargs`` arguments
        override the config field-by-field, exactly as in the batch
        path.  ``backend`` pins the request's execution backend
        explicitly (default: the config's, else the process-active one
        at build time); cross-thread callers should pass one of the two,
        since the active backend is process-global.  ``scene`` submits
        against a scene handle from :meth:`put_scene` instead of
        ``inputs`` (shared-memory transport only): the request then
        ships no scene bytes at all.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError("Scheduler is bound to a different event "
                               "loop; create one scheduler per loop")
        if scene is not None and self.scene_store is None:
            raise ValueError("scene= handles need transport='shm'")
        t_admit = time.perf_counter()
        try:
            plan = _executor.build_tile_tasks(
                kernel, inputs, length,
                config=config if config is not None else self.config,
                tile=tile, seed=seed,
                engine_kwargs=engine_kwargs, kernel_kwargs=kernel_kwargs,
                backend=backend, scene_store=self.scene_store, scene=scene)
        except KeyError as exc:   # expired/unknown scene handle
            raise ValueError(str(exc.args[0]) if exc.args else str(exc))
        if plan.scene is not None:
            self.metrics.on_scene(plan.scene.hit, plan.scene.bytes_shipped)
        # Requests rejected during task building never count as admitted:
        # they touched neither the pool nor the dispatch loop.
        if not plan.tasks:
            # Degenerate inputs (a zero-area 2-D shape) produce an empty
            # grid; resolve now exactly as run_tiled would — completion
            # otherwise only happens inside a tile callback that never
            # fires, and the await would hang forever.
            self._release_scene(plan)
            self.metrics.on_admit()
            self.metrics.on_request_done(
                True, queue_wait=0.0, exec_s=0.0,
                latency_s=time.perf_counter() - t_admit)
            return _executor.stitch_tiles(plan, [])
        request = ServeRequest(next(self._ids), plan, loop.create_future())
        request.t_admit = t_admit
        self.metrics.on_admit()
        self._outstanding.add(request.future)
        request.future.add_done_callback(self._outstanding.discard)
        self._round_robin.append(request)
        self._pump()
        return await request.future

    def put_scene(self, inputs: Dict[str, np.ndarray]) -> str:
        """Pin ``inputs`` in the scene store and return its digest handle.

        Subsequent :meth:`submit_app` calls may pass ``scene=digest``
        instead of ``inputs`` and ship zero scene bytes.  The scene stays
        resident until :meth:`drop_scene` (it is exempt from cache
        eviction while pinned).  Shared-memory transport only.
        """
        if self.scene_store is None:
            raise ValueError("put_scene needs transport='shm'")
        return self.scene_store.pin(inputs).digest

    def drop_scene(self, digest: str) -> None:
        """Unpin a :meth:`put_scene` handle (idempotent once unpinned)."""
        if self.scene_store is None:
            raise ValueError("drop_scene needs transport='shm'")
        self.scene_store.unpin(digest)

    def close(self) -> None:
        """Tear down the scheduler-owned scene store (if any).

        Call after :meth:`drain`; the pool is closed separately by
        whoever owns it.  Idempotent.
        """
        if self._owns_store and self.scene_store is not None:
            self.scene_store.close()

    @property
    def active_requests(self) -> int:
        return len(self._round_robin)

    def stats(self) -> Dict[str, Any]:
        """Plain-JSON metrics snapshot plus pool state.

        This is the ``{"type": "stats"}`` response payload of the stdio
        front-end and the return value of ``ServingClient.stats()``.
        Call on the scheduler's event loop (the metrics registry is
        mutated there); cross-thread readers go through the loop like the
        client does.
        """
        snap = self.metrics.snapshot()
        snap["pool"] = {
            "capacity": self.pool.capacity,
            "start_method": self.pool.start_method,
            "restarts": self.pool.restarts,
            "broken": self.pool.broken,
            "closed": self.pool.closed,
        }
        snap["transport"] = self.transport
        snap["config"] = self.config.to_dict()
        if self.scene_store is not None:
            snap["scene_store"] = self.scene_store.stats()
        return snap

    async def drain(self) -> None:
        """Wait until every admitted request has resolved *and* every
        submitted tile future has delivered its callback.

        Call (on the scheduler's loop) before stopping that loop — a tile
        callback arriving after the loop is closed would otherwise raise
        ``RuntimeError`` in the pool's callback thread and strand any
        request still awaiting it.
        """
        if self._outstanding:
            await asyncio.gather(*list(self._outstanding),
                                 return_exceptions=True)
        while self._inflight:   # tiles of already-failed requests
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Fill free pool slots, one tile per active request per pass."""
        while self._inflight < self.max_inflight and self._round_robin:
            request = self._round_robin.popleft()
            if request.future.cancelled():
                # Caller gave up (e.g. wait_for timeout): stop dispatching
                # its tiles so they don't occupy slots live requests need.
                request.failed = True
                self._finalize(request, ok=False)
                continue
            if not request.has_pending:
                continue
            idx, task = request.take()
            if request.has_pending:
                self._round_robin.append(request)
            self.dispatch_log.append((request.id, idx))
            now = time.perf_counter()
            queue_wait = None
            if request.t_first_dispatch is None:
                request.t_first_dispatch = now
                queue_wait = now - request.t_admit
            self.metrics.on_dispatch(queue_wait)
            try:
                fut = self.pool.submit(_executor._run_tile, task)
            except Exception as exc:   # broken/closed pool at submit time
                self._fail(request, exc)
                self._revive_pool()
                continue
            self._inflight += 1
            self.metrics.tiles_inflight.inc()
            fut.add_done_callback(
                lambda f, request=request, idx=idx:
                self._loop.call_soon_threadsafe(
                    self._on_tile_done, request, idx, f))

    def _on_tile_done(self, request: ServeRequest, idx: int, fut) -> None:
        """Runs on the event loop for every finished tile future."""
        self._inflight -= 1
        self.metrics.on_tile_done()
        if request.future.cancelled():
            # Abandoned by the caller mid-flight: drop the result and stop
            # dispatching the rest (set_result on a cancelled future would
            # raise InvalidStateError into the loop).
            self._fail(request, asyncio.CancelledError())
        elif fut.cancelled():
            self._fail(request, BrokenProcessPool(
                "tile task cancelled by a pool restart"))
        else:
            exc = fut.exception()
            if exc is not None:
                self._fail(request, exc)
            elif not request.failed:
                request.results[idx] = fut.result()
                request.completed += 1
                if request.completed == len(request.plan.tasks):
                    request.future.set_result(
                        _executor.stitch_tiles(request.plan,
                                               request.results))
                    self._finalize(request, ok=True)
        self._revive_pool()
        self._pump()

    def _fail(self, request: ServeRequest, exc: BaseException) -> None:
        """Fail one request (once); its unsubmitted tiles are dropped."""
        request.failed = True
        try:
            self._round_robin.remove(request)
        except ValueError:
            pass
        if not request.future.done():
            request.future.set_exception(exc)
        self._finalize(request, ok=False)

    def _release_scene(self, plan: "_executor.TilePlan") -> None:
        """Drop one request's scene-store reference (shm transport)."""
        if (self.scene_store is not None and plan.scene is not None
                and plan.scene.digest is not None
                and not self.scene_store.closed):
            self.scene_store.release(plan.scene.digest)

    def _finalize(self, request: ServeRequest, ok: bool) -> None:
        """Record one request's terminal metrics, exactly once."""
        if request.counted:
            return
        request.counted = True
        self._release_scene(request.plan)
        now = time.perf_counter()
        start = request.t_first_dispatch
        self.metrics.on_request_done(
            ok,
            # never dispatched (failed/cancelled while queued): its whole
            # life was queue wait
            queue_wait=(now - request.t_admit) if start is None else None,
            exec_s=(now - start) if start is not None else None,
            latency_s=now - request.t_admit)

    def _revive_pool(self) -> None:
        """Respawn workers after a hard crash so later requests proceed."""
        if self.pool.broken and not self.pool.closed:
            self.pool.restart()
            self.metrics.on_pool_restart()
