"""Prometheus-style metrics for the serving layer.

The serving hot path (PR 5) had no observability: nothing recorded how
long a request queued before its first tile dispatched, how long it
executed, how many tiles the scheduler pushed, or how often a worker
crash forced a pool respawn.  :class:`ServeMetrics` is that surface.  One
instance lives on each :class:`~repro.serve.scheduler.Scheduler`
(``scheduler.metrics``); the scheduler feeds it from its dispatch loop,
and front-ends expose it two ways:

* ``scheduler.stats()`` / ``ServingClient.stats()`` — a plain-JSON
  snapshot (counters, gauges with high-water marks, and p50/p90/p99 of
  the recent latency windows), also served by ``serve_stdio`` as the
  ``{"type": "stats"}`` request;
* :meth:`ServeMetrics.render_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines), for scraping or log-shipping.

Counted quantities
------------------
``requests``   admitted / ok / failed, in-flight + high-water mark.
``tiles``      dispatched (one per ``dispatch_log`` entry — the test
               suite asserts the two agree), completed, in-flight + hwm.
``pool``       restarts (worker-death respawns by the scheduler).
``scenes``     scene-cache hits/misses and scene bytes shipped across a
               process boundary (zero for a shared-memory cache hit —
               see :mod:`repro.serve.transport`).
``windows``    ``queue_wait_s`` (request admission to first tile
               dispatch), ``exec_s`` (first dispatch to completion) and
               ``latency_s`` (admission to completion, successful
               requests only), each a bounded reservoir of recent
               observations with count/sum kept exactly.

All mutation happens on the scheduler's event loop (single-threaded), so
no locks are needed; cross-thread readers go through the loop (see
``ServingClient.stats``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["Counter", "Gauge", "Window", "ServeMetrics"]

#: Percentiles reported by every :class:`Window` snapshot.
PERCENTILES: Tuple[int, ...] = (50, 90, 99)


class Counter:
    """Monotonically increasing counter (Prometheus ``counter``)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Up/down gauge that also tracks its high-water mark.

    Prometheus models the hwm as a second gauge (``<name>_hwm``);
    :meth:`ServeMetrics.render_prometheus` emits both.
    """

    __slots__ = ("name", "help", "value", "hwm")

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.hwm = 0

    def inc(self, n: int = 1) -> None:
        self.value += n
        if self.value > self.hwm:
            self.hwm = self.value

    def dec(self, n: int = 1) -> None:
        self.value -= n


class Window:
    """Bounded reservoir of recent observations with exact count/sum.

    Percentiles are computed over the most recent ``maxlen`` observations
    only — a long-lived server must not accumulate an unbounded sample
    list — while ``count`` and ``sum`` stay exact for the whole lifetime
    (so rates and means survive the eviction).
    """

    __slots__ = ("name", "help", "count", "sum", "_recent")

    def __init__(self, name: str, help: str, maxlen: int = 4096) -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self._recent: "deque[float]" = deque(maxlen=maxlen)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self._recent.append(value)

    def percentiles(self, qs: Iterable[int] = PERCENTILES
                    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., ...}`` over the recent window; ``None`` if empty."""
        if not self._recent:
            return {f"p{q}": None for q in qs}
        arr = np.fromiter(self._recent, dtype=np.float64)
        return {f"p{q}": float(np.percentile(arr, q)) for q in qs}

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {"count": self.count, "sum": self.sum}
        snap.update(self.percentiles())
        snap["mean"] = (self.sum / self.count) if self.count else None
        snap["max"] = float(max(self._recent)) if self._recent else None
        return snap


class ServeMetrics:
    """The scheduler's metric registry (see the module docstring)."""

    def __init__(self) -> None:
        self.requests_admitted = Counter(
            "serve_requests_admitted_total", "Requests admitted")
        self.requests_ok = Counter(
            "serve_requests_ok_total", "Requests completed successfully")
        self.requests_failed = Counter(
            "serve_requests_failed_total",
            "Requests failed (bad kwargs, raising tile, worker death, "
            "caller cancellation)")
        self.requests_inflight = Gauge(
            "serve_requests_inflight", "Requests admitted but unresolved")
        self.tiles_dispatched = Counter(
            "serve_tiles_dispatched_total",
            "Tile tasks dispatched (one per dispatch_log entry)")
        self.tiles_completed = Counter(
            "serve_tiles_completed_total", "Tile futures delivered")
        self.tiles_inflight = Gauge(
            "serve_tiles_inflight", "Tile tasks submitted to the pool and "
            "not yet delivered")
        self.pool_restarts = Counter(
            "serve_pool_restarts_total",
            "Worker-pool respawns after a worker death broke the executor")
        self.scene_hits = Counter(
            "serve_scene_cache_hits_total",
            "Requests whose scene was already resident in the "
            "shared-memory scene store (zero scene bytes shipped)")
        self.scene_misses = Counter(
            "serve_scene_cache_misses_total",
            "Requests whose scene had to be published (or, under copy "
            "transport, copied and pickled) to the workers")
        self.scene_bytes_shipped = Counter(
            "serve_scene_bytes_shipped_total",
            "Scene bytes that crossed a process boundary: full inputs "
            "per copy-mode request or shm-store miss, zero on a hit")
        self.queue_wait_s = Window(
            "serve_queue_wait_seconds",
            "Request admission to first tile dispatch")
        self.exec_s = Window(
            "serve_exec_seconds",
            "First tile dispatch to request completion")
        self.latency_s = Window(
            "serve_latency_seconds",
            "Request admission to completion (successful requests)")

    # ------------------------------------------------------------------
    # scheduler hooks
    # ------------------------------------------------------------------
    def on_admit(self) -> None:
        self.requests_admitted.inc()
        self.requests_inflight.inc()

    def on_dispatch(self, queue_wait: Optional[float] = None) -> None:
        """One tile dispatched; ``queue_wait`` on the request's first."""
        self.tiles_dispatched.inc()
        if queue_wait is not None:
            self.queue_wait_s.observe(queue_wait)

    def on_tile_done(self) -> None:
        self.tiles_completed.inc()
        self.tiles_inflight.dec()

    def on_request_done(self, ok: bool, *,
                        queue_wait: Optional[float] = None,
                        exec_s: Optional[float] = None,
                        latency_s: Optional[float] = None) -> None:
        """One request resolved (exactly once per admitted request)."""
        (self.requests_ok if ok else self.requests_failed).inc()
        self.requests_inflight.dec()
        if queue_wait is not None:
            self.queue_wait_s.observe(queue_wait)
        if ok and exec_s is not None:
            self.exec_s.observe(exec_s)
        if ok and latency_s is not None:
            self.latency_s.observe(latency_s)

    def on_pool_restart(self) -> None:
        self.pool_restarts.inc()

    def on_scene(self, hit: bool, bytes_shipped: int) -> None:
        """One request's scene transport resolved (hit or shipped)."""
        (self.scene_hits if hit else self.scene_misses).inc()
        self.scene_bytes_shipped.inc(int(bytes_shipped))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON view — the ``{"type": "stats"}`` response payload.

        Every value is a JSON-native int/float/``None``; the dict always
        round-trips through ``json.dumps(..., allow_nan=False)``.
        """
        return {
            "requests": {
                "admitted": self.requests_admitted.value,
                "ok": self.requests_ok.value,
                "failed": self.requests_failed.value,
                "inflight": self.requests_inflight.value,
                "inflight_hwm": self.requests_inflight.hwm,
            },
            "tiles": {
                "dispatched": self.tiles_dispatched.value,
                "completed": self.tiles_completed.value,
                "inflight": self.tiles_inflight.value,
                "inflight_hwm": self.tiles_inflight.hwm,
            },
            "pool_restarts": self.pool_restarts.value,
            "scene_cache": {
                "hits": self.scene_hits.value,
                "misses": self.scene_misses.value,
                "hit_rate": (
                    self.scene_hits.value
                    / (self.scene_hits.value + self.scene_misses.value)
                    if (self.scene_hits.value + self.scene_misses.value)
                    else None),
                "bytes_shipped": self.scene_bytes_shipped.value,
            },
            "queue_wait_s": self.queue_wait_s.snapshot(),
            "exec_s": self.exec_s.snapshot(),
            "latency_s": self.latency_s.snapshot(),
        }

    def render_prometheus(self) -> str:
        """Text exposition format (``# HELP``/``# TYPE`` + samples)."""
        lines = []
        for c in (self.requests_admitted, self.requests_ok,
                  self.requests_failed, self.tiles_dispatched,
                  self.tiles_completed, self.pool_restarts,
                  self.scene_hits, self.scene_misses,
                  self.scene_bytes_shipped):
            lines += [f"# HELP {c.name} {c.help}",
                      f"# TYPE {c.name} counter",
                      f"{c.name} {c.value}"]
        for g in (self.requests_inflight, self.tiles_inflight):
            lines += [f"# HELP {g.name} {g.help}",
                      f"# TYPE {g.name} gauge",
                      f"{g.name} {g.value}",
                      f"# HELP {g.name}_hwm High-water mark of {g.name}",
                      f"# TYPE {g.name}_hwm gauge",
                      f"{g.name}_hwm {g.hwm}"]
        for w in (self.queue_wait_s, self.exec_s, self.latency_s):
            lines += [f"# HELP {w.name} {w.help}",
                      f"# TYPE {w.name} summary"]
            for key, value in w.percentiles().items():
                if value is not None:
                    q = int(key[1:]) / 100
                    lines.append(f'{w.name}{{quantile="{q}"}} {value:.9g}')
            lines += [f"{w.name}_sum {w.sum:.9g}",
                      f"{w.name}_count {w.count}"]
        return "\n".join(lines) + "\n"
