"""Line-delimited JSON request loop for ``python -m repro serve``.

One request per line on stdin, one response per line on stdout (responses
are written in *completion* order and echo the request ``id``, so a client
pipelining requests can match them up).  The loop serves requests
concurrently through one :class:`~repro.serve.scheduler.Scheduler` over a
resident :class:`~repro.serve.pool.WorkerPool` — submitting several
requests before reading responses interleaves their tiles on the shared
workers.

Run request (``"type": "run"``, the default when ``type`` is omitted)::

    {"id": 1, "kernel": "gamma_correct",
     "inputs": {"image": [[...], ...]},          # named 2-D arrays
     "length": 128, "tile": 8, "seed": 0,
     "engine_kwargs": {...}, "kernel_kwargs": {...},   # optional
     "backend": "packed"}                              # optional

* ``backend`` pins the request's execution backend (``unpacked`` /
  ``packed``); default is the server process's active backend.
* ``config`` may carry a full :class:`repro.config.RunConfig` object
  (``RunConfig.to_dict()`` shape) pinning the request's run
  configuration — engine model axes, tile, seed, backend — with the
  same unknown-key strictness as the request envelope; the other
  request keys override it field-by-field, and ``tile`` may be omitted
  when the config carries one.  Without it, requests inherit the
  server's config (echoed under ``"config"`` in the ``stats``
  response).
* ``engine_kwargs.fault_rates`` may be a JSON object of
  :class:`~repro.reram.faults.GateFaultRates` fields (``and2``/``or2``/
  ``xor2``/``maj3``/``read``) — decoded into the dataclass here, so
  faulty engines are reachable over the wire.
* ``seed`` must be a JSON integer.  ``null`` is rejected: it would reach
  the engine as "draw OS entropy", silently making served output
  nondeterministic — the one thing the serving layer promises not to be.
* Unknown keys are rejected with an ``ok: false`` response naming them;
  a silently ignored key (the pre-fix behaviour for ``backend``) means a
  client believes it pinned something it didn't.

Scene handles (shared-memory transport, the default) let a client
streaming many requests over the same inputs ship the arrays **once**:
publish them with ``put_scene``, then pass the returned digest as
``"scene"`` in run requests instead of ``"inputs"``, and drop the handle
when done::

    {"id": 3, "type": "put_scene", "inputs": {"image": [[...], ...]}}
    {"id": 4, "kernel": "gamma_correct", "scene": "<digest>",
     "length": 128, "tile": 8}
    {"id": 5, "type": "drop_scene", "scene": "<digest>"}

Stats request — a metrics snapshot of the scheduler/pool (see
:mod:`repro.serve.metrics`), answered immediately, never queued behind
compute::

    {"id": 2, "type": "stats"}

Response objects::

    {"id": 1, "ok": true, "output": [[...], ...],
     "energy_j": ..., "latency_s": ...}
    {"id": 1, "ok": true, ..., "nonfinite": 3}         # see below
    {"id": 2, "ok": true, "stats": {...}}              # stats request
    {"id": 3, "ok": true, "scene": "<digest>"}         # put_scene
    {"id": 5, "ok": true}                              # drop_scene
    {"id": 1, "ok": false, "error": "..."}             # on failure

Responses are **strict RFC 8259**: every ``json.dumps`` here runs with
``allow_nan=False``, and degenerate outputs containing ``NaN``/``±Inf``
(which the bare encoder would emit as literals strict parsers reject)
are mapped to JSON ``null`` with a ``nonfinite`` count flagging the
substitution.

A failed request (bad kwargs, worker crash) answers with ``ok: false``
and the loop keeps serving — the resident pool is never poisoned.  EOF on
stdin drains outstanding requests and exits.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
from typing import Any, Dict, Optional, TextIO, Tuple

import numpy as np

from ..config import RunConfig
from ..reram.faults import GateFaultRates
from .pool import WorkerPool, serving_mp_context
from .scheduler import Scheduler

__all__ = ["serve_stdio", "decode_request", "encode_response",
           "encode_error", "encode_stats"]

#: Every key a run request may carry; anything else is rejected by name.
REQUEST_KEYS = frozenset({
    "id", "type", "kernel", "inputs", "length", "tile", "seed",
    "engine_kwargs", "kernel_kwargs", "backend", "scene", "config",
})


def decode_request(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a parsed run-request object into ``submit_app`` kwargs.

    The caller extracts ``id`` *before* this runs, so a structurally
    invalid request still gets an error response carrying its own id (the
    pipelining correlation contract); only unparseable JSON loses it.

    Strictness is deliberate: an unknown key, a non-integer ``seed`` or a
    non-string ``backend`` raises (→ ``ok: false`` naming the problem)
    instead of being dropped — a mangled-but-accepted request breaks
    reproducibility claims silently, which is worse than failing.
    """
    unknown = sorted(set(raw) - REQUEST_KEYS)
    if unknown:
        raise ValueError(
            f"unknown request key(s): {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(sorted(REQUEST_KEYS))}")
    config = None
    if "config" in raw:
        # Same strictness as the request envelope: RunConfig.from_dict
        # rejects unknown/conflicting config keys by name.
        config = RunConfig.from_dict(raw["config"])
    scene = raw.get("scene")
    if scene is not None and not isinstance(scene, str):
        raise ValueError(f"scene must be a digest string, got {scene!r}")
    if scene is not None and "inputs" in raw:
        raise ValueError("pass either 'inputs' or 'scene', not both")
    required = ("kernel", "length") if scene is not None \
        else ("kernel", "inputs", "length")
    for key in required:
        if key not in raw:
            raise ValueError(f"request is missing {key!r}")
    if "tile" not in raw and (config is None or config.tile is None):
        raise ValueError("request is missing 'tile'")
    if "seed" in raw:
        seed = raw["seed"]
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(
                f"seed must be a JSON integer, got {seed!r}: a null/float "
                f"seed would make served output silently nondeterministic")
    else:
        seed = None   # the request config's seed, else the server's
    backend = raw.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ValueError(f"backend must be a string, got {backend!r}")
    inputs = None if scene is not None else {
        name: np.asarray(arr, dtype=np.float64)
        for name, arr in raw["inputs"].items()}
    engine_kwargs = dict(raw.get("engine_kwargs") or {})
    rates = engine_kwargs.get("fault_rates")
    if isinstance(rates, dict):
        # JSON boundary: the engine wants a GateFaultRates dataclass; a
        # JSON client can only send its fields as an object.
        try:
            engine_kwargs["fault_rates"] = GateFaultRates(**rates)
        except TypeError as exc:
            raise ValueError(f"bad fault_rates object: {exc}") from exc
    return {
        "kernel": raw["kernel"],
        "inputs": inputs,
        "length": int(raw["length"]),
        "tile": int(raw["tile"]) if "tile" in raw else None,
        "seed": seed,
        "engine_kwargs": engine_kwargs,
        "kernel_kwargs": raw.get("kernel_kwargs") or {},
        "backend": backend,
        "scene": scene,
        "config": config,
    }


def _null_nonfinite(arr: np.ndarray) -> Tuple[list, int]:
    """Nested lists with NaN/±Inf mapped to ``None``, plus their count."""
    mask = ~np.isfinite(arr)
    count = int(mask.sum())
    if not count:
        return arr.tolist(), 0
    out = arr.astype(object)
    out[mask] = None
    return out.tolist(), count


def encode_response(req_id: Any, image: np.ndarray, ledger) -> str:
    """Strict-JSON success response (see the module docstring).

    Bare ``json.dumps`` writes non-RFC-8259 ``NaN``/``Infinity`` literals
    for non-finite floats; here those are substituted with ``null`` and
    counted in a ``nonfinite`` field so the client knows the output was
    degenerate, and the dump runs with ``allow_nan=False`` as a backstop.
    """
    output, nonfinite = _null_nonfinite(
        np.asarray(image, dtype=np.float64))
    payload = {"id": req_id, "ok": True, "output": output,
               "energy_j": ledger.energy_j,
               "latency_s": ledger.latency_s}
    for key in ("energy_j", "latency_s"):
        if not math.isfinite(payload[key]):
            payload[key] = None
            nonfinite += 1
    if nonfinite:
        payload["nonfinite"] = nonfinite
    return json.dumps(payload, allow_nan=False)


def encode_error(req_id: Any, exc: BaseException) -> str:
    return json.dumps({"id": req_id, "ok": False,
                       "error": f"{type(exc).__name__}: {exc}"},
                      allow_nan=False)


def encode_stats(req_id: Any, stats: Dict[str, Any]) -> str:
    return json.dumps({"id": req_id, "ok": True, "stats": stats},
                      allow_nan=False)


def serve_stdio(in_stream: Optional[TextIO] = None,
                out_stream: Optional[TextIO] = None, *,
                jobs: Optional[int] = None, mp_context: Any = None,
                backend: Optional[str] = None,
                max_pending: int = 64,
                transport: Optional[str] = None,
                config: Optional[RunConfig] = None) -> int:
    """Run the serving loop until EOF on ``in_stream``; returns 0.

    ``config`` (a :class:`repro.config.RunConfig`, default
    ``RunConfig.default()`` — the fast preset) is the server's default
    run configuration: requests inherit its engine model axes, tile and
    seed unless they carry their own ``"config"``/explicit keys, and
    :meth:`Scheduler.stats` echoes it.  The explicit arguments override
    the config: ``jobs`` sizes the resident pool (default: the config's
    ``jobs``, but never below 2 — a 1-worker server cannot overlap
    requests), ``mp_context``/``backend`` pin its start method and
    execution backend, and ``transport`` picks the scene transport
    (``'shm'`` zero-copy shared-memory store with scene handles, or
    ``'copy'`` pickled tile slices; both are bit-identical to
    ``run_tiled``).  The default context here is ``forkserver`` where
    available (not the package-wide ``fork`` default): a serving process
    is multi-threaded for its whole life, and only a forkserver/spawn
    pool can respawn crashed workers without forking a threaded process.
    ``max_pending`` bounds the number of admitted-but-unfinished
    requests: each one holds its decoded tile plan in memory, so past
    the bound the loop stops reading stdin until a response goes out
    (backpressure instead of unbounded growth).
    """
    if max_pending < 1:
        raise ValueError("max_pending must be >= 1")
    cfg = RunConfig.resolve(config)
    if jobs is None:
        jobs = max(2, cfg.jobs)
    if backend is None:
        backend = cfg.backend
    if transport is None:
        transport = cfg.transport
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    if mp_context is None:
        mp_context = (cfg.mp_context if cfg.mp_context is not None
                      else serving_mp_context())

    async def _serve(pool: WorkerPool) -> None:
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        outstanding: set = set()

        def _write_line(line: str) -> None:
            out_stream.write(line + "\n")
            out_stream.flush()

        async def respond(line: str) -> None:
            # Off the loop thread: a big response to a slow/blocked stdout
            # reader must not park the event loop (that would freeze all
            # serving and can deadlock a pipelining client).  The lock
            # serialises writers so responses never interleave.
            async with write_lock:
                await loop.run_in_executor(None, _write_line, line)

        async def handle(raw_line: str) -> None:
            req_id = None
            try:
                raw = json.loads(raw_line)
                if not isinstance(raw, dict):
                    raise ValueError("request must be a JSON object")
                req_id = raw.get("id")
                rtype = raw.get("type", "run")
                if rtype == "stats":
                    # Metrics snapshot: answered from the loop thread
                    # immediately, never queued behind compute.
                    await respond(encode_stats(req_id, scheduler.stats()))
                    return
                if rtype == "put_scene":
                    extra = sorted(set(raw) - {"id", "type", "inputs"})
                    if extra:
                        raise ValueError(
                            f"unknown put_scene key(s): "
                            f"{', '.join(map(repr, extra))}")
                    if "inputs" not in raw:
                        raise ValueError("put_scene is missing 'inputs'")
                    inputs = {name: np.asarray(arr, dtype=np.float64)
                              for name, arr in raw["inputs"].items()}
                    digest = scheduler.put_scene(inputs)
                    await respond(json.dumps(
                        {"id": req_id, "ok": True, "scene": digest},
                        allow_nan=False))
                    return
                if rtype == "drop_scene":
                    scene = raw.get("scene")
                    if not isinstance(scene, str):
                        raise ValueError(
                            f"drop_scene needs a 'scene' digest string, "
                            f"got {scene!r}")
                    scheduler.drop_scene(scene)
                    await respond(json.dumps({"id": req_id, "ok": True},
                                             allow_nan=False))
                    return
                if rtype != "run":
                    raise ValueError(
                        f"unknown request type {rtype!r}; expected 'run', "
                        f"'stats', 'put_scene' or 'drop_scene'")
                request = decode_request(raw)
                image, ledger = await scheduler.submit_app(**request)
            except Exception as exc:  # answer, don't kill the loop
                await respond(encode_error(req_id, exc))
            else:
                await respond(encode_response(req_id, image, ledger))

        scheduler = Scheduler(pool, transport=transport, config=cfg)
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            if not line.strip():
                continue
            while len(outstanding) >= max_pending:
                await asyncio.wait(outstanding,
                                   return_when=asyncio.FIRST_COMPLETED)
            task = asyncio.ensure_future(handle(line))
            outstanding.add(task)
            task.add_done_callback(outstanding.discard)
        if outstanding:
            await asyncio.gather(*outstanding)
        await scheduler.drain()
        scheduler.close()   # unlink the scene store's shm segments

    # Start the workers (and the forkserver) before any other thread
    # exists — boot, not the first request, pays worker cold-start, and
    # the forkserver is established while the process is still
    # single-threaded.
    with WorkerPool(jobs, mp_context=mp_context, backend=backend) as pool:
        pool.warmup()
        asyncio.run(_serve(pool))
    return 0
