"""Line-delimited JSON request loop for ``python -m repro serve``.

One request per line on stdin, one response per line on stdout (responses
are written in *completion* order and echo the request ``id``, so a client
pipelining requests can match them up).  The loop serves requests
concurrently through one :class:`~repro.serve.scheduler.Scheduler` over a
resident :class:`~repro.serve.pool.WorkerPool` — submitting several
requests before reading responses interleaves their tiles on the shared
workers.

Request object::

    {"id": 1, "kernel": "gamma_correct",
     "inputs": {"image": [[...], ...]},          # named 2-D arrays
     "length": 128, "tile": 8, "seed": 0,
     "engine_kwargs": {...}, "kernel_kwargs": {...}}   # optional

Response object::

    {"id": 1, "ok": true, "output": [[...], ...],
     "energy_j": ..., "latency_s": ...}
    {"id": 1, "ok": false, "error": "..."}             # on failure

A failed request (bad kwargs, worker crash) answers with ``ok: false``
and the loop keeps serving — the resident pool is never poisoned.  EOF on
stdin drains outstanding requests and exits.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, Optional, TextIO

import numpy as np

from .pool import WorkerPool, serving_mp_context
from .scheduler import Scheduler

__all__ = ["serve_stdio", "decode_request", "encode_response",
           "encode_error"]


def decode_request(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a parsed request object into ``submit_app`` kwargs.

    The caller extracts ``id`` *before* this runs, so a structurally
    invalid request still gets an error response carrying its own id (the
    pipelining correlation contract); only unparseable JSON loses it.
    """
    for key in ("kernel", "inputs", "length", "tile"):
        if key not in raw:
            raise ValueError(f"request is missing {key!r}")
    inputs = {name: np.asarray(arr, dtype=np.float64)
              for name, arr in raw["inputs"].items()}
    return {
        "kernel": raw["kernel"],
        "inputs": inputs,
        "length": int(raw["length"]),
        "tile": int(raw["tile"]),
        "seed": raw.get("seed", 0),
        "engine_kwargs": raw.get("engine_kwargs") or {},
        "kernel_kwargs": raw.get("kernel_kwargs") or {},
    }


def encode_response(req_id: Any, image: np.ndarray, ledger) -> str:
    return json.dumps({"id": req_id, "ok": True,
                       "output": np.asarray(image).tolist(),
                       "energy_j": ledger.energy_j,
                       "latency_s": ledger.latency_s})


def encode_error(req_id: Any, exc: BaseException) -> str:
    return json.dumps({"id": req_id, "ok": False,
                       "error": f"{type(exc).__name__}: {exc}"})


def serve_stdio(in_stream: Optional[TextIO] = None,
                out_stream: Optional[TextIO] = None, *,
                jobs: int = 2, mp_context: Any = None,
                backend: Optional[str] = None,
                max_pending: int = 64) -> int:
    """Run the serving loop until EOF on ``in_stream``; returns 0.

    ``jobs`` sizes the resident pool, ``mp_context``/``backend`` pin its
    start method and execution backend.  The default context here is
    ``forkserver`` where available (not the package-wide ``fork``
    default): a serving process is multi-threaded for its whole life, and
    only a forkserver/spawn pool can respawn crashed workers without
    forking a threaded process.  ``max_pending`` bounds the number of
    admitted-but-unfinished requests: each one holds its decoded tile
    plan in memory, so past the bound the loop stops reading stdin until
    a response goes out (backpressure instead of unbounded growth).
    """
    if max_pending < 1:
        raise ValueError("max_pending must be >= 1")
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    if mp_context is None:
        mp_context = serving_mp_context()

    async def _serve(pool: WorkerPool) -> None:
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        outstanding: set = set()

        def _write_line(line: str) -> None:
            out_stream.write(line + "\n")
            out_stream.flush()

        async def respond(line: str) -> None:
            # Off the loop thread: a big response to a slow/blocked stdout
            # reader must not park the event loop (that would freeze all
            # serving and can deadlock a pipelining client).  The lock
            # serialises writers so responses never interleave.
            async with write_lock:
                await loop.run_in_executor(None, _write_line, line)

        async def handle(raw_line: str) -> None:
            req_id = None
            try:
                raw = json.loads(raw_line)
                if not isinstance(raw, dict):
                    raise ValueError("request must be a JSON object")
                req_id = raw.get("id")
                request = decode_request(raw)
                image, ledger = await scheduler.submit_app(**request)
            except Exception as exc:  # answer, don't kill the loop
                await respond(encode_error(req_id, exc))
            else:
                await respond(encode_response(req_id, image, ledger))

        scheduler = Scheduler(pool)
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            if not line.strip():
                continue
            while len(outstanding) >= max_pending:
                await asyncio.wait(outstanding,
                                   return_when=asyncio.FIRST_COMPLETED)
            task = asyncio.ensure_future(handle(line))
            outstanding.add(task)
            task.add_done_callback(outstanding.discard)
        if outstanding:
            await asyncio.gather(*outstanding)
        await scheduler.drain()

    # Start the workers (and the forkserver) before any other thread
    # exists — boot, not the first request, pays worker cold-start, and
    # the forkserver is established while the process is still
    # single-threaded.
    with WorkerPool(jobs, mp_context=mp_context, backend=backend) as pool:
        pool.warmup()
        asyncio.run(_serve(pool))
    return 0
