"""Synchronous programmatic client for the serving layer.

:class:`ServingClient` owns a resident :class:`~repro.serve.pool.WorkerPool`
and a :class:`~repro.serve.scheduler.Scheduler` running on a background
event-loop thread, and exposes a plain blocking/future API so ordinary
scripts (``examples/serving.py``, ``benchmarks/bench_serve.py``) can serve
requests without writing any asyncio::

    with ServingClient(jobs=4) as client:
        fut_a = client.submit("gamma_correct", inputs_a, 128, tile=8,
                              kernel_kwargs={"gamma": 0.5})
        fut_b = client.submit("matting", inputs_b, 64, tile=8, seed=3)
        image_a, ledger_a = fut_a.result()   # tiles of a and b interleaved
        image_b, ledger_b = fut_b.result()

Every request is bit-identical to the equivalent
:func:`repro.apps.executor.run_tiled` call (same kernel/inputs/length/
tile/seed/kwargs), alone or concurrent — the scheduler guarantees it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..config import RunConfig
from ..core.backend import get_backend
from ..energy.model import EnergyLedger
from .pool import WorkerPool, serving_mp_context
from .scheduler import Scheduler

__all__ = ["ServingClient"]


class ServingClient:
    """Blocking facade over a resident pool + asyncio scheduler.

    Parameters
    ----------
    jobs:
        Worker processes for the owned pool (ignored when ``pool`` is
        given).
    mp_context / backend:
        Forwarded to the owned :class:`WorkerPool`.  The default context
        is :func:`~repro.serve.pool.serving_mp_context` (forkserver where
        available), not the batch-path ``fork`` default: the client is a
        long-lived multi-threaded front-end whose scheduler auto-restarts
        crashed pools, and only forkserver/spawn can respawn workers
        without forking a threaded process.
    pool:
        Serve over an existing pool instead of owning one (the caller
        keeps responsibility for closing it).
    max_inflight:
        Scheduler in-flight budget (default: pool capacity).
    warmup:
        Start every worker during construction instead of lazily on the
        first request (default True — serving wants cold-start paid at
        boot, not billed to the first caller).
    transport:
        Scene transport: ``'shm'`` ships scenes once through the
        content-addressed shared-memory store (repeated scenes are
        zero-byte cache hits, and :meth:`put_scene` handles are
        available); ``'copy'`` pickles tile slices per request.  Both
        are bit-identical to ``run_tiled``.  ``None`` (default) takes
        the config's transport.
    config:
        The client's default :class:`repro.config.RunConfig`; ``None``
        resolves to ``RunConfig.default()`` — the fast preset.  Every
        request inherits it unless it carries its own ``config=``, and
        the explicit constructor arguments above override its
        ``jobs``/``backend``/``mp_context``/``transport`` fields.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 mp_context: Any = None,
                 backend: Optional[str] = None,
                 pool: Optional[WorkerPool] = None,
                 max_inflight: Optional[int] = None,
                 warmup: bool = True,
                 transport: Optional[str] = None,
                 config: Optional[RunConfig] = None):
        cfg = RunConfig.resolve(config)
        self.config = cfg
        if jobs is None:
            jobs = max(2, cfg.jobs)
        if backend is None:
            backend = cfg.backend
        self._owns_pool = pool is None
        if pool is None and mp_context is None:
            mp_context = (cfg.mp_context if cfg.mp_context is not None
                          else serving_mp_context())
        self.pool = pool if pool is not None else WorkerPool(
            jobs, mp_context=mp_context, backend=backend)
        try:
            # validate before warming: a bad max_inflight must not leave
            # an orphaned, already-spawned worker fleet behind
            self.scheduler = Scheduler(self.pool, max_inflight=max_inflight,
                                       transport=transport, config=cfg)
            if warmup:
                self.pool.warmup()
        except BaseException:
            if self._owns_pool:
                self.pool.close()
            raise
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-client", daemon=True)
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def submit(self, kernel: str,
               inputs: Optional[Dict[str, np.ndarray]],
               length: int, *, config: Optional[RunConfig] = None,
               tile: Optional[int] = None, seed: Optional[int] = None,
               engine_kwargs: Optional[Dict[str, Any]] = None,
               kernel_kwargs: Optional[Dict[str, Any]] = None,
               backend: Optional[str] = None,
               scene: Optional[str] = None
               ) -> concurrent.futures.Future:
        """Enqueue one request; the future resolves to ``(image, ledger)``.

        ``config`` pins this request's run configuration (default: the
        client's own config); the explicit arguments override it
        field-by-field.  The caller's active execution backend, input
        arrays and kwargs dicts are captured now, in the calling thread:
        the backend is process-global and the plan is built later on the
        loop thread, so without the snapshot a caller reusing/mutating a
        buffer or kwargs dict after ``submit`` returns would race the
        request build.  ``scene`` (a :meth:`put_scene` digest) replaces
        ``inputs`` — the request then carries no arrays at all, so
        nothing is copied here either.
        """
        if self._loop.is_closed():
            raise RuntimeError("ServingClient is closed")
        if backend is None:
            req_cfg = config if config is not None else self.config
            backend = (req_cfg.backend if req_cfg.backend is not None
                       else get_backend().name)
        if scene is None:
            inputs = {name: np.array(arr, copy=True)
                      for name, arr in inputs.items()}
        engine_kwargs = dict(engine_kwargs) if engine_kwargs else None
        kernel_kwargs = dict(kernel_kwargs) if kernel_kwargs else None
        return asyncio.run_coroutine_threadsafe(
            self.scheduler.submit_app(
                kernel, inputs, length, config=config, tile=tile,
                seed=seed, engine_kwargs=engine_kwargs,
                kernel_kwargs=kernel_kwargs, backend=backend, scene=scene),
            self._loop)

    def request(self, kernel: str,
                inputs: Optional[Dict[str, np.ndarray]],
                length: int, *, config: Optional[RunConfig] = None,
                tile: Optional[int] = None, seed: Optional[int] = None,
                engine_kwargs: Optional[Dict[str, Any]] = None,
                kernel_kwargs: Optional[Dict[str, Any]] = None,
                backend: Optional[str] = None,
                scene: Optional[str] = None
                ) -> Tuple[np.ndarray, EnergyLedger]:
        """Blocking single request — submit and wait."""
        return self.submit(kernel, inputs, length, config=config,
                           tile=tile, seed=seed,
                           engine_kwargs=engine_kwargs,
                           kernel_kwargs=kernel_kwargs,
                           backend=backend, scene=scene).result()

    def put_scene(self, inputs: Dict[str, np.ndarray]) -> str:
        """Publish + pin a scene; returns the digest for ``submit(scene=)``.

        The scene stays resident in the shared-memory store (exempt from
        eviction) until :meth:`drop_scene`; repeated :meth:`submit` calls
        against the handle ship zero scene bytes.  The store is
        thread-safe, so this never hops onto the loop thread.
        """
        if self._loop.is_closed():
            raise RuntimeError("ServingClient is closed")
        return self.scheduler.put_scene(inputs)

    def drop_scene(self, digest: str) -> None:
        """Unpin a :meth:`put_scene` handle."""
        if self._loop.is_closed():
            raise RuntimeError("ServingClient is closed")
        self.scheduler.drop_scene(digest)

    def stats(self) -> Dict[str, Any]:
        """Metrics snapshot (:meth:`repro.serve.scheduler.Scheduler.stats`).

        Runs on the scheduler's loop thread — the metrics registry is
        only ever mutated there, so the snapshot is always consistent
        even while requests are in flight.
        """
        if self._loop.is_closed():
            raise RuntimeError("ServingClient is closed")

        async def _snap() -> Dict[str, Any]:
            return self.scheduler.stats()

        return asyncio.run_coroutine_threadsafe(_snap(),
                                                self._loop).result()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain outstanding requests, then tear down loop and pool.

        The drain must happen while the loop still runs: in-flight tile
        callbacks land on it via ``call_soon_threadsafe``, so stopping the
        loop first would raise in the pool's callback thread and leave any
        pending ``submit`` future unresolved forever.
        """
        if not self._loop.is_closed():
            asyncio.run_coroutine_threadsafe(
                self.scheduler.drain(), self._loop).result()
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()
            self.scheduler.close()   # unlink scene-store shm segments
        if self._owns_pool and not self.pool.closed:
            self.pool.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
