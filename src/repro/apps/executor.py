"""Sharded tile executor for the application and filter pipelines.

A scene is decomposed into square tiles; every tile becomes one independent
unit of SC work (its own :class:`~repro.imsc.engine.InMemorySCEngine` and
RNG) that a worker pool can execute in any order.  This is the software
analogue of fanning an image out across ReRAM mats: each mat converts and
computes its tile locally, and only binary tile results travel back.

Determinism contract
--------------------
* The tile grid depends only on the image shape and ``tile`` — never on
  ``jobs`` — and tiles are stitched by index.
* Per-tile RNGs derive from ``numpy.random.SeedSequence(seed).spawn(n)``,
  so tile *i* sees the same random stream no matter which worker runs it or
  how many workers exist.  ``jobs=1`` (in-process) and ``jobs=N`` (process
  pool) therefore produce bit-identical images.
* Tiled output differs from the untiled whole-image run (each tile has its
  own random-row fill) but is itself a fixed function of
  ``(seed, tile, image)``.

Workers receive only picklable primitives (arrays, the kernel name, engine
kwargs, a child ``SeedSequence``) and re-select the execution backend by
name, so the pool behaves identically under ``fork`` and ``spawn`` start
methods — and the start method is pinned explicitly (``mp_context``
argument, resolved via :func:`repro.serve.pool.default_mp_context`) rather
than left to the interpreter's mutable global default.  The same
:func:`pool_map` primitive backs the Monte-Carlo accuracy harness's
sharded :func:`repro.core.accuracy.op_mse` path.

Pool reuse and serving
----------------------
``pool_map`` historically spun up a throwaway ``ProcessPoolExecutor`` per
call; it is now a thin wrapper over the resident
:class:`repro.serve.pool.WorkerPool` and accepts ``pool=`` to run over a
long-lived instance instead (``run_tiled(..., pool=...)`` threads it
through), so request-serving workloads pay worker startup once.  The
request decomposition itself is exposed as :func:`build_tile_tasks` /
:func:`stitch_tiles`; the asyncio serving layer
(:mod:`repro.serve.scheduler`) uses exactly these to interleave tiles from
concurrent requests onto one shared pool while preserving the per-request
determinism contract above.

Beyond the three evaluation applications, :data:`KERNELS` registers the
four SC image filters of :mod:`repro.apps.filters`; filter-specific
parameters (``gamma``, ``lo``/``hi``, ...) travel via ``kernel_kwargs``.

Every entry point here takes one :class:`repro.config.RunConfig`
(``config=``) in place of the historical kwarg fan; per-field kwargs
remain as overrides, and with neither the fast preset
(packed + column + sparse) applies.  Request validation lives behind
:func:`repro.config.validate_task_kwargs` / ``RunConfig.validate_for`` —
this module re-exports the old underscore names as aliases.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..config import (
    RunConfig,
    _ENGINE_PROBE_CACHE as _ENGINE_PROBE_CACHE,
    _engine_param_names as _engine_param_names,
    _kernel_sig_info as _kernel_sig_info,
    _probe_engine_kwargs as _probe_engine_kwargs,
    validate_task_kwargs,
)
from ..core.backend import get_backend, set_backend
from ..energy.model import EnergyLedger
from ..imsc.engine import InMemorySCEngine
from .compositing import composite_sc_kernel
from .filters import (
    contrast_stretch_kernel,
    gamma_correct_kernel,
    mean_filter_kernel,
    roberts_cross_kernel,
)
from .interpolation import upscale_sc_kernel
from .matting import matting_sc_kernel

__all__ = ["tile_grid", "run_tiled", "pool_map", "KERNELS", "TilePlan",
           "build_tile_tasks", "stitch_tiles"]

#: Flat per-tile kernels, keyed by app/filter name.  Each takes ``(engine,
#: **named 1-D arrays, length=..., **kernel_kwargs)`` and returns a 1-D
#: float image.
KERNELS = {
    "compositing": composite_sc_kernel,
    "interpolation": upscale_sc_kernel,
    "matting": matting_sc_kernel,
    "roberts_cross": roberts_cross_kernel,
    "mean_filter": mean_filter_kernel,
    "gamma_correct": gamma_correct_kernel,
    "contrast_stretch": contrast_stretch_kernel,
}


def tile_grid(height: int, width: int,
              tile: int) -> List[Tuple[int, int, int, int]]:
    """Row-major ``(r0, r1, c0, c1)`` bounds of a ``tile x tile`` decomposition.

    Edge tiles are clipped; the grid covers every pixel exactly once.
    """
    if tile < 1:
        raise ValueError("tile must be a positive integer")
    return [(r, min(r + tile, height), c, min(c + tile, width))
            for r in range(0, height, tile)
            for c in range(0, width, tile)]


def pool_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
             jobs: Optional[int] = None, *, pool: Optional[Any] = None,
             mp_context: Any = None,
             config: Optional[RunConfig] = None) -> List[Any]:
    """Deterministic map over picklable tasks, fanned over ``jobs`` workers.

    ``jobs=1`` runs in-process (no pool, identical results); results are
    always returned in task order, so callers reducing over them are
    independent of worker scheduling.  The one-shot pool never spawns more
    workers than there are tasks — a small faulty sweep with ``jobs=8``
    and three tiles pays three process startups, not eight.

    ``pool=`` runs the map over a resident
    :class:`repro.serve.pool.WorkerPool` instead (``jobs`` is then
    ignored: the pool's own capacity governs parallelism), so back-to-back
    calls amortise worker startup.  ``mp_context`` pins the start method
    of the one-shot pool (name, context object, or ``None`` for the
    pinned platform default — see :mod:`repro.serve.pool`); results are
    bit-identical either way because tasks are self-contained.

    ``config=`` (a :class:`repro.config.RunConfig`) supplies ``jobs`` and
    ``mp_context`` when the explicit arguments are left ``None``; the
    explicit arguments always win.
    """
    cfg = RunConfig.resolve(config)
    if jobs is None:
        jobs = cfg.jobs
    if mp_context is None:
        mp_context = cfg.mp_context
    if pool is not None:
        return pool.map(fn, tasks)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError("jobs must be >= 1")
    workers = min(jobs, len(tasks))
    if workers <= 1:
        return [fn(t) for t in tasks]
    from ..serve.pool import WorkerPool  # deferred: serve sits above apps
    with WorkerPool(workers, mp_context=mp_context) as one_shot:
        return one_shot.map(fn, tasks)


# The cached engine/kernel kwarg validation machinery used to live here;
# it is now the single copy in :mod:`repro.config` (behind
# ``RunConfig.validate_for``), shared with the serving scheduler.  The
# historical underscore names stay importable from this module — tests and
# external callers poke them (`_ENGINE_PROBE_CACHE.clear()` etc.), and the
# aliases are the *same* objects, so clearing the cache here clears it
# everywhere.
_validate_task_kwargs = validate_task_kwargs


def _run_tile(task: Tuple[str, str, Any, int,
                          Dict[str, Any], Dict[str, Any],
                          np.random.SeedSequence]
              ) -> Tuple[np.ndarray, EnergyLedger]:
    """Execute one tile: fresh engine, deterministic child RNG.

    The third task element is either a dict of copied 1-D tile arrays
    (copy transport — the default) or a
    :class:`repro.serve.transport.SceneTileRef` (shared-memory reference
    transport): the worker then attaches to the published scene segment
    and copies out just its tile window, bit-identically to the copy
    mode's parent-side slice.
    """
    (backend_name, kernel_name, arrays, length, engine_kwargs,
     kernel_kwargs, child) = task
    if not isinstance(arrays, dict):   # SceneTileRef: resolve via shm
        from ..serve.transport import fetch_tile
        arrays = fetch_tile(arrays)
    set_backend(backend_name)
    engine = InMemorySCEngine(rng=np.random.default_rng(child),
                              **engine_kwargs)
    out = KERNELS[kernel_name](engine, length=length, **arrays,
                               **kernel_kwargs)
    return np.asarray(out, dtype=np.float64), engine.ledger


class TilePlan(NamedTuple):
    """A tiled request, decomposed into self-contained worker tasks.

    Produced by :func:`build_tile_tasks`; ``tasks[i]`` is the picklable
    argument :func:`_run_tile` expects for grid cell ``grid[i]``, and
    :func:`stitch_tiles` reassembles the per-tile results.  The plan is a
    pure function of ``(kernel, inputs, length, tile, seed, kwargs)`` —
    executing its tasks in any order, on any pool, yields the same image.

    ``scene`` is the transport accounting ticket
    (:class:`repro.serve.transport.SceneTicket`): under shared-memory
    transport its ``digest`` names the published scene the executing
    side must ``release`` once the request resolves; in copy mode the
    digest is ``None`` and ``bytes_shipped`` counts the copied inputs.
    """

    kernel: str
    shape: Tuple[int, int]
    grid: List[Tuple[int, int, int, int]]
    tasks: List[Tuple]
    scene: Optional[Any] = None


def build_tile_tasks(kernel: str, inputs: Optional[Dict[str, np.ndarray]],
                     length: int, *, config: Optional[RunConfig] = None,
                     tile: Optional[int] = None, seed: Optional[int] = None,
                     engine_kwargs: Optional[Dict[str, Any]] = None,
                     kernel_kwargs: Optional[Dict[str, Any]] = None,
                     backend: Optional[str] = None,
                     scene_store: Optional[Any] = None,
                     scene: Optional[str] = None) -> TilePlan:
    """Validate one tiled request and decompose it into per-tile tasks.

    This is the request-side half of :func:`run_tiled` (the other half is
    :func:`stitch_tiles`); the serving scheduler calls it directly so that
    tiles from different requests can interleave on one pool.  All
    validation happens here, in the caller's process, so a bad request
    fails before anything is submitted.  ``backend`` overrides the
    process-active execution backend baked into the tasks — the threaded
    serving client uses it to capture its caller's backend at submit time.

    ``config=`` (a :class:`repro.config.RunConfig`, defaulting to
    ``RunConfig.default()`` — the fast preset) supplies ``tile``, ``seed``
    and ``backend`` when the explicit arguments are ``None``, and pins the
    engine's model axes; explicit arguments and ``engine_kwargs`` keys
    override the config field-by-field (see
    :meth:`RunConfig.merged_engine_kwargs` for the one bit→dense
    coercion).

    Transport modes
    ---------------
    * Default (``scene_store=None``): every task carries copied tile
      slices — self-contained and pickled to the workers.
    * ``scene_store=`` (a :class:`repro.serve.transport.SceneStore`):
      the inputs are published once into shared memory (content-addressed
      — a repeated scene is a cache hit shipping zero bytes) and tasks
      carry only tile *references*.  The returned plan's
      ``scene.digest`` holds one store reference the caller must
      ``release`` after the request resolves (the scheduler and
      ``run_tiled`` both do).
    * ``scene=`` (a digest string, requires ``scene_store``): build the
      plan for an already-published scene without the arrays at all —
      the ``put_scene`` handle path; ``inputs`` must then be ``None``.

    Both transports produce bit-identical output: the worker-side tile
    copy matches the parent-side ``.copy().ravel()`` exactly.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown tile kernel {kernel!r}")
    cfg = RunConfig.resolve(config)
    if tile is None:
        tile = cfg.tile
    if tile is None:
        raise ValueError("a tile size is required: pass tile= or set it "
                         "on the config")
    if seed is None:
        seed = cfg.seed
    if backend is None:
        backend = cfg.backend
    engine_kwargs = cfg.merged_engine_kwargs(engine_kwargs)
    if scene is not None:
        if scene_store is None:
            raise ValueError("scene= (a digest) requires scene_store=")
        if inputs is not None:
            raise ValueError("pass either inputs or scene=, not both")
    elif inputs is None:
        raise ValueError("inputs is required without scene=")
    ticket = None
    try:
        # Everything from the checkout/publish ref-acquire onward sits
        # inside this try: any exception before the plan is returned must
        # drop the store reference, or the scene never unlinks (RL005).
        if scene is not None:
            fields, (height, width) = scene_store.checkout(scene)
            from ..serve.transport import SceneTicket
            ticket = SceneTicket(scene, True, 0)
            input_names = [name for name, _, _, _ in fields]
        else:
            shapes = {v.shape for v in inputs.values()}
            if len(shapes) != 1 or any(len(s) != 2 for s in shapes):
                raise ValueError("tiled inputs must share one 2-D shape")
            (height, width), = shapes
            input_names = list(inputs)
        grid = tile_grid(height, width, tile)
        children = np.random.SeedSequence(seed).spawn(len(grid))
        backend_name = get_backend(backend).name
        kernel_kwargs = dict(kernel_kwargs or {})
        validate_task_kwargs(kernel, input_names, engine_kwargs,
                             kernel_kwargs)
        if scene_store is not None:
            if ticket is None:
                ticket = scene_store.publish(inputs)
            tasks = [
                (backend_name, kernel,
                 scene_store.tile_ref(ticket.digest, window),
                 length, engine_kwargs, kernel_kwargs, children[i])
                for i, window in enumerate(grid)
            ]
        else:
            from ..serve.transport import SceneTicket
            ticket = SceneTicket(
                None, False, sum(int(a.nbytes) for a in inputs.values()))
            # .copy(): full-width slices would otherwise ravel to *views*
            # of the caller's buffer, and a plan can outlive this call
            # (the async scheduler pickles tiles later) — a caller
            # mutating its input after submit must not change what the
            # workers compute.
            tasks = [
                (backend_name, kernel,
                 {name: arr[r0:r1, c0:c1].copy().ravel()
                  for name, arr in inputs.items()},
                 length, engine_kwargs, kernel_kwargs, children[i])
                for i, (r0, r1, c0, c1) in enumerate(grid)
            ]
    except BaseException:
        # A rejected request must not strand the store reference taken by
        # checkout() / publish() above.
        if ticket is not None and ticket.digest is not None:
            scene_store.release(ticket.digest)
        raise
    return TilePlan(kernel, (height, width), grid, tasks, ticket)


def stitch_tiles(plan: TilePlan,
                 results: Sequence[Tuple[np.ndarray, EnergyLedger]]
                 ) -> Tuple[np.ndarray, EnergyLedger]:
    """Reassemble per-tile results (in grid order) into ``(image, ledger)``."""
    height, width = plan.shape
    out = np.empty((height, width), dtype=np.float64)
    ledger = EnergyLedger()
    for (r0, r1, c0, c1), (tile_out, tile_ledger) in zip(plan.grid, results):
        out[r0:r1, c0:c1] = tile_out.reshape(r1 - r0, c1 - c0)
        ledger.merge(tile_ledger)
    return out, ledger


def run_tiled(kernel: str, inputs: Dict[str, np.ndarray], length: int, *,
              config: Optional[RunConfig] = None,
              tile: Optional[int] = None, jobs: Optional[int] = None,
              seed: Optional[int] = None,
              engine_kwargs: Optional[Dict[str, Any]] = None,
              kernel_kwargs: Optional[Dict[str, Any]] = None,
              pool: Optional[Any] = None, mp_context: Any = None,
              scene_store: Optional[Any] = None
              ) -> Tuple[np.ndarray, EnergyLedger]:
    """Run one application kernel over a tiled scene, optionally in parallel.

    Parameters
    ----------
    kernel:
        Key into :data:`KERNELS` ('compositing' | 'interpolation' |
        'matting' | 'roberts_cross' | 'mean_filter' | 'gamma_correct' |
        'contrast_stretch').
    inputs:
        Named 2-D arrays, all of the *output* grid's shape; each tile task
        receives the matching sub-arrays, flattened.  The filter modules
        export ``*_inputs`` helpers building these from a source image.
    length:
        SC stream length N.
    config:
        A :class:`repro.config.RunConfig` supplying every axis below that
        is left ``None`` (plus the engine model axes and the backend);
        ``None`` resolves to ``RunConfig.default()`` — the fast preset
        (packed + column + sparse).  Explicit arguments override the
        config field-by-field.
    tile:
        Tile edge length in pixels (required here or on the config).
    jobs:
        Worker processes; ``1`` executes in-process (no pool, same bits).
    seed:
        Root seed for the per-tile ``SeedSequence`` spawn.
    engine_kwargs:
        Extra :class:`InMemorySCEngine` constructor arguments (fault rates,
        fault domain, fault sampling, cell model, ...) applied to every
        tile engine, overriding the config's model axes key-by-key.
        Validated up front in the parent process — an unknown key or
        invalid value raises a :class:`ValueError` naming it, instead of
        an opaque pickled ``TypeError`` from a worker.
    kernel_kwargs:
        Extra keyword arguments forwarded to the kernel itself (e.g.
        ``gamma``/``degree`` for 'gamma_correct', ``lo``/``hi`` for
        'contrast_stretch').  Must be picklable.
    pool:
        Optional resident :class:`repro.serve.pool.WorkerPool` to execute
        on (``jobs`` is then ignored); back-to-back calls over one pool
        skip the per-call worker startup.  Output is bit-identical to the
        one-shot path.
    mp_context:
        Start method for the one-shot pool (see :func:`pool_map`).
    scene_store:
        Optional :class:`repro.serve.transport.SceneStore`: publish the
        inputs into shared memory and hand the workers tile *references*
        instead of copied slices (the serving layer's zero-copy
        transport).  Copy mode — the default — remains bit-identical;
        back-to-back calls over one store and one resident ``pool``
        re-ship nothing for a repeated scene.

    Returns
    -------
    ``(image, ledger)`` — the stitched output and the serial merge of all
    tile ledgers.  The ledger models total device work and is independent
    of ``jobs``; host-side wall-clock parallelism is not a hardware cost.
    """
    cfg = RunConfig.resolve(config)
    plan = build_tile_tasks(kernel, inputs, length, config=cfg, tile=tile,
                            seed=seed, engine_kwargs=engine_kwargs,
                            kernel_kwargs=kernel_kwargs,
                            scene_store=scene_store)
    try:
        results = pool_map(_run_tile, plan.tasks, jobs, pool=pool,
                           mp_context=mp_context, config=cfg)
    finally:
        if scene_store is not None and plan.scene is not None:
            scene_store.release(plan.scene.digest)
    return stitch_tiles(plan, results)
