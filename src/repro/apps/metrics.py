"""Image quality metrics: MSE, PSNR, SSIM (Table IV's reporting metrics)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

__all__ = ["mse", "psnr", "ssim", "quality_pair"]


def _check_pair(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"image shapes differ: {x.shape} vs {y.shape}")
    return x, y


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error (images in [0, 1])."""
    x, y = _check_pair(reference, test)
    d = x - y
    return float(np.mean(d * d))


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; +inf for identical images."""
    err = mse(reference, test)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


def ssim(reference: np.ndarray, test: np.ndarray, sigma: float = 1.5,
         k1: float = 0.01, k2: float = 0.03, peak: float = 1.0) -> float:
    """Structural similarity index (Wang et al.), Gaussian-windowed.

    Uses the standard 11-tap-equivalent Gaussian window (sigma = 1.5) and
    constants ``C1 = (k1*L)^2``, ``C2 = (k2*L)^2``.  Returns the mean SSIM
    over the frame in ``[-1, 1]`` (1 = identical).
    """
    x, y = _check_pair(reference, test)
    c1 = (k1 * peak) ** 2
    c2 = (k2 * peak) ** 2
    mu_x = ndimage.gaussian_filter(x, sigma)
    mu_y = ndimage.gaussian_filter(y, sigma)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    var_x = ndimage.gaussian_filter(x * x, sigma) - mu_xx
    var_y = ndimage.gaussian_filter(y * y, sigma) - mu_yy
    cov = ndimage.gaussian_filter(x * y, sigma) - mu_xy
    num = (2.0 * mu_xy + c1) * (2.0 * cov + c2)
    den = (mu_xx + mu_yy + c1) * (var_x + var_y + c2)
    return float(np.mean(num / den))


def quality_pair(reference: np.ndarray, test: np.ndarray) -> Tuple[float, float]:
    """(SSIM in percent, PSNR in dB) — Table IV's cell format."""
    return ssim(reference, test) * 100.0, psnr(reference, test)
