"""Image compositing: ``C = F*alpha + B*(1 - alpha)`` (Fig. 3a).

Three implementations:

* :func:`composite_float` — the exact reference.
* :func:`composite_sc` — the SC dataflow: the foreground/background streams
  are generated *correlated* and blended by the select stream.  With
  SCC(F, B) = +1 the paper's CIM-friendly 3-input majority computes::

      MAJ(f, b, s) = (f AND b) OR (s AND (f XOR b))
                   = min(F, B) + s * |F - B|          (for SCC(f,b) = +1)

  i.e. a blend *toward the larger operand*.  Orienting the select in the
  binary domain before stream generation — ``s_eff = alpha`` where
  ``F >= B``, else ``1 - alpha`` — makes the single-cycle MAJ compute
  ``alpha*F + (1-alpha)*B`` exactly for every pixel.  (The orientation bit
  is one comparator decision during operand staging, not a datapath op.)
  A ``use_mux=True`` flag keeps the conventional MUX for ablation.
* :func:`composite_bincim` — the binary CIM baseline: two 8-bit fixed-point
  multiplications plus an addition, bit-serial in memory.
"""

from __future__ import annotations


import numpy as np

from ..bincim.design import BinaryCimDesign
from ..core import ops as scops
from ..core.streambatch import StreamBatch
from ..imsc.engine import InMemorySCEngine
from .images import from_uint8, to_uint8

__all__ = ["composite_float", "composite_sc", "composite_sc_kernel",
           "composite_bincim"]


def composite_float(foreground: np.ndarray, background: np.ndarray,
                    alpha: np.ndarray) -> np.ndarray:
    """Exact compositing reference."""
    f = np.asarray(foreground, dtype=np.float64)
    b = np.asarray(background, dtype=np.float64)
    a = np.asarray(alpha, dtype=np.float64)
    return f * a + b * (1.0 - a)


def composite_sc_kernel(engine: InMemorySCEngine, foreground: np.ndarray,
                        background: np.ndarray, alpha: np.ndarray,
                        length: int, use_mux: bool = False) -> np.ndarray:
    """Flat compositing kernel: 1-D operand arrays in, 1-D image out.

    This is the unit of work the sharded executor fans out per tile; the
    whole-image wrapper below just ravels/reshapes around it.  The F/B
    operand stack is generated as one batched stream array and split by
    payload slicing (:meth:`StreamBatch.select`) — no unpacking under any
    backend.
    """
    # One in-memory random-row fill serves the whole image (the hardware
    # reuses the TRNG rows across conversions): F/B streams share that
    # draw, which both satisfies the MAJ correlation requirement and makes
    # the stochastic error spatially smooth — pixels with similar values
    # get nearly identical errors, preserving structural similarity.
    f, b, a = foreground, background, alpha
    fb = StreamBatch.from_bitstream(
        engine.generate_correlated(np.stack([f, b]), length))
    sf = fb.select(0).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    sb = fb.select(1).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    if use_mux:
        # Conventional MUX (select = alpha, 1 -> foreground), priced like a
        # single-step op for an apples-to-apples accuracy ablation.
        sa = engine.generate_correlated(a, length)
        out = scops.mux2(sa, sb, sf)
        engine._book_op("scaled_addition", length, f.size)  # noqa: SLF001
    else:
        # Orient the select toward the larger operand (see module docs);
        # the select streams use a second, independent random-row fill.
        a_eff = np.where(f >= b, a, 1.0 - a)
        sa = engine.generate_correlated(a_eff, length)
        out = engine.maj(sf, sb, sa)
    return engine.to_binary(out)


def composite_sc(engine: InMemorySCEngine, foreground: np.ndarray,
                 background: np.ndarray, alpha: np.ndarray, length: int,
                 use_mux: bool = False) -> np.ndarray:
    """SC compositing on the in-memory engine.

    Streams are generated per pixel; F/B share the RNG (correlated), alpha
    is independent.  The output image is recovered through the engine's
    S-to-B path.
    """
    shape = np.shape(foreground)
    out = composite_sc_kernel(engine, np.ravel(foreground),
                              np.ravel(background), np.ravel(alpha),
                              length, use_mux=use_mux)
    return out.reshape(shape)


def composite_bincim(design: BinaryCimDesign, foreground: np.ndarray,
                     background: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Binary CIM compositing on 8-bit data: ``(F*a + B*(255-a)) / 255``."""
    f8 = to_uint8(foreground).ravel()
    b8 = to_uint8(background).ravel()
    a8 = to_uint8(alpha).ravel()
    fa = design.multiply(f8, a8)              # 16-bit products
    ba = design.multiply(b8, 255 - a8)
    total = fa + ba                           # final add priced below
    design.ledger.merge(design.op_cost("add", batch=f8.size))
    out8 = np.clip(np.rint(total / 255.0), 0, 255).astype(np.int64)
    return from_uint8(out8).reshape(np.shape(foreground))
