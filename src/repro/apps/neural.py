"""Stochastic-computing neural inference (the paper's motivating domain).

The introduction motivates SC with edge vision and neural networks
(SC-DCNN, fully parallel SC CNNs).  This module implements the standard SC
inference primitives on top of the library's ops so the in-memory engine
can run a small dense network:

* **bipolar multiply** — XNOR of uncorrelated streams multiplies weights in
  ``[-1, 1]`` with activations;
* **scaled accumulation** — a balanced MUX tree (here: the population-count
  formulation, equivalent in expectation) averages ``k`` products,
  computing ``(1/k) * sum_i w_i x_i``;
* **activation** — the scaled-sum stream is thresholded (sign activation)
  or re-scaled.

The dot product's ``1/k`` scaling is the classic SC accumulation trade-off;
weights can be pre-scaled to compensate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.bitstream import Bitstream
from ..core.encoding import bipolar_to_prob, prob_to_bipolar
from ..imsc.engine import InMemorySCEngine

__all__ = ["ScDotProduct", "ScDenseLayer", "sc_dot_product"]


def sc_dot_product(engine: InMemorySCEngine, x: np.ndarray, w: np.ndarray,
                   length: int,
                   rng: Union[np.random.Generator, int, None] = None
                   ) -> float:
    """Bipolar SC dot product ``(1/k) * sum_i w_i x_i``.

    ``x`` and ``w`` are bipolar values in ``[-1, 1]``.  Products come from
    XNOR on independent streams; accumulation selects one product stream
    per bit position uniformly (the MUX-tree semantics).
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.shape != w.shape or x.ndim != 1:
        raise ValueError("x and w must be equal-length vectors")
    k = x.size
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sx = engine.generate(bipolar_to_prob(x), length)
    sw = engine.generate(bipolar_to_prob(w), length)
    # XNOR products (one enhanced-SL sensing step each).
    prods = (1 - (sx.bits ^ sw.bits)).astype(np.uint8)
    # MUX-tree accumulation: per bit position, a uniform select picks one
    # product stream — P(out) = mean_i P(prod_i).
    sel = gen.integers(0, k, size=length)
    out_bits = prods[sel, np.arange(length)]
    out = Bitstream(out_bits)
    return float(prob_to_bipolar(engine.to_binary(out)))


@dataclass
class ScDotProduct:
    """Reusable dot-product unit with a fixed weight vector."""

    weights: np.ndarray
    length: int = 256

    def __post_init__(self):
        w = np.asarray(self.weights, dtype=np.float64)
        if np.any((w < -1) | (w > 1)):
            raise ValueError("weights must lie in [-1, 1]")
        self.weights = w

    def __call__(self, engine: InMemorySCEngine, x: np.ndarray,
                 rng=None) -> float:
        return sc_dot_product(engine, x, self.weights, self.length, rng)

    def exact(self, x: np.ndarray) -> float:
        """Reference scaled dot product."""
        x = np.asarray(x, dtype=np.float64)
        return float(np.dot(self.weights, x) / self.weights.size)


class ScDenseLayer:
    """A dense layer of SC neurons with sign activation.

    Parameters
    ----------
    weights:
        ``(out_features, in_features)`` bipolar weight matrix.
    length:
        Stream length per inference.
    """

    def __init__(self, weights: np.ndarray, length: int = 256):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError("weights must be 2-D")
        if np.any((w < -1) | (w > 1)):
            raise ValueError("weights must lie in [-1, 1]")
        self.weights = w
        self.length = length

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    def forward(self, engine: InMemorySCEngine, x: np.ndarray,
                rng=None) -> np.ndarray:
        """Scaled pre-activations ``(1/k) W x`` via SC, one per neuron."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.in_features,):
            raise ValueError(
                f"expected input of {self.in_features} features")
        gen = (rng if isinstance(rng, np.random.Generator)
               else np.random.default_rng(rng))
        return np.array([
            sc_dot_product(engine, x, self.weights[j], self.length, gen)
            for j in range(self.out_features)])

    def predict(self, engine: InMemorySCEngine, x: np.ndarray,
                rng=None) -> int:
        """Argmax class over the neurons' scaled pre-activations."""
        return int(np.argmax(self.forward(engine, x, rng)))

    def exact_forward(self, x: np.ndarray) -> np.ndarray:
        return self.weights @ np.asarray(x, dtype=np.float64) / self.in_features
