"""Evaluation applications: compositing, interpolation, matting + metrics."""

from .images import (
    band_limited_noise,
    checkerboard,
    from_uint8,
    gaussian_blobs,
    gradient_image,
    natural_scene,
    scene_triplet,
    soft_alpha_matte,
    to_uint8,
)
from .metrics import mse, psnr, quality_pair, ssim
from .compositing import (
    composite_bincim,
    composite_float,
    composite_sc,
    composite_sc_kernel,
)
from .interpolation import (
    neighbour_grid,
    upscale_bincim,
    upscale_float,
    upscale_sc,
    upscale_sc_kernel,
)
from .matting import (
    matting_bincim,
    matting_float,
    matting_sc,
    matting_sc_kernel,
    recomposite_quality_inputs,
)
from .executor import run_tiled, tile_grid
from .pipeline import APPS, AppResult, BACKENDS, run_app
from .neural import ScDenseLayer, ScDotProduct, sc_dot_product
from .filters import (
    contrast_stretch_float,
    contrast_stretch_sc,
    gamma_correct_float,
    gamma_correct_sc,
    mean_filter_float,
    mean_filter_sc,
    roberts_cross_float,
    roberts_cross_sc,
)

__all__ = [
    "band_limited_noise", "checkerboard", "from_uint8", "gaussian_blobs",
    "gradient_image", "natural_scene", "scene_triplet", "soft_alpha_matte",
    "to_uint8",
    "mse", "psnr", "quality_pair", "ssim",
    "composite_bincim", "composite_float", "composite_sc",
    "composite_sc_kernel",
    "neighbour_grid", "upscale_bincim", "upscale_float", "upscale_sc",
    "upscale_sc_kernel",
    "matting_bincim", "matting_float", "matting_sc", "matting_sc_kernel",
    "recomposite_quality_inputs",
    "run_tiled", "tile_grid",
    "APPS", "AppResult", "BACKENDS", "run_app",
    "contrast_stretch_float", "contrast_stretch_sc",
    "gamma_correct_float", "gamma_correct_sc",
    "mean_filter_float", "mean_filter_sc",
    "roberts_cross_float", "roberts_cross_sc",
    "ScDenseLayer", "ScDotProduct", "sc_dot_product",
]
