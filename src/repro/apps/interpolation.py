"""Bilinear interpolation up-scaling (Fig. 3b).

``I(x, y) = (1-dx)(1-dy) I11 + (1-dx) dy I12 + dx (1-dy) I21 + dx dy I22``
over each 4-pixel neighbourhood — a 4-to-1 MUX in the SC domain, with the
coordinate distances ``dx``/``dy`` on the select ports.

The SC implementation realises the 4-to-1 MUX as a two-level tree of
2-to-1 scouting-logic MUXes (2 ANDs + OR per level, exact for any operand
ordering); the two select streams ``dx``/``dy`` are independent.  The
first level can optionally use the single-cycle majority blend with
binary-domain select orientation (see :mod:`repro.apps.compositing`).

The binary CIM baseline uses three fixed-point lerps (two mults + adds
each), the standard digital decomposition.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..bincim.design import BinaryCimDesign
from ..core.streambatch import StreamBatch
from ..imsc.engine import InMemorySCEngine
from .images import from_uint8, to_uint8

__all__ = [
    "upscale_float",
    "upscale_sc",
    "upscale_sc_kernel",
    "upscale_bincim",
    "neighbour_grid",
]


def neighbour_grid(image: np.ndarray, factor: int
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, np.ndarray, Tuple[int, int]]:
    """Neighbour pixels and fractional distances for every output pixel.

    Returns ``(i11, i12, i21, i22, dx, dy, out_shape)`` — flattened arrays
    over the up-scaled grid.  ``i21`` is the x-neighbour (``dx`` selects it),
    ``i12`` the y-neighbour, matching the paper's select-port assignment.
    """
    img = np.asarray(image, dtype=np.float64)
    h, w = img.shape
    oh, ow = h * factor, w * factor
    # Align-corners sampling keeps every source pixel on the output grid.
    ys = np.linspace(0, h - 1, oh)
    xs = np.linspace(0, w - 1, ow)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    dy = (ys - y0)[:, None] * np.ones((1, ow))
    dx = np.ones((oh, 1)) * (xs - x0)[None, :]
    i11 = img[np.ix_(y0, x0)]
    i12 = img[np.ix_(y1, x0)]   # step in y
    i21 = img[np.ix_(y0, x1)]   # step in x
    i22 = img[np.ix_(y1, x1)]
    return (i11.ravel(), i12.ravel(), i21.ravel(), i22.ravel(),
            dx.ravel(), dy.ravel(), (oh, ow))


def upscale_float(image: np.ndarray, factor: int = 2) -> np.ndarray:
    """Exact bilinear up-scaling reference."""
    i11, i12, i21, i22, dx, dy, shape = neighbour_grid(image, factor)
    out = ((1 - dx) * (1 - dy) * i11 + (1 - dx) * dy * i12
           + dx * (1 - dy) * i21 + dx * dy * i22)
    return out.reshape(shape)


def upscale_sc_kernel(engine: InMemorySCEngine, i11: np.ndarray,
                      i12: np.ndarray, i21: np.ndarray, i22: np.ndarray,
                      dx: np.ndarray, dy: np.ndarray, length: int,
                      first_level_maj: bool = True) -> np.ndarray:
    """Flat interpolation kernel over precomputed neighbour arrays.

    The four neighbour roles are generated as one batched stream array and
    split by payload slicing; the sharded executor calls this kernel per
    output tile (neighbour lookup itself happens once, up front, in the
    binary domain).
    """
    # Shared random-row fills (one per independent stream role) keep the
    # per-pixel stochastic error spatially smooth; see compositing.
    stacked = np.stack([i11, i12, i21, i22])
    streams = StreamBatch.from_bitstream(
        engine.generate_correlated(stacked, length))
    s11, s12, s21, s22 = (streams.select(k).to_bitstream() for k in range(4))  # repro-lint: disable=RL003 -- zero-copy payload wrap
    sdy = engine.generate_correlated(dy, length)
    if first_level_maj:
        dx_lo = np.where(i21 >= i11, dx, 1.0 - dx)
        dx_hi = np.where(i22 >= i12, dx, 1.0 - dx)
        sel = StreamBatch.from_bitstream(
            engine.generate_correlated(np.stack([dx_lo, dx_hi]), length))
        low = engine.maj(s21, s11, sel.select(0).to_bitstream())   # repro-lint: disable=RL003 -- zero-copy payload wrap
        high = engine.maj(s22, s12, sel.select(1).to_bitstream())  # repro-lint: disable=RL003 -- zero-copy payload wrap
    else:
        sdx = engine.generate_correlated(dx, length)
        low = engine.mux(sdx, s11, s21)    # dx=1 -> i21
        high = engine.mux(sdx, s12, s22)
    out = engine.mux(sdy, low, high)       # dy=1 -> high
    return engine.to_binary(out)


def upscale_sc(engine: InMemorySCEngine, image: np.ndarray, length: int,
               factor: int = 2, first_level_maj: bool = True) -> np.ndarray:
    """SC bilinear up-scaling: two-level MUX tree on the engine.

    With ``first_level_maj=True`` the two x-blends use the single-cycle
    majority with select orientation (the neighbour pixel values are known
    in the binary domain during staging); the final y-blend always uses the
    explicit SL MUX because its operands are intermediate streams.
    """
    i11, i12, i21, i22, dx, dy, shape = neighbour_grid(image, factor)
    out = upscale_sc_kernel(engine, i11, i12, i21, i22, dx, dy, length,
                            first_level_maj=first_level_maj)
    return out.reshape(shape)


def upscale_bincim(design: BinaryCimDesign, image: np.ndarray,
                   factor: int = 2) -> np.ndarray:
    """Binary CIM bilinear up-scaling via three fixed-point lerps."""
    i11, i12, i21, i22, dx, dy, shape = neighbour_grid(image, factor)

    def lerp8(a8: np.ndarray, b8: np.ndarray, t8: np.ndarray) -> np.ndarray:
        # a*(255-t) + b*t, renormalised to 8 bits.
        pa = design.multiply(a8, 255 - t8)
        pb = design.multiply(b8, t8)
        total = pa + pb
        design.ledger.merge(design.op_cost("add", batch=a8.size))
        return np.clip(np.rint(total / 255.0), 0, 255).astype(np.int64)

    dx8 = to_uint8(dx.reshape(-1))
    dy8 = to_uint8(dy.reshape(-1))
    low = lerp8(to_uint8(i11), to_uint8(i21), dx8)
    high = lerp8(to_uint8(i12), to_uint8(i22), dx8)
    out = lerp8(low, high, dy8)
    return from_uint8(out).reshape(shape)
