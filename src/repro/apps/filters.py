"""Additional SC image-processing kernels (Li et al. [5], the paper's
motivating application class).

Beyond the three evaluation applications, this module implements the
classic SC image filters, each mapped onto the in-memory engine's ops:

* **Roberts-cross edge detection** — two absolute differences (correlated
  XOR) merged with a scaled add: the canonical SC image kernel;
* **mean filtering** — a MUX/MAJ tree over a pixel neighbourhood;
* **gamma correction** — Bernstein-polynomial evaluation of ``x^gamma``;
* **contrast stretching** — saturating linear map via correlated min/max.

All kernels take float images in ``[0, 1]`` and an
:class:`~repro.imsc.engine.InMemorySCEngine`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.bitstream import Bitstream
from ..core.polynomial import bernstein_eval_exact, bernstein_from_power
from ..imsc.engine import InMemorySCEngine

__all__ = [
    "roberts_cross_float",
    "roberts_cross_sc",
    "mean_filter_float",
    "mean_filter_sc",
    "gamma_correct_float",
    "gamma_correct_sc",
    "contrast_stretch_float",
    "contrast_stretch_sc",
]


# ---------------------------------------------------------------------------
# Roberts cross edge detection
# ---------------------------------------------------------------------------
def roberts_cross_float(image: np.ndarray) -> np.ndarray:
    """Edge magnitude ``(|p(i,j)-p(i+1,j+1)| + |p(i,j+1)-p(i+1,j)|) / 2``."""
    img = np.asarray(image, dtype=np.float64)
    d1 = np.abs(img[:-1, :-1] - img[1:, 1:])
    d2 = np.abs(img[:-1, 1:] - img[1:, :-1])
    return (d1 + d2) / 2.0


def roberts_cross_sc(engine: InMemorySCEngine, image: np.ndarray,
                     length: int) -> np.ndarray:
    """SC Roberts cross: two correlated XORs + one MAJ-based scaled add."""
    img = np.asarray(image, dtype=np.float64)
    p00 = img[:-1, :-1].ravel()
    p11 = img[1:, 1:].ravel()
    p01 = img[:-1, 1:].ravel()
    p10 = img[1:, :-1].ravel()
    shape = (img.shape[0] - 1, img.shape[1] - 1)
    # All four neighbourhood streams share the random rows: XOR needs
    # correlated inputs and the shared draw keeps errors spatially smooth.
    streams = engine.generate_correlated(np.stack([p00, p11, p01, p10]),
                                         length)
    s00, s11, s01, s10 = (Bitstream(streams.bits[k]) for k in range(4))
    d1 = engine.abs_subtract(s00, s11)
    d2 = engine.abs_subtract(s01, s10)
    half = engine.generate_correlated(np.full(p00.size, 0.5), length)
    out = engine.maj(d1, d2, half)
    return engine.to_binary(out).reshape(shape)


# ---------------------------------------------------------------------------
# Mean filter
# ---------------------------------------------------------------------------
def mean_filter_float(image: np.ndarray) -> np.ndarray:
    """2x2 box filter (valid region)."""
    img = np.asarray(image, dtype=np.float64)
    return (img[:-1, :-1] + img[:-1, 1:] + img[1:, :-1] + img[1:, 1:]) / 4.0


def mean_filter_sc(engine: InMemorySCEngine, image: np.ndarray,
                   length: int) -> np.ndarray:
    """2x2 mean via a two-level scaled-add (MAJ) tree."""
    img = np.asarray(image, dtype=np.float64)
    a = img[:-1, :-1].ravel()
    b = img[:-1, 1:].ravel()
    c = img[1:, :-1].ravel()
    d = img[1:, 1:].ravel()
    shape = (img.shape[0] - 1, img.shape[1] - 1)
    streams = engine.generate_correlated(np.stack([a, b, c, d]), length)
    sa, sb, sc_, sd = (Bitstream(streams.bits[k]) for k in range(4))
    half1 = engine.generate_correlated(np.full(a.size, 0.5), length)
    half2 = engine.generate_correlated(np.full(a.size, 0.5), length)
    half3 = engine.generate_correlated(np.full(a.size, 0.5), length)
    lo = engine.maj(sa, sb, half1)     # (a + b) / 2
    hi = engine.maj(sc_, sd, half2)    # (c + d) / 2
    out = engine.maj(lo, hi, half3)    # average of averages
    return engine.to_binary(out).reshape(shape)


# ---------------------------------------------------------------------------
# Gamma correction (Bernstein polynomial)
# ---------------------------------------------------------------------------
def _gamma_bernstein(gamma: float, degree: int = 4) -> np.ndarray:
    """Least-squares Bernstein fit of ``x ** gamma`` on [0, 1]."""
    xs = np.linspace(0.0, 1.0, 256)
    target = xs ** gamma
    # Design matrix of Bernstein basis polynomials.
    from math import comb
    basis = np.stack([comb(degree, k) * xs ** k * (1 - xs) ** (degree - k)
                      for k in range(degree + 1)], axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
    return np.clip(coeffs, 0.0, 1.0)


def gamma_correct_float(image: np.ndarray, gamma: float = 0.45) -> np.ndarray:
    """Reference gamma correction ``x ** gamma``."""
    return np.asarray(image, dtype=np.float64) ** gamma


def gamma_correct_sc(engine: InMemorySCEngine, image: np.ndarray,
                     length: int, gamma: float = 0.45,
                     degree: int = 4) -> np.ndarray:
    """SC gamma correction via the Bernstein MUX network.

    ``degree`` independent copies of the pixel stream feed the select
    population count; the Bernstein coefficients ride in constant streams.
    """
    img = np.asarray(image, dtype=np.float64)
    flat = img.ravel()
    b = _gamma_bernstein(gamma, degree)
    # n independent input copies per pixel.
    copies = [engine.generate(flat, length) for _ in range(degree)]
    count = np.zeros(copies[0].bits.shape, dtype=np.int64)
    for s in copies:
        count += s.bits
    coeff_streams = [engine.generate_correlated(np.full(flat.size, bk),
                                                length)
                     for bk in b]
    out = np.zeros_like(coeff_streams[0].bits)
    for k in range(degree + 1):
        out = np.where(count == k, coeff_streams[k].bits, out)
    return engine.to_binary(Bitstream(out.astype(np.uint8))).reshape(img.shape)


# ---------------------------------------------------------------------------
# Contrast stretching
# ---------------------------------------------------------------------------
def contrast_stretch_float(image: np.ndarray, lo: float = 0.2,
                           hi: float = 0.8) -> np.ndarray:
    """Saturating linear stretch of ``[lo, hi]`` onto ``[0, 1]``."""
    img = np.asarray(image, dtype=np.float64)
    return np.clip((img - lo) / (hi - lo), 0.0, 1.0)


def contrast_stretch_sc(engine: InMemorySCEngine, image: np.ndarray,
                        length: int, lo: float = 0.2,
                        hi: float = 0.8) -> np.ndarray:
    """SC contrast stretch: subtract-then-divide on correlated streams.

    ``min(|x - lo|, hi - lo) / (hi - lo)`` for ``x > lo`` — built from the
    correlated XOR (subtract), AND (min) and CORDIV (divide) ops.  Pixels
    below ``lo`` clamp to 0 through the max-overlap XOR.
    """
    img = np.asarray(image, dtype=np.float64)
    flat = img.ravel()
    n = flat.size
    span = hi - lo
    stacked = np.stack([flat, np.full(n, lo), np.full(n, hi)])
    streams = engine.generate_correlated(stacked, length)
    sx = Bitstream(streams.bits[0])
    slo = Bitstream(streams.bits[1])
    shi = Bitstream(streams.bits[2])
    num = engine.abs_subtract(sx, slo)      # |x - lo|
    den = engine.abs_subtract(shi, slo)     # hi - lo (correlated => exact)
    num = engine.minimum(num, den)          # saturate the numerator
    out = engine.divide(num, den)           # CORDIV
    vals = engine.to_binary(out).reshape(img.shape)
    # Below-lo pixels computed |x - lo| on the wrong side; mask them to 0
    # (the binary-domain staging knows the orientation bit, as in the
    # oriented-MAJ blend).
    return np.where(img <= lo, 0.0, vals)
