"""Additional SC image-processing kernels (Li et al. [5], the paper's
motivating application class).

Beyond the three evaluation applications, this module implements the
classic SC image filters, each mapped onto the in-memory engine's ops:

* **Roberts-cross edge detection** — two absolute differences (correlated
  XOR) merged with a scaled add: the canonical SC image kernel;
* **mean filtering** — a MAJ tree over a pixel neighbourhood;
* **gamma correction** — Bernstein-polynomial evaluation of ``x^gamma``;
* **contrast stretching** — saturating linear map via correlated min/max.

Each filter exists in three forms, mirroring the evaluation applications:

* ``*_float`` — the exact reference;
* ``*_kernel`` — the flat per-tile kernel (1-D operand arrays in, 1-D
  image out) registered in :data:`repro.apps.executor.KERNELS`, so every
  filter runs through ``run_tiled(..., jobs=N)`` with deterministic
  per-tile seeds.  Operands are generated as one batched
  :class:`~repro.core.streambatch.StreamBatch` per role stack and split by
  payload slicing — under the packed backend nothing unpacks, including
  the Bernstein select network (word-domain
  :meth:`~repro.core.streambatch.StreamBatch.exact_count`) and the S-to-B
  readout when the engine uses ``cell_model='column'``;
* ``*_sc`` — the whole-image wrapper (neighbourhood extraction + reshape
  around the kernel), keeping the historical signature.

The MAJ-based filters draw their 0.5 select streams with the engine's
*independent* ``generate`` — correlating the select with the operands (as
an earlier revision did via ``generate_correlated``) biases the scaled
add, exactly the failure mode Table II's ``OP_SPECS`` avoids by using an
independent auxiliary stream.

All kernels take float images in ``[0, 1]`` and an
:class:`~repro.imsc.engine.InMemorySCEngine`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.streambatch import StreamBatch
from ..imsc.engine import InMemorySCEngine

__all__ = [
    "roberts_cross_float",
    "roberts_cross_inputs",
    "roberts_cross_kernel",
    "roberts_cross_sc",
    "mean_filter_float",
    "mean_filter_inputs",
    "mean_filter_kernel",
    "mean_filter_sc",
    "gamma_correct_float",
    "gamma_correct_inputs",
    "gamma_correct_kernel",
    "gamma_correct_sc",
    "contrast_stretch_float",
    "contrast_stretch_inputs",
    "contrast_stretch_kernel",
    "contrast_stretch_sc",
]


def _corners(image: np.ndarray) -> Dict[str, np.ndarray]:
    """2x2 neighbourhood corners as 2-D views of the valid output grid."""
    img = np.asarray(image, dtype=np.float64)
    return {"p00": img[:-1, :-1], "p01": img[:-1, 1:],
            "p10": img[1:, :-1], "p11": img[1:, 1:]}


# ---------------------------------------------------------------------------
# Roberts cross edge detection
# ---------------------------------------------------------------------------
def roberts_cross_float(image: np.ndarray) -> np.ndarray:
    """Edge magnitude ``(|p(i,j)-p(i+1,j+1)| + |p(i,j+1)-p(i+1,j)|) / 2``."""
    img = np.asarray(image, dtype=np.float64)
    d1 = np.abs(img[:-1, :-1] - img[1:, 1:])
    d2 = np.abs(img[:-1, 1:] - img[1:, :-1])
    return (d1 + d2) / 2.0


def roberts_cross_inputs(image: np.ndarray) -> Dict[str, np.ndarray]:
    """Named 2-D operand arrays for the tiled executor (output-grid shape)."""
    return _corners(image)


def roberts_cross_kernel(engine: InMemorySCEngine, p00: np.ndarray,
                         p01: np.ndarray, p10: np.ndarray, p11: np.ndarray,
                         length: int) -> np.ndarray:
    """Flat Roberts cross: two correlated XORs + one MAJ-based scaled add.

    All four neighbourhood streams share the random rows: XOR needs
    correlated inputs and the shared draw keeps errors spatially smooth.
    The 0.5 MAJ select is an independent stream (see module docs).
    """
    streams = StreamBatch.from_bitstream(
        engine.generate_correlated(np.stack([p00, p11, p01, p10]), length))
    # Audited: select() slices the payload and to_bitstream() wraps it —
    # no bit expansion under either backend (RL003 audit trail below).
    d1 = engine.abs_subtract(streams.select(0).to_bitstream(),  # repro-lint: disable=RL003 -- zero-copy payload wrap
                             streams.select(1).to_bitstream())  # repro-lint: disable=RL003 -- zero-copy payload wrap
    d2 = engine.abs_subtract(streams.select(2).to_bitstream(),  # repro-lint: disable=RL003 -- zero-copy payload wrap
                             streams.select(3).to_bitstream())  # repro-lint: disable=RL003 -- zero-copy payload wrap
    half = engine.generate(np.full(p00.size, 0.5), length)
    return np.asarray(engine.to_binary(engine.maj(d1, d2, half)))


def roberts_cross_sc(engine: InMemorySCEngine, image: np.ndarray,
                     length: int) -> np.ndarray:
    """SC Roberts cross over a whole image."""
    corners = _corners(image)
    shape = corners["p00"].shape
    out = roberts_cross_kernel(
        engine, length=length,
        **{name: arr.ravel() for name, arr in corners.items()})
    return out.reshape(shape)


# ---------------------------------------------------------------------------
# Mean filter
# ---------------------------------------------------------------------------
def mean_filter_float(image: np.ndarray) -> np.ndarray:
    """2x2 box filter (valid region)."""
    img = np.asarray(image, dtype=np.float64)
    return (img[:-1, :-1] + img[:-1, 1:] + img[1:, :-1] + img[1:, 1:]) / 4.0


def mean_filter_inputs(image: np.ndarray) -> Dict[str, np.ndarray]:
    """Named 2-D operand arrays for the tiled executor (output-grid shape)."""
    return _corners(image)


def mean_filter_kernel(engine: InMemorySCEngine, p00: np.ndarray,
                       p01: np.ndarray, p10: np.ndarray, p11: np.ndarray,
                       length: int) -> np.ndarray:
    """Flat 2x2 mean via a two-level scaled-add (MAJ) tree.

    The three 0.5 selects are mutually independent ``generate`` draws
    (independent of the operands as well) so each MAJ is an unbiased
    scaled addition.
    """
    streams = StreamBatch.from_bitstream(
        engine.generate_correlated(np.stack([p00, p01, p10, p11]), length))
    sa, sb, sc_, sd = (streams.select(k).to_bitstream() for k in range(4))  # repro-lint: disable=RL003 -- zero-copy payload wrap
    halves = [engine.generate(np.full(p00.size, 0.5), length)
              for _ in range(3)]
    lo = engine.maj(sa, sb, halves[0])     # (p00 + p01) / 2
    hi = engine.maj(sc_, sd, halves[1])    # (p10 + p11) / 2
    out = engine.maj(lo, hi, halves[2])    # average of averages
    return np.asarray(engine.to_binary(out))


def mean_filter_sc(engine: InMemorySCEngine, image: np.ndarray,
                   length: int) -> np.ndarray:
    """SC 2x2 mean filter over a whole image."""
    corners = _corners(image)
    shape = corners["p00"].shape
    out = mean_filter_kernel(
        engine, length=length,
        **{name: arr.ravel() for name, arr in corners.items()})
    return out.reshape(shape)


# ---------------------------------------------------------------------------
# Gamma correction (Bernstein polynomial)
# ---------------------------------------------------------------------------
def _gamma_bernstein(gamma: float, degree: int = 4) -> np.ndarray:
    """Least-squares Bernstein fit of ``x ** gamma`` on [0, 1]."""
    xs = np.linspace(0.0, 1.0, 256)
    target = xs ** gamma
    # Design matrix of Bernstein basis polynomials.
    from math import comb
    basis = np.stack([comb(degree, k) * xs ** k * (1 - xs) ** (degree - k)
                      for k in range(degree + 1)], axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
    return np.clip(coeffs, 0.0, 1.0)


def gamma_correct_float(image: np.ndarray, gamma: float = 0.45) -> np.ndarray:
    """Reference gamma correction ``x ** gamma``."""
    return np.asarray(image, dtype=np.float64) ** gamma


def gamma_correct_inputs(image: np.ndarray) -> Dict[str, np.ndarray]:
    """Named 2-D operand arrays for the tiled executor (pointwise filter)."""
    return {"image": np.asarray(image, dtype=np.float64)}


def gamma_correct_kernel(engine: InMemorySCEngine, image: np.ndarray,
                         length: int, gamma: float = 0.45,
                         degree: int = 4) -> np.ndarray:
    """Flat SC gamma correction via the Bernstein MUX network.

    ``degree`` independent copies of the pixel stream feed the select
    population count — evaluated as word-domain one-hot indicators
    (:meth:`StreamBatch.exact_count`) — and the Bernstein coefficients
    ride in one correlated constant-stream stack, selected with bulk
    AND/OR.  No unpacking anywhere in the datapath.
    """
    flat = np.asarray(image, dtype=np.float64)
    b = _gamma_bernstein(gamma, degree)
    copies = [StreamBatch.from_bitstream(engine.generate(flat, length))
              for _ in range(degree)]
    indicators = StreamBatch.exact_count(copies)
    coeffs = StreamBatch.from_bitstream(engine.generate_correlated(
        np.stack([np.full(flat.size, bk) for bk in b]), length))
    out = indicators[0] & coeffs.select(0)
    for k in range(1, degree + 1):
        out = out | (indicators[k] & coeffs.select(k))
    return np.asarray(engine.to_binary(out))


def gamma_correct_sc(engine: InMemorySCEngine, image: np.ndarray,
                     length: int, gamma: float = 0.45,
                     degree: int = 4) -> np.ndarray:
    """SC gamma correction over a whole image."""
    img = np.asarray(image, dtype=np.float64)
    out = gamma_correct_kernel(engine, img.ravel(), length, gamma=gamma,
                               degree=degree)
    return out.reshape(img.shape)


# ---------------------------------------------------------------------------
# Contrast stretching
# ---------------------------------------------------------------------------
def contrast_stretch_float(image: np.ndarray, lo: float = 0.2,
                           hi: float = 0.8) -> np.ndarray:
    """Saturating linear stretch of ``[lo, hi]`` onto ``[0, 1]``."""
    img = np.asarray(image, dtype=np.float64)
    return np.clip((img - lo) / (hi - lo), 0.0, 1.0)


def contrast_stretch_inputs(image: np.ndarray) -> Dict[str, np.ndarray]:
    """Named 2-D operand arrays for the tiled executor (pointwise filter)."""
    return {"image": np.asarray(image, dtype=np.float64)}


def contrast_stretch_kernel(engine: InMemorySCEngine, image: np.ndarray,
                            length: int, lo: float = 0.2,
                            hi: float = 0.8) -> np.ndarray:
    """Flat SC contrast stretch: subtract-then-divide on correlated streams.

    ``min(|x - lo|, hi - lo) / (hi - lo)`` for ``x > lo`` — built from the
    correlated XOR (subtract), AND (min) and CORDIV (divide) ops.  Pixels
    below ``lo`` clamp to 0 through the max-overlap XOR.
    """
    flat = np.asarray(image, dtype=np.float64)
    n = flat.size
    stacked = np.stack([flat, np.full(n, lo), np.full(n, hi)])
    streams = StreamBatch.from_bitstream(
        engine.generate_correlated(stacked, length))
    sx = streams.select(0).to_bitstream()   # repro-lint: disable=RL003 -- zero-copy payload wrap
    slo = streams.select(1).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    shi = streams.select(2).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    num = engine.abs_subtract(sx, slo)      # |x - lo|
    den = engine.abs_subtract(shi, slo)     # hi - lo (correlated => exact)
    num = engine.minimum(num, den)          # saturate the numerator
    out = engine.divide(num, den)           # CORDIV
    vals = np.asarray(engine.to_binary(out))
    # Below-lo pixels computed |x - lo| on the wrong side; mask them to 0
    # (the binary-domain staging knows the orientation bit, as in the
    # oriented-MAJ blend).
    return np.where(flat <= lo, 0.0, vals)


def contrast_stretch_sc(engine: InMemorySCEngine, image: np.ndarray,
                        length: int, lo: float = 0.2,
                        hi: float = 0.8) -> np.ndarray:
    """SC contrast stretch over a whole image."""
    img = np.asarray(image, dtype=np.float64)
    out = contrast_stretch_kernel(engine, img.ravel(), length, lo=lo, hi=hi)
    return out.reshape(img.shape)
