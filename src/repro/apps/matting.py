"""Image matting: estimate the alpha channel (Fig. 3c).

Inverting the compositing equation gives ``alpha_hat = (I - B) / (F - B)``.
The SC dataflow generates I, B and F with a *shared* RNG so that

* the two absolute differences are single XOR ops on correlated streams,
* the resulting difference streams are themselves correlated, satisfying
  CORDIV's input requirement (``x <= y`` holds because I lies between B and
  F wherever alpha is in [0, 1]).

The quality comparison follows the paper: the estimated alpha is used to
re-composite the scene, and the blend using the *original* alpha is the
reference (Table IV compares "the blended images obtained using the
original alpha and the estimated alpha-hat").

The binary CIM baseline computes the same formula with two absolute
subtractions and the O(n^2) restoring divider — the configuration whose
faulty SSIM collapses to 4.8% in Table IV, because a single flipped
high-order bit in the divider devastates the quotient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..bincim.design import BinaryCimDesign
from ..core.streambatch import StreamBatch
from ..imsc.engine import InMemorySCEngine
from .compositing import composite_float
from .images import to_uint8

__all__ = ["matting_float", "matting_sc", "matting_sc_kernel",
           "matting_bincim"]


def matting_float(composite: np.ndarray, background: np.ndarray,
                  foreground: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Exact alpha estimation with zero-division guarding."""
    i = np.asarray(composite, dtype=np.float64)
    b = np.asarray(background, dtype=np.float64)
    f = np.asarray(foreground, dtype=np.float64)
    num = np.abs(i - b)
    den = np.abs(f - b)
    alpha = np.where(den > eps, num / np.maximum(den, eps), 1.0)
    return np.clip(alpha, 0.0, 1.0)


def matting_sc_kernel(engine: InMemorySCEngine, composite: np.ndarray,
                      background: np.ndarray, foreground: np.ndarray,
                      length: int) -> np.ndarray:
    """Flat matting kernel: two correlated XORs feeding CORDIV.

    The I/B/F stack is generated as one batched stream array and split by
    payload slicing; CORDIV runs as the word-level byte scan of
    :func:`repro.core.ops.div_cordiv`.
    """
    stacked = np.stack([composite, background, foreground])
    streams = StreamBatch.from_bitstream(
        engine.generate_correlated(stacked, length))
    si = streams.select(0).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    sb = streams.select(1).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    sf = streams.select(2).to_bitstream()  # repro-lint: disable=RL003 -- zero-copy payload wrap
    num = engine.abs_subtract(si, sb)    # |I - B|
    den = engine.abs_subtract(sf, sb)    # |F - B|
    alpha = engine.divide(num, den)      # CORDIV: num/den
    return engine.to_binary(alpha)


def matting_sc(engine: InMemorySCEngine, composite: np.ndarray,
               background: np.ndarray, foreground: np.ndarray,
               length: int) -> np.ndarray:
    """SC alpha estimation: two correlated XORs feeding CORDIV."""
    shape = np.shape(composite)
    out = matting_sc_kernel(engine, np.ravel(composite), np.ravel(background),
                            np.ravel(foreground), length)
    return out.reshape(shape)


def matting_bincim(design: BinaryCimDesign, composite: np.ndarray,
                   background: np.ndarray, foreground: np.ndarray
                   ) -> np.ndarray:
    """Binary CIM alpha estimation: abs-subs + restoring fixed divider."""
    i8 = to_uint8(composite).ravel()
    b8 = to_uint8(background).ravel()
    f8 = to_uint8(foreground).ravel()
    num = design.subtract(i8, b8)
    den = design.subtract(f8, b8)
    q = design.divide_fixed(np.minimum(num, 255).astype(np.int64),
                            np.maximum(den, 1).astype(np.int64))
    # q approximates alpha * 256 (8 fractional bits, full integer range).
    # Deliberately *not* clamped to [0, 1]: the binary representation is
    # unbounded, so a fault in the divider can produce alpha >> 1 — the
    # failure mode behind Table IV's matting collapse.  (The SC quotient is
    # a probability and physically cannot leave [0, 1].)
    alpha = q / 256.0
    return alpha.reshape(np.shape(composite))


def recomposite_quality_inputs(background: np.ndarray, foreground: np.ndarray,
                               alpha_true: np.ndarray,
                               alpha_est: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """(reference blend, estimated blend) for Table IV's matting metric."""
    ref = composite_float(foreground, background, alpha_true)
    est = composite_float(foreground, background, alpha_est)
    return ref, est
