"""Synthetic image generation for the evaluation workloads.

The paper evaluates on photographic compositing/matting material; this
module generates synthetic scenes that exercise the same processing chains:
smooth backgrounds with texture (gradients + Gaussian blobs + band-limited
noise), foreground objects with *soft-edged* alpha mattes (the property that
makes matting interesting), and detail-rich targets for interpolation.

All images are float64 in ``[0, 1]``; :func:`to_uint8` / :func:`from_uint8`
convert to the 8-bit domain of the binary CIM baseline.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy import ndimage

__all__ = [
    "gradient_image",
    "checkerboard",
    "gaussian_blobs",
    "band_limited_noise",
    "natural_scene",
    "soft_alpha_matte",
    "scene_triplet",
    "to_uint8",
    "from_uint8",
]

RngLike = Union[np.random.Generator, int, None]


def _gen(rng: RngLike) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def gradient_image(height: int, width: int, angle_deg: float = 30.0) -> np.ndarray:
    """A linear luminance ramp across the frame at the given angle."""
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    a = np.deg2rad(angle_deg)
    proj = xx * np.cos(a) + yy * np.sin(a)
    lo, hi = proj.min(), proj.max()
    return (proj - lo) / max(hi - lo, 1e-12)


def checkerboard(height: int, width: int, tile: int = 8,
                 low: float = 0.2, high: float = 0.8) -> np.ndarray:
    """High-frequency checkerboard — a stress test for interpolation."""
    if tile < 1:
        raise ValueError("tile must be >= 1")
    yy, xx = np.mgrid[0:height, 0:width]
    cells = ((yy // tile) + (xx // tile)) % 2
    return np.where(cells == 1, high, low).astype(np.float64)


def gaussian_blobs(height: int, width: int, n_blobs: int = 6,
                   rng: RngLike = None) -> np.ndarray:
    """A sum of random Gaussian bumps, normalised to [0, 1]."""
    gen = _gen(rng)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    img = np.zeros((height, width))
    for _ in range(n_blobs):
        cy = gen.uniform(0, height)
        cx = gen.uniform(0, width)
        sy = gen.uniform(height / 12, height / 4)
        sx = gen.uniform(width / 12, width / 4)
        amp = gen.uniform(0.3, 1.0)
        img += amp * np.exp(-(((yy - cy) / sy) ** 2 + ((xx - cx) / sx) ** 2))
    lo, hi = img.min(), img.max()
    return (img - lo) / max(hi - lo, 1e-12)


def band_limited_noise(height: int, width: int, sigma: float = 2.0,
                       rng: RngLike = None) -> np.ndarray:
    """Low-pass-filtered white noise (natural texture stand-in)."""
    gen = _gen(rng)
    noise = gen.standard_normal((height, width))
    smooth = ndimage.gaussian_filter(noise, sigma)
    lo, hi = smooth.min(), smooth.max()
    return (smooth - lo) / max(hi - lo, 1e-12)


def natural_scene(height: int, width: int, rng: RngLike = None) -> np.ndarray:
    """A composite 'photograph': ramp + blobs + texture."""
    gen = _gen(rng)
    img = (0.30 * gradient_image(height, width, gen.uniform(0, 180))
           + 0.30 * gaussian_blobs(height, width, rng=gen)
           + 0.40 * band_limited_noise(height, width, sigma=1.2, rng=gen))
    return np.clip(img, 0.0, 1.0)


def soft_alpha_matte(height: int, width: int, softness: float = 2.5,
                     rng: RngLike = None) -> np.ndarray:
    """An alpha channel: a filled shape with a smooth (anti-aliased) edge.

    The soft edge is where matting accuracy matters — alpha transitions
    through the whole [0, 1] range there.
    """
    gen = _gen(rng)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    cy = gen.uniform(0.35, 0.65) * height
    cx = gen.uniform(0.35, 0.65) * width
    ry = gen.uniform(0.18, 0.30) * height
    rx = gen.uniform(0.18, 0.30) * width
    d = np.sqrt(((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2)
    hard = (d < 1.0).astype(np.float64)
    soft = ndimage.gaussian_filter(hard, softness)
    return np.clip(soft, 0.0, 1.0)


def scene_triplet(height: int = 48, width: int = 48,
                  rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(background, foreground, alpha) for compositing/matting workloads."""
    gen = _gen(rng)
    background = natural_scene(height, width, gen)
    foreground = np.clip(
        0.6 * gaussian_blobs(height, width, 4, gen)
        + 0.4 * checkerboard(height, width, max(4, width // 8)), 0.0, 1.0)
    alpha = soft_alpha_matte(height, width, rng=gen)
    return background, foreground, alpha


def to_uint8(img: np.ndarray) -> np.ndarray:
    """Quantise a [0, 1] float image to 8-bit codes."""
    arr = np.asarray(img, dtype=np.float64)
    if np.any((arr < 0) | (arr > 1)):
        raise ValueError("image values must lie in [0, 1]")
    return np.clip(np.rint(arr * 255.0), 0, 255).astype(np.int64)


def from_uint8(img: np.ndarray) -> np.ndarray:
    """Map 8-bit codes back to [0, 1] floats."""
    return np.asarray(img, dtype=np.float64) / 255.0
