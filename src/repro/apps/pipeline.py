"""Backend-parameterised application runner.

One entry point, :func:`run_app`, executes any of the three evaluation
applications on any backend and returns quality metrics plus the backend's
energy ledger:

* ``backend='sc'``      — the in-memory SC engine (optionally faulty);
* ``backend='bincim'``  — the binary CIM baseline (optionally faulty);
* ``backend='float'``   — the exact software reference (quality = 100%).

For matting, quality follows the paper's protocol: re-composite with the
estimated alpha and compare against the blend using the true alpha.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..bincim.design import BinaryCimDesign
from ..energy.model import EnergyLedger
from ..imsc.engine import InMemorySCEngine
from ..reram.faults import DEFAULT_FAULT_RATES, GateFaultRates
from .compositing import composite_bincim, composite_float, composite_sc
from .images import natural_scene, scene_triplet
from .interpolation import upscale_bincim, upscale_float, upscale_sc
from .matting import (
    matting_bincim,
    matting_float,
    matting_sc,
    recomposite_quality_inputs,
)
from .metrics import quality_pair

__all__ = ["AppResult", "run_app", "APPS", "BACKENDS"]

APPS = ("compositing", "interpolation", "matting")
BACKENDS = ("float", "sc", "bincim")


@dataclass
class AppResult:
    """Quality and cost of one application execution."""

    app: str
    backend: str
    length: Optional[int]
    faulty: bool
    ssim_pct: float
    psnr_db: float
    output: np.ndarray
    reference: np.ndarray
    ledger: Optional[EnergyLedger] = None


def _make_engine(length: int, faulty: bool,
                 fault_rates: Optional[GateFaultRates],
                 seed: Optional[int]) -> InMemorySCEngine:
    rates = (fault_rates if fault_rates is not None
             else DEFAULT_FAULT_RATES) if faulty else None
    return InMemorySCEngine(fault_rates=rates, rng=seed)


def run_app(app: str, backend: str, length: int = 128,
            faulty: bool = False,
            fault_rates: Optional[GateFaultRates] = None,
            bincim_fault_rate: float = 1e-4,
            bincim_fault_granularity: str = "gate",
            size: int = 48, upscale_factor: int = 2,
            seed: Optional[int] = 0) -> AppResult:
    """Execute one application on one backend and score it.

    Parameters
    ----------
    app:
        'compositing' | 'interpolation' | 'matting'.
    backend:
        'float' | 'sc' | 'bincim'.
    length:
        SC stream length N (ignored by the other backends).
    faulty:
        Enable CIM fault injection (Table IV's ✓ columns).
    fault_rates / bincim_fault_rate / bincim_fault_granularity:
        Fault intensities for the SC and binary backends.  The binary
        default injects per-gate faults at 1e-4 — stateful-logic writes
        enjoy single-cell margins, roughly 50x better than the multi-row
        current discrimination of scouting reads (see EXPERIMENTS.md).
    size:
        Scene edge length in pixels.
    seed:
        Scene and fault-sampling seed.
    """
    if app not in APPS:
        raise ValueError(f"unknown app {app!r}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}")
    scene_rng = np.random.default_rng(seed)

    if app == "compositing":
        background, foreground, alpha = scene_triplet(size, size, scene_rng)
        reference = composite_float(foreground, background, alpha)
        if backend == "float":
            output, ledger = reference.copy(), None
        elif backend == "sc":
            engine = _make_engine(length, faulty, fault_rates, seed)
            output = composite_sc(engine, foreground, background, alpha, length)
            ledger = engine.ledger
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            output = composite_bincim(design, foreground, background, alpha)
            ledger = design.ledger

    elif app == "interpolation":
        image = natural_scene(size, size, scene_rng)
        reference = upscale_float(image, upscale_factor)
        if backend == "float":
            output, ledger = reference.copy(), None
        elif backend == "sc":
            engine = _make_engine(length, faulty, fault_rates, seed)
            output = upscale_sc(engine, image, length, upscale_factor)
            ledger = engine.ledger
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            output = upscale_bincim(design, image, upscale_factor)
            ledger = design.ledger

    else:  # matting
        background, foreground, alpha = scene_triplet(size, size, scene_rng)
        composite = composite_float(foreground, background, alpha)
        if backend == "float":
            alpha_est, ledger = matting_float(composite, background,
                                              foreground), None
        elif backend == "sc":
            engine = _make_engine(length, faulty, fault_rates, seed)
            alpha_est = matting_sc(engine, composite, background, foreground,
                                   length)
            ledger = engine.ledger
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            alpha_est = matting_bincim(design, composite, background,
                                       foreground)
            ledger = design.ledger
        reference, output = recomposite_quality_inputs(
            background, foreground, alpha, alpha_est)

    ssim_pct, psnr_db = quality_pair(reference, output)
    return AppResult(app=app, backend=backend,
                     length=length if backend == "sc" else None,
                     faulty=faulty, ssim_pct=ssim_pct, psnr_db=psnr_db,
                     output=output, reference=reference, ledger=ledger)
