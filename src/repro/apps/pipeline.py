"""Backend-parameterised application runner.

One entry point, :func:`run_app`, executes any of the three evaluation
applications on any backend and returns quality metrics plus the backend's
energy ledger:

* ``backend='sc'``      — the in-memory SC engine (optionally faulty);
* ``backend='bincim'``  — the binary CIM baseline (optionally faulty);
* ``backend='float'``   — the exact software reference (quality = 100%).

For matting, quality follows the paper's protocol: re-composite with the
estimated alpha and compare against the blend using the true alpha.

Batched word-domain execution
-----------------------------
The SC path runs entirely on batched stream arrays: operands are generated
as one :class:`~repro.core.streambatch.StreamBatch` per role stack (shape
``(..., words)`` in the active backend's layout) and split by payload
slicing, so under the ``packed`` backend a whole image flows through
generation → logic → fault injection → readout as uint64 words.

Sharding (``jobs`` / ``tile``)
------------------------------
With ``tile=T`` the scene is decomposed into ``T x T`` tiles and fanned out
through :mod:`repro.apps.executor` across ``jobs`` worker processes — the
software analogue of per-mat execution.  Seeding contract: the untiled run
(``tile=None``, the default) draws every stream from ``default_rng(seed)``
in a fixed order and is bit-reproducible against earlier releases; tiled
runs give tile *i* the *i*-th child of ``SeedSequence(seed).spawn(n)``, so
results depend on the tile grid but **not** on ``jobs`` — ``jobs=1`` and
``jobs=8`` are bit-identical.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..bincim.design import BinaryCimDesign
from ..config import RunConfig
from ..core.backend import use_backend
from ..energy.model import EnergyLedger
from ..imsc.engine import InMemorySCEngine
from ..reram.faults import DEFAULT_FAULT_RATES, GateFaultRates
from .compositing import composite_bincim, composite_float, composite_sc
from .executor import run_tiled
from .images import natural_scene, scene_triplet
from .interpolation import (
    neighbour_grid,
    upscale_bincim,
    upscale_float,
    upscale_sc_kernel,
)
from .matting import (
    matting_bincim,
    matting_float,
    matting_sc,
    recomposite_quality_inputs,
)
from .metrics import quality_pair

__all__ = ["AppResult", "run_app", "APPS", "BACKENDS"]

APPS = ("compositing", "interpolation", "matting")
BACKENDS = ("float", "sc", "bincim")


@dataclass
class AppResult:
    """Quality and cost of one application execution."""

    app: str
    backend: str
    length: Optional[int]
    faulty: bool
    ssim_pct: float
    psnr_db: float
    output: np.ndarray
    reference: np.ndarray
    ledger: Optional[EnergyLedger] = None


def _engine_kwargs(cfg: RunConfig, faulty: bool,
                   fault_rates: Optional[GateFaultRates],
                   fault_domain: Optional[str],
                   fault_sampling: Optional[str],
                   cell_model: Optional[str]) -> Dict[str, object]:
    rates = (fault_rates if fault_rates is not None
             else DEFAULT_FAULT_RATES) if faulty else None
    explicit = {k: v for k, v in (("fault_domain", fault_domain),
                                  ("fault_sampling", fault_sampling),
                                  ("cell_model", cell_model))
                if v is not None}
    kwargs = cfg.merged_engine_kwargs(explicit)
    kwargs["fault_rates"] = rates
    return kwargs


#: Distinguishes "argument not passed" from an explicit ``None`` — for
#: ``tile``, where ``None`` is a meaningful value (whole-image path) that
#: must remain expressible even when the config carries a tile size.
_UNSET = object()


def run_app(app: str, backend: str, length: int = 128,
            faulty: bool = False,
            fault_rates: Optional[GateFaultRates] = None,
            bincim_fault_rate: float = 1e-4,
            bincim_fault_granularity: str = "gate",
            size: int = 48, upscale_factor: int = 2,
            seed: Optional[int] = None,
            jobs: Optional[int] = None, tile=_UNSET,
            fault_domain: Optional[str] = None,
            fault_sampling: Optional[str] = None,
            cell_model: Optional[str] = None,
            config: Optional[RunConfig] = None) -> AppResult:
    """Execute one application on one backend and score it.

    Parameters
    ----------
    app:
        'compositing' | 'interpolation' | 'matting'.
    backend:
        'float' | 'sc' | 'bincim'.
    length:
        SC stream length N (ignored by the other backends).
    faulty:
        Enable CIM fault injection (Table IV's ✓ columns).
    fault_rates / bincim_fault_rate / bincim_fault_granularity:
        Fault intensities for the SC and binary backends.  The binary
        default injects per-gate faults at 1e-4 — stateful-logic writes
        enjoy single-cell margins, roughly 50x better than the multi-row
        current discrimination of scouting reads (see EXPERIMENTS.md).
    size:
        Scene edge length in pixels.
    seed:
        Scene and fault-sampling seed; ``None`` (default) takes the
        config's seed.
    jobs / tile:
        SC-only sharding controls: ``tile=T`` splits the scene into
        ``T x T`` tiles with deterministic per-tile seeds and ``jobs=N``
        fans them out over N worker processes (see module docs and
        :mod:`repro.apps.executor`).  ``tile=None`` keeps the whole-image
        path, whose streams are bit-reproducible across releases;
        ``jobs > 1`` therefore requires an explicit ``tile``.
    fault_domain:
        'word' or 'bit' — forwarded to the engine; 'bit' is the per-bit
        conformance oracle and produces bit-identical output.  ``None``
        (default) takes the config's value.
    fault_sampling:
        'dense' or 'sparse' — forwarded to the engine; 'dense' is the
        bit-exact fault-mask oracle (reproducible per seed across
        releases), 'sparse' draws Binomial flip counts and scatters the
        sites into the packed payload — statistically conformant and much
        faster for faulty sweeps (see :mod:`repro.imsc.engine`).  ``None``
        (default) takes the config's value.
    cell_model:
        S-to-B device-variability model forwarded to the SC engine:
        'per-bit' (the oracle — bit-reproducible against earlier releases)
        or 'column' (batched popcount readout; statistically equivalent
        and much faster, see :mod:`repro.imsc.stob`).  ``None`` (default)
        takes the config's value.  Ignored by the other backends.
    config:
        A :class:`repro.config.RunConfig`; ``None`` resolves to
        ``RunConfig.default()`` — the fast preset — so a bare
        ``run_app(app, 'sc')`` runs packed + column + sparse.  Pass
        ``config=RunConfig.oracle()`` to reproduce the paper-faithful
        per-bit/dense numbers bit-exactly.  Explicit arguments override
        the config field-by-field; the config's ``jobs``/``tile`` apply
        to the 'sc' backend only (the other backends have no sharded
        path), and its execution ``backend`` field scopes the active
        bitstream backend for the run.
    """
    cfg = RunConfig.resolve(config)
    if app not in APPS:
        raise ValueError(f"unknown app {app!r}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}")
    if seed is None:
        seed = cfg.seed
    if jobs is None:
        jobs = cfg.jobs if backend == "sc" else 1
    if tile is _UNSET:
        tile = cfg.tile if backend == "sc" else None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError("jobs must be >= 1")
    if tile is not None and tile < 1:
        raise ValueError("tile must be None or a positive integer")
    if backend != "sc" and (jobs != 1 or tile is not None):
        raise ValueError("jobs/tile sharding applies to the 'sc' backend only")
    if tile is None and jobs != 1:
        raise ValueError("jobs > 1 requires a tile size (tile=None runs "
                         "the whole image in-process)")
    scene_rng = np.random.default_rng(seed)
    kwargs = _engine_kwargs(cfg, faulty, fault_rates, fault_domain,
                            fault_sampling, cell_model)

    def sc_run(kernel: str, inputs: Dict[str, np.ndarray],
               whole_image) -> Tuple[np.ndarray, EnergyLedger]:
        """Tiled or whole-image SC execution of one app."""
        if tile is None:
            # The config's execution backend scopes the whole-image run;
            # the tiled path instead bakes the backend name into each
            # task (workers re-select it).
            scope = (use_backend(cfg.backend) if cfg.backend is not None
                     else nullcontext())
            with scope:
                engine = InMemorySCEngine(rng=seed, **kwargs)
                return whole_image(engine), engine.ledger
        return run_tiled(kernel, inputs, length, config=cfg, tile=tile,
                         jobs=jobs, seed=seed, engine_kwargs=kwargs)

    if app == "compositing":
        background, foreground, alpha = scene_triplet(size, size, scene_rng)
        reference = composite_float(foreground, background, alpha)
        if backend == "float":
            output, ledger = reference.copy(), None
        elif backend == "sc":
            output, ledger = sc_run(
                "compositing",
                {"foreground": foreground, "background": background,
                 "alpha": alpha},
                lambda e: composite_sc(e, foreground, background, alpha,
                                       length))
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            output = composite_bincim(design, foreground, background, alpha)
            ledger = design.ledger

    elif app == "interpolation":
        image = natural_scene(size, size, scene_rng)
        reference = upscale_float(image, upscale_factor)
        if backend == "float":
            output, ledger = reference.copy(), None
        elif backend == "sc":
            # One neighbour lookup serves both paths: the whole-image run
            # feeds the flat arrays straight to the kernel, the tiled run
            # slices their 2-D views per tile.
            i11, i12, i21, i22, dx, dy, oshape = neighbour_grid(
                image, upscale_factor)
            output, ledger = sc_run(
                "interpolation",
                {name: arr.reshape(oshape) for name, arr in
                 (("i11", i11), ("i12", i12), ("i21", i21), ("i22", i22),
                  ("dx", dx), ("dy", dy))},
                lambda e: upscale_sc_kernel(
                    e, i11, i12, i21, i22, dx, dy, length).reshape(oshape))
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            output = upscale_bincim(design, image, upscale_factor)
            ledger = design.ledger

    else:  # matting
        background, foreground, alpha = scene_triplet(size, size, scene_rng)
        composite = composite_float(foreground, background, alpha)
        if backend == "float":
            alpha_est, ledger = matting_float(composite, background,
                                              foreground), None
        elif backend == "sc":
            alpha_est, ledger = sc_run(
                "matting",
                {"composite": composite, "background": background,
                 "foreground": foreground},
                lambda e: matting_sc(e, composite, background, foreground,
                                     length))
        else:
            design = BinaryCimDesign(
                fault_rate=bincim_fault_rate if faulty else 0.0,
                fault_granularity=bincim_fault_granularity, rng=seed)
            alpha_est = matting_bincim(design, composite, background,
                                       foreground)
            ledger = design.ledger
        reference, output = recomposite_quality_inputs(
            background, foreground, alpha, alpha_est)

    ssim_pct, psnr_db = quality_pair(reference, output)
    return AppResult(app=app, backend=backend,
                     length=length if backend == "sc" else None,
                     faulty=faulty, ssim_pct=ssim_pct, psnr_db=psnr_db,
                     output=output, reference=reference, ledger=ledger)
