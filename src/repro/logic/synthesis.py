"""Mapping XAGs onto scouting-logic operation schedules.

Scouting logic executes one 2-input AND/OR/XOR (or 3-input MAJ) per sensing
step, but operands must be physically present — either stored in array rows
or forwarded through the periphery.  A schedule therefore interleaves:

* ``sense`` steps — one per logic gate (cf. the paper: "implementing this
  network requires 5n operations, as each logic gate requires one sensing
  step");
* ``write`` steps — programming an intermediate result back into a work row
  so a later gate can sense it;
* ``latch`` steps — periphery-only moves (feedback/predication) that replace
  writes in the optimised mappings.

Three mapping strategies mirror the paper's design points:

=================  ===========================================================
``baseline``       every intermediate result is written back (stateful-logic
                   style; 1 write per gate)
``feedback``       a gate's single consumer can receive the value through the
                   bitline-voltage feedback path, eliminating the write when
                   the consumer is the *next* scheduled gate (IMSNG-naive)
``latch``          fan-out-1 values ride in the L0/L1 latches; only values
                   with fan-out > 1 or outputs are written (IMSNG-opt)
=================  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal

from .xag import Xag

__all__ = ["ScheduleStep", "SlSchedule", "map_to_scouting"]

Strategy = Literal["baseline", "feedback", "latch"]


@dataclass(frozen=True)
class ScheduleStep:
    """One step of a scouting-logic schedule."""

    kind: str          # 'sense' | 'write' | 'latch'
    gate: str = ""     # for sense steps: 'and' | 'xor' | ...
    node: int = -1     # producing XAG node (sense/write), -1 otherwise


@dataclass
class SlSchedule:
    """A scouting-logic execution schedule with cost summary."""

    steps: List[ScheduleStep] = field(default_factory=list)

    @property
    def senses(self) -> int:
        return sum(1 for s in self.steps if s.kind == "sense")

    @property
    def writes(self) -> int:
        return sum(1 for s in self.steps if s.kind == "write")

    @property
    def latch_ops(self) -> int:
        return sum(1 for s in self.steps if s.kind == "latch")

    def counts(self) -> Dict[str, int]:
        return {"sense": self.senses, "write": self.writes,
                "latch": self.latch_ops}

    def latency(self, t_sense: float, t_write: float,
                t_latch: float = 0.0) -> float:
        """Total schedule latency for the given step times (seconds)."""
        return (self.senses * t_sense + self.writes * t_write
                + self.latch_ops * t_latch)

    def energy(self, e_sense: float, e_write: float,
               e_latch: float = 0.0) -> float:
        """Total schedule energy for the given per-step energies (joules)."""
        return (self.senses * e_sense + self.writes * e_write
                + self.latch_ops * e_latch)


def _fanout_counts(xag: Xag) -> Dict[int, int]:
    fanout: Dict[int, int] = {}
    for _, gate in xag.topological_gates():
        for lit in (gate.a, gate.b):
            node = lit >> 1
            fanout[node] = fanout.get(node, 0) + 1
    for lit in xag._outputs:  # noqa: SLF001 - synthesis is a friend module
        node = lit >> 1
        fanout[node] = fanout.get(node, 0) + 1
    return fanout


def map_to_scouting(xag: Xag, strategy: Strategy = "latch") -> SlSchedule:
    """Compile a XAG into a scouting-logic schedule.

    The gate order follows the XAG's topological construction order (a fair
    model of the paper's bit-serial MSB-to-LSB comparison network).  Inverted
    edges are free: the sense amplifier provides complemented outputs and
    scouting logic natively senses NAND/NOR/XNOR.
    """
    if strategy not in ("baseline", "feedback", "latch"):
        raise ValueError(f"unknown strategy {strategy!r}")
    fanout = _fanout_counts(xag)
    gates = xag.topological_gates()
    sched = SlSchedule()
    for pos, (node, gate) in enumerate(gates):
        sched.steps.append(ScheduleStep("sense", gate=gate.kind, node=node))
        is_output = any((lit >> 1) == node for lit in xag._outputs)  # noqa: SLF001
        n_consumers = fanout.get(node, 0)
        if strategy == "baseline":
            sched.steps.append(ScheduleStep("write", node=node))
            continue
        if strategy == "feedback":
            # The feedback path holds exactly one value for the immediately
            # following sense step; any other consumer needs the value in a
            # row.
            next_consumes = (
                pos + 1 < len(gates)
                and node in ((gates[pos + 1][1].a >> 1),
                             (gates[pos + 1][1].b >> 1))
                and n_consumers == 1
                and not is_output
            )
            if next_consumes:
                sched.steps.append(ScheduleStep("latch", node=node))
            else:
                sched.steps.append(ScheduleStep("write", node=node))
            continue
        # strategy == "latch": values live in the L0/L1 latch pair as long
        # as fan-out permits; only multi-consumer values and outputs that
        # must persist in the array are written.
        if is_output:
            sched.steps.append(ScheduleStep("write", node=node))
        elif n_consumers > 1:
            sched.steps.append(ScheduleStep("write", node=node))
        else:
            sched.steps.append(ScheduleStep("latch", node=node))
    return sched
