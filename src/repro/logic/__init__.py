"""Logic synthesis: XOR-AND-inverter graphs and scouting-logic mapping."""

from .xag import LIT_FALSE, LIT_TRUE, Xag
from .synthesis import ScheduleStep, SlSchedule, map_to_scouting

__all__ = [
    "LIT_FALSE", "LIT_TRUE", "Xag",
    "ScheduleStep", "SlSchedule", "map_to_scouting",
]
