"""XOR-AND-inverter graphs (XAGs).

The paper converts the in-memory greater-than network of Fig. 1b "into data
structures like XOR-AND-Inverter graph (XAG) for manipulation and
optimization using logic synthesis tools".  This module provides that data
structure: a DAG whose internal nodes are 2-input AND and XOR gates and
whose edges may carry inverters (complemented literals), in the style of the
EPFL logic-synthesis libraries (mockturtle).

Features:

* structural hashing — identical gates are created once;
* constant folding and local simplification at construction time
  (``x & 0 = 0``, ``x ^ x = 0``, ``x & x = x``, complement absorption);
* vectorised evaluation over numpy arrays (one simulation pattern per
  element);
* gate/level statistics, the inputs to the scouting-logic cost model.

A *literal* is an integer ``2 * node_index + complement_bit`` — the packed
representation standard in AIG/XAG packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Xag", "LIT_FALSE", "LIT_TRUE"]

LIT_FALSE = 0  # constant-0 node (index 0), uncomplemented
LIT_TRUE = 1   # constant-0 node complemented


def _lit(node: int, complement: bool = False) -> int:
    return (node << 1) | int(complement)


def _node_of(lit: int) -> int:
    return lit >> 1


def _is_complemented(lit: int) -> bool:
    return bool(lit & 1)


@dataclass(frozen=True)
class _Gate:
    kind: str          # 'and' | 'xor'
    a: int             # fan-in literal
    b: int             # fan-in literal


class Xag:
    """A XOR-AND-inverter graph with structural hashing.

    Node 0 is the constant-0 node.  Primary inputs are added with
    :meth:`add_input`; gates with :meth:`add_and` / :meth:`add_xor`, which
    return output *literals* usable as further fan-ins.  Mark outputs with
    :meth:`add_output`.
    """

    def __init__(self):
        self._gates: List[Optional[_Gate]] = [None]  # node 0 = const-0
        self._input_names: List[str] = []
        self._input_nodes: List[int] = []
        self._outputs: List[int] = []
        self._output_names: List[str] = []
        self._strash: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its (positive) literal."""
        node = len(self._gates)
        self._gates.append(None)
        self._input_nodes.append(node)
        self._input_names.append(name or f"x{len(self._input_names)}")
        return _lit(node)

    def constant(self, value: bool) -> int:
        return LIT_TRUE if value else LIT_FALSE

    def _add_gate(self, kind: str, a: int, b: int) -> int:
        # Normalise operand order for hashing (both gates are commutative).
        if a > b:
            a, b = b, a
        key = (kind, a, b)
        if key in self._strash:
            return _lit(self._strash[key])
        node = len(self._gates)
        self._gates.append(_Gate(kind, a, b))
        self._strash[key] = node
        return _lit(node)

    def add_and(self, a: int, b: int) -> int:
        """AND gate with local simplification; returns the output literal."""
        self._check_lit(a)
        self._check_lit(b)
        if a == LIT_FALSE or b == LIT_FALSE:
            return LIT_FALSE
        if a == LIT_TRUE:
            return b
        if b == LIT_TRUE:
            return a
        if a == b:
            return a
        if a == (b ^ 1):  # x & ~x
            return LIT_FALSE
        return self._add_gate("and", a, b)

    def add_xor(self, a: int, b: int) -> int:
        """XOR gate with local simplification; returns the output literal.

        Complements are pushed out of the gate (``~a ^ b = ~(a ^ b)``) so the
        stored gate always has uncomplemented semantics, maximising
        structural sharing.
        """
        self._check_lit(a)
        self._check_lit(b)
        # Push complement flags out of the operands.
        comp = _is_complemented(a) ^ _is_complemented(b)
        a &= ~1
        b &= ~1
        if a == b:
            return LIT_TRUE if comp else LIT_FALSE
        if a == LIT_FALSE:
            return b | int(comp)
        if b == LIT_FALSE:
            return a | int(comp)
        return self._add_gate("xor", a, b) | int(comp)

    def add_or(self, a: int, b: int) -> int:
        """OR via De Morgan (``a | b = ~(~a & ~b)``)."""
        return self.add_and(a ^ 1, b ^ 1) ^ 1

    def add_not(self, a: int) -> int:
        self._check_lit(a)
        return a ^ 1

    def add_maj(self, a: int, b: int, c: int) -> int:
        """3-input majority decomposed into XAG primitives.

        ``MAJ(a,b,c) = (a & b) | (c & (a ^ b))`` — 3 ANDs + 1 XOR after the
        OR decomposition, with sharing handled by the strash.
        """
        ab = self.add_and(a, b)
        axb = self.add_xor(a, b)
        cab = self.add_and(c, axb)
        return self.add_or(ab, cab)

    def add_mux(self, sel: int, a: int, b: int) -> int:
        """2-to-1 MUX (``b`` when ``sel``): ``a ^ (sel & (a ^ b))``."""
        return self.add_xor(a, self.add_and(sel, self.add_xor(a, b)))

    def add_output(self, lit: int, name: Optional[str] = None) -> None:
        self._check_lit(lit)
        self._outputs.append(lit)
        self._output_names.append(name or f"y{len(self._outputs) - 1}")

    def _check_lit(self, lit: int) -> None:
        if not 0 <= _node_of(lit) < len(self._gates):
            raise ValueError(f"literal {lit} references unknown node")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self._input_nodes)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        return sum(1 for g in self._gates if g is not None)

    def gate_counts(self) -> Dict[str, int]:
        """Gate population by kind, plus edge-inverter count."""
        counts = {"and": 0, "xor": 0, "inverted_edges": 0}
        for g in self._gates:
            if g is None:
                continue
            counts[g.kind] += 1
            counts["inverted_edges"] += int(_is_complemented(g.a))
            counts["inverted_edges"] += int(_is_complemented(g.b))
        counts["inverted_edges"] += sum(
            int(_is_complemented(o)) for o in self._outputs)
        return counts

    def levels(self) -> int:
        """Logic depth (levels of gates on the longest PI-to-PO path)."""
        depth = [0] * len(self._gates)
        for node, g in enumerate(self._gates):
            if g is not None:
                depth[node] = 1 + max(depth[_node_of(g.a)], depth[_node_of(g.b)])
        if not self._outputs:
            return 0
        return max(depth[_node_of(o)] for o in self._outputs)

    def topological_gates(self) -> List[Tuple[int, _Gate]]:
        """Gates in index order (construction order is topological)."""
        return [(n, g) for n, g in enumerate(self._gates) if g is not None]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Simulate the network on vectors of 0/1 values.

        Parameters
        ----------
        inputs:
            Maps input names to equally shaped 0/1 arrays (or scalars).

        Returns
        -------
        Mapping from output names to result arrays.
        """
        missing = [n for n in self._input_names if n not in inputs]
        if missing:
            raise KeyError(f"missing input values: {missing}")
        shapes = [np.shape(np.asarray(inputs[n])) for n in self._input_names]
        shape = shapes[0] if shapes else ()
        values: List[np.ndarray] = [np.zeros(shape, dtype=np.uint8)
                                    for _ in self._gates]
        for name, node in zip(self._input_names, self._input_nodes):
            arr = np.asarray(inputs[name], dtype=np.uint8)
            if arr.shape != shape:
                raise ValueError("all inputs must share one shape")
            values[node] = arr
        for node, g in self.topological_gates():
            a = values[_node_of(g.a)] ^ int(_is_complemented(g.a))
            b = values[_node_of(g.b)] ^ int(_is_complemented(g.b))
            values[node] = (a & b) if g.kind == "and" else (a ^ b)
        out: Dict[str, np.ndarray] = {}
        for lit, name in zip(self._outputs, self._output_names):
            out[name] = values[_node_of(lit)] ^ int(_is_complemented(lit))
        return out

    def __repr__(self) -> str:
        c = self.gate_counts()
        return (f"Xag(inputs={self.num_inputs}, outputs={self.num_outputs}, "
                f"and={c['and']}, xor={c['xor']}, levels={self.levels()})")
