"""Experiment runners regenerating every table and figure of the paper."""

from .tables import dict_grid_to_rows, format_value, render_table
from .experiments import (
    TABLE1_LENGTHS,
    TABLE4_LENGTHS,
    bincim_app_cost,
    cmos_app_cost,
    fig4_energy,
    fig5_throughput,
    imsng_variants,
    quality_drop_summary,
    reram_app_cost,
    summarize_figures,
    table1_sng_mse,
    table2_ops_mse,
    table3_hw_cost,
    table4_quality,
    write_based_sng_comparison,
)
from .sweep import grid, run_sweep

__all__ = [
    "dict_grid_to_rows", "format_value", "render_table",
    "TABLE1_LENGTHS", "TABLE4_LENGTHS",
    "bincim_app_cost", "cmos_app_cost", "fig4_energy", "fig5_throughput",
    "imsng_variants", "quality_drop_summary", "reram_app_cost",
    "summarize_figures", "table1_sng_mse", "table2_ops_mse",
    "table3_hw_cost", "table4_quality", "write_based_sng_comparison",
    "grid", "run_sweep",
]
