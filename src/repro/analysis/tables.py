"""ASCII table rendering for experiment output.

Keeps the benchmark harness presentation-free: experiment runners return
plain data structures; these helpers turn them into the row/column layouts
of the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "format_value", "dict_grid_to_rows"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Format one cell: floats get fixed or scientific notation as needed."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if v != 0 and abs(v) < 10 ** (-precision):
        return f"{v:.2e}"
    return f"{v:.{precision}f}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [
        [format_value(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header count")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def dict_grid_to_rows(grid: Dict[str, Dict[str, Cell]],
                      col_keys: Sequence[str]) -> List[List[Cell]]:
    """Turn ``{row_label: {col_key: value}}`` into render_table rows."""
    rows: List[List[Cell]] = []
    for label, cols in grid.items():
        rows.append([label] + [cols.get(k) for k in col_keys])
    return rows
