"""Experiment runners: one function per table/figure of the paper.

Every runner returns plain data (dicts keyed the way the paper's table is
laid out) so tests can assert on shapes and the benchmark harness can print
them.  Sample counts default to quick-but-stable values; pass larger ones to
approach the paper's 10^6-sample / 1000-run settings.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bincim.design import BINARY_OP_CYCLES
from ..cmos.design import CmosScDesign
from ..config import RunConfig
from ..core.accuracy import op_mse, sng_mse
from ..core.rng import Lfsr, SobolRng, SoftwareRng
from ..core.sng import ComparatorSng, SegmentSng
from ..energy.model import EnergyLedger
from ..energy.params import DEFAULT_RERAM_COSTS, ReRamStepCosts
from ..imsc.cost import imsng_conversion_cost, stob_cost
from ..apps.pipeline import run_app
from ..reram.trng import ReRamTrng

__all__ = [
    "TABLE1_LENGTHS",
    "TABLE4_LENGTHS",
    "SngFactory",
    "table1_sng_mse",
    "table2_ops_mse",
    "table3_hw_cost",
    "table4_quality",
    "quality_drop_summary",
    "write_based_sng_comparison",
    "reram_app_cost",
    "cmos_app_cost",
    "bincim_app_cost",
    "fig4_energy",
    "fig5_throughput",
    "imsng_variants",
]

TABLE1_LENGTHS = (32, 64, 128, 256, 512)
TABLE2_OPS = ("multiplication", "scaled_addition", "approx_addition",
              "abs_subtraction", "division", "minimum", "maximum")
TABLE4_LENGTHS = (32, 64, 128, 256)
APP_NAMES = ("compositing", "interpolation", "matting")


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
@contextmanager
def _harness_pool(jobs: int):
    """One resident worker pool for a whole table sweep (or ``None``).

    A table is dozens of ``sng_mse``/``op_mse`` cells; sharing one
    :class:`repro.serve.pool.WorkerPool` pays worker startup once instead
    of once per cell.  ``jobs=1`` yields ``None`` — the harness then runs
    chunks in-process, same bits.
    """
    if jobs <= 1:
        yield None
        return
    from ..serve.pool import WorkerPool
    with WorkerPool(jobs) as pool:
        yield pool


class SngFactory:
    """Picklable per-chunk SNG factory for the sharded accuracy harness.

    The Table I/II runners hand :func:`~repro.core.accuracy.sng_mse` /
    :func:`~repro.core.accuracy.op_mse` a factory instead of a shared
    generator object, so their Monte-Carlo chunks carry deterministic
    ``SeedSequence``-derived state and can fan out over worker processes:
    the measured MSE is a pure function of ``(seed, chunk)`` and
    independent of ``jobs``.  All seed material (software generator state,
    LFSR register seeds, Sobol digital-shift scrambles) derives from the
    per-chunk child.
    """

    SOURCES = ("imsng", "software", "lfsr", "sobol")

    def __init__(self, source: str, segment_bits: int = 8):
        if source not in self.SOURCES:
            raise ValueError(f"unknown SNG source {source!r}")
        self.source = source
        self.segment_bits = segment_bits

    def __call__(self, seed_seq: np.random.SeedSequence):
        if self.source == "imsng":
            return SegmentSng(ReRamTrng(rng=np.random.default_rng(seed_seq)),
                              segment_bits=self.segment_bits)
        if self.source == "software":
            return ComparatorSng(SoftwareRng(8, seed=seed_seq))
        if self.source == "lfsr":
            # Uncorrelated operands come from a second register at a
            # different seed, the standard two-LFSR arrangement.
            base = int(seed_seq.generate_state(1)[0]) % 254
            return ComparatorSng(
                Lfsr(seed=base + 1),
                pair_source=Lfsr(seed=((base + 101) % 254) + 1))
        # Sobol: parallel dimensions for independent operands (Liu & Han);
        # a per-chunk digital-shift scramble decorrelates the repeated use
        # of the same dimensions across chunks.
        scramble = int(seed_seq.generate_state(1)[0])
        return ComparatorSng(
            SobolRng(8, dim=0, scramble_seed=scramble),
            pair_source=SobolRng(8, dim=1, scramble_seed=scramble + 1))


def table1_sng_mse(lengths: Sequence[int] = TABLE1_LENGTHS,
                   segment_sizes: Sequence[int] = (5, 6, 7, 8, 9),
                   samples: int = 20_000,
                   seed: int = 0, jobs: int = 1
                   ) -> Dict[str, Dict[int, float]]:
    """MSE(%) of SBS generation per RNG source and stream length (Table I).

    Rows: ``IMSNG M=5`` .. ``IMSNG M=9``, ``Software``, ``PRNG (LFSR)``,
    ``QRNG (Sobol)``.  Columns: stream lengths.  ``jobs`` fans the
    Monte-Carlo chunks over worker processes through the sharded harness
    — one resident pool shared by every cell, not a pool per cell; every
    cell is chunk-deterministic, so the table is independent of ``jobs``
    (the regression suite asserts ``jobs=1 == jobs=N``).
    """
    out: Dict[str, Dict[int, float]] = {}
    with _harness_pool(jobs) as pool:
        for m in segment_sizes:
            factory = SngFactory("imsng", segment_bits=m)
            out[f"IMSNG M={m}"] = {
                n: sng_mse(factory, n, samples, seed=seed + n, jobs=jobs,
                           pool=pool)
                for n in lengths}
        for label, source in (("Software", "software"),
                              ("PRNG (LFSR)", "lfsr"),
                              ("QRNG (Sobol)", "sobol")):
            factory = SngFactory(source)
            out[label] = {n: sng_mse(factory, n, samples, seed=seed + n,
                                     jobs=jobs, pool=pool)
                          for n in lengths}
    return out


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
def table2_ops_mse(lengths: Sequence[int] = TABLE1_LENGTHS,
                   ops: Sequence[str] = TABLE2_OPS,
                   sources: Sequence[str] = ("imsng", "software", "lfsr",
                                             "sobol"),
                   samples: int = 5_000,
                   seed: int = 0, jobs: int = 1
                   ) -> Dict[str, Dict[str, Dict[int, float]]]:
    """MSE(%) of SC arithmetic per RNG source (Table II, M = 8).

    Returns ``result[op][source][N]``.  ``jobs`` shards the Monte-Carlo
    chunks exactly as in :func:`table1_sng_mse` (one resident pool for
    the whole grid); the grid is independent of ``jobs``.
    """
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    with _harness_pool(jobs) as pool:
        for op in ops:
            out[op] = {}
            for source in sources:
                factory = SngFactory(source)
                out[op][source] = {
                    n: op_mse(op, factory, n, samples, seed=seed + n,
                              jobs=jobs, pool=pool)
                    for n in lengths}
    return out


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------
def table3_hw_cost(length: int = 256) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Hardware cost rows (latency ns / energy nJ) for every design."""
    from ..imsc.cost import ReRamScDesign
    return {
        "CMOS (LFSR)": CmosScDesign("lfsr").table_rows(length),
        "CMOS (Sobol)": CmosScDesign("sobol").table_rows(length),
        "ReRAM (IMSNG-opt)": ReRamScDesign(mode="opt").table_rows(length),
    }


# ---------------------------------------------------------------------------
# Table IV
# ---------------------------------------------------------------------------
def table4_quality(lengths: Sequence[int] = TABLE4_LENGTHS,
                   runs: int = 3, size: int = 32,
                   seed: Optional[int] = None, jobs: Optional[int] = None,
                   tile: Optional[int] = None,
                   cell_model: Optional[str] = None,
                   fault_sampling: Optional[str] = None,
                   config: Optional[RunConfig] = None
                   ) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """SSIM(%)/PSNR(dB) grid of Table IV.

    Returns ``result[row][app] = (ssim_pct, psnr_db)`` with rows
    ``Binary CIM [faulty|ideal]`` and ``SC N=<n> [faulty|ideal]``, averaged
    over ``runs`` scenes/fault samples.  ``config`` (default
    ``RunConfig.default()`` — the fast preset) supplies every axis left
    ``None``: ``jobs``/``tile`` shard the SC runs through the tile
    executor (see :mod:`repro.apps.executor`), ``cell_model`` selects the
    S-to-B device model ('per-bit' oracle or the batched 'column'
    readout) and ``fault_sampling`` the fault-mask model for the faulty
    SC rows ('dense' bit-exact oracle or the statistically conformant
    'sparse' Binomial scatter); the binary/float backends always run
    whole-image.  ``config=RunConfig.oracle()`` reproduces the
    paper-faithful per-bit/dense grid.
    """
    cfg = RunConfig.resolve(config)
    if seed is None:
        seed = cfg.seed
    # run_app re-resolves None/absent axes from the config; only the
    # explicitly overridden ones are forwarded as kwargs.
    shard_overrides = {k: v for k, v in
                       (("jobs", jobs), ("tile", tile),
                        ("cell_model", cell_model),
                        ("fault_sampling", fault_sampling))
                       if v is not None}

    def avg(app: str, backend: str, length: int, faulty: bool
            ) -> Tuple[float, float]:
        ssims, psnrs = [], []
        shard = dict(shard_overrides) if backend == "sc" else {}
        for r in range(runs):
            res = run_app(app, backend, length=length, faulty=faulty,
                          size=size, seed=seed + r, config=cfg, **shard)
            ssims.append(res.ssim_pct)
            psnrs.append(res.psnr_db)
        return float(np.mean(ssims)), float(np.mean(psnrs))

    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for faulty in (False, True):
        tag = "faulty" if faulty else "ideal"
        row = {app: avg(app, "bincim", 0, faulty) for app in APP_NAMES}
        out[f"Binary CIM [{tag}]"] = row
    for n in lengths:
        for faulty in (False, True):
            tag = "faulty" if faulty else "ideal"
            row = {app: avg(app, "sc", n, faulty) for app in APP_NAMES}
            out[f"SC N={n} [{tag}]"] = row
    return out


def quality_drop_summary(table4: Dict[str, Dict[str, Tuple[float, float]]]
                         ) -> Dict[str, float]:
    """Average SSIM drop (ideal -> faulty), the paper's 5% vs 47% claim."""
    def drop(prefixes: List[str]) -> float:
        drops = []
        for key_ideal in table4:
            if not key_ideal.endswith("[ideal]"):
                continue
            if not any(key_ideal.startswith(p) for p in prefixes):
                continue
            key_faulty = key_ideal.replace("[ideal]", "[faulty]")
            for app in table4[key_ideal]:
                drops.append(table4[key_ideal][app][0]
                             - table4[key_faulty][app][0])
        return float(np.mean(drops))

    return {
        "sc_avg_ssim_drop_pct": drop(["SC "]),
        "bincim_avg_ssim_drop_pct": drop(["Binary CIM"]),
    }


# ---------------------------------------------------------------------------
# Per-pixel flow costs for Figs. 4-5
# ---------------------------------------------------------------------------
# Stream-role counts per app: (conversions, single-step ops, mux ops,
# cordiv?, io_bytes for the CMOS design).
_APP_STRUCTURE = {
    # 3 conversions (F, B, alpha-oriented), 1 MAJ, S-to-B.
    "compositing": {"conversions": 3, "maj": 1, "mux": 0, "xor": 0,
                    "cordiv": False, "io_bytes": 4},
    # 4 neighbour + 2 select conversions per output pixel *before reuse*.
    # SBS rows persist in the ReRAM, so conversions amortise: each source
    # pixel serves ~4 output pixels (neighbour overlap at 2x up-scaling)
    # and the dx/dy select patterns repeat across the whole frame — the
    # reason the paper's ReRAM design wins bilinear at every stream length.
    # Effective conversions: 4/4 neighbours + ~0.5 select refresh.
    "interpolation": {"conversions": 1.5, "maj": 2, "mux": 1, "xor": 0,
                      "cordiv": False, "io_bytes": 5},
    # 3 conversions (I, B, F), 2 XOR, CORDIV, S-to-B.
    "matting": {"conversions": 3, "maj": 0, "mux": 0, "xor": 2,
                "cordiv": True, "io_bytes": 4},
}

_APP_BINARY_OPS = {
    "compositing": {"multiply": 2, "add": 1},
    # Three one-multiplier lerps: out = a + t*(b - a).
    "interpolation": {"sub": 3, "multiply": 3, "add": 3},
    "matting": {"sub": 2, "divide": 1},
}

_APP_CMOS_OPS = {
    # Per output pixel: one N-cycle pass of the fused SC datapath; modelled
    # as the dominant op's datapath plus extra SNG energy.
    "compositing": "scaled_addition",
    "interpolation": "scaled_addition",
    "matting": "division",
}


def reram_app_cost(app: str, length: int,
                   costs: ReRamStepCosts = DEFAULT_RERAM_COSTS
                   ) -> EnergyLedger:
    """Per-pixel cost of the in-memory SC design for one application.

    A row of ``row_width`` columns carries ``row_width / N`` pixels, so one
    conversion pass (78 ns, 3M senses) converts that many pixels at once;
    per-pixel figures divide accordingly.  Conversion passes for different
    operands pipeline across mats: the per-pixel critical path carries one
    pass, the ops, and the per-pixel ADC conversion.
    """
    s = _APP_STRUCTURE[app]
    w = costs.row_width
    pixels_per_pass = max(1, w // length)
    led = EnergyLedger()
    conv = imsng_conversion_cost(8, "opt", costs)
    # One pass on the critical path (pipelined), all passes' energy paid.
    led.record("imsng", conv.latency_s / pixels_per_pass,
               conv.energy_j * s["conversions"] / pixels_per_pass)
    n_ops = s["maj"] + s["xor"]
    if n_ops:
        led.record("sc_ops", costs.t_sense * n_ops / pixels_per_pass,
                   costs.sense_energy(w) * n_ops / pixels_per_pass)
    if s["mux"]:
        led.record("sc_mux", 3 * costs.t_sense * s["mux"] / pixels_per_pass,
                   3 * costs.sense_energy(w) * s["mux"] / pixels_per_pass)
    if s["cordiv"]:
        # Sequential over stream bits; all pixels in the row advance
        # together, so per-pixel latency divides by pixels_per_pass.
        led.record("cordiv", costs.t_div_bit * length / pixels_per_pass,
                   costs.e_div_bit * length)
    stob = stob_cost(1, costs, length)
    led.merge(stob)
    return led


def cmos_app_cost(app: str, length: int,
                  design: Optional[CmosScDesign] = None) -> EnergyLedger:
    """Per-pixel cost of the CMOS SC design including data movement."""
    d = design if design is not None else CmosScDesign("lfsr")
    s = _APP_STRUCTURE[app]
    op = _APP_CMOS_OPS[app]
    led = EnergyLedger()
    # One N-cycle pass of the fused datapath per output pixel.
    led.record(f"cmos_{app}", d.latency_ns(op, length) * 1e-9,
               d.energy_nj(op, length) * 1e-9)
    # Additional SNGs beyond the op datapath's own (rough structural scale).
    extra_sngs = max(0, s["conversions"] - 2)
    if extra_sngs:
        per_sng = (d._rng_comp.energy_pj + d._cmp.energy_pj)  # noqa: SLF001
        led.record("cmos_extra_sng", 0.0,
                   extra_sngs * per_sng * 1e-12 * length)
    led.record("transfer", d.transfer.latency(s["io_bytes"]),
               d.transfer.energy(s["io_bytes"]))
    return led


def bincim_app_cost(app: str,
                    costs: ReRamStepCosts = DEFAULT_RERAM_COSTS
                    ) -> EnergyLedger:
    """Per-pixel cost of the binary CIM baseline (row-parallel batch)."""
    from ..bincim.design import MAGIC_INIT_ENERGY_FACTOR
    ops = _APP_BINARY_OPS[app]
    w = costs.row_width
    led = EnergyLedger()
    for op, count in ops.items():
        cycles = BINARY_OP_CYCLES[op] * count
        # One gate sequence processes a whole row of pixels: per-pixel
        # latency divides by the row width; energy is per cell anyway
        # (plus the latency-hidden output-row initialisation writes).
        led.record(f"bin_{op}", costs.t_write * cycles / w,
                   costs.e_write_cell * cycles * MAGIC_INIT_ENERGY_FACTOR,
                   count=1)
    return led


# ---------------------------------------------------------------------------
# Figures 4 and 5
# ---------------------------------------------------------------------------
def fig4_energy(lengths: Sequence[int] = TABLE4_LENGTHS
                ) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Normalized energy savings vs binary CIM (Fig. 4).

    ``result[app][design][N] = E_bincim / E_design`` (> 1 means the SC
    design saves energy over the binary CIM reference).
    """
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app in APP_NAMES:
        ref = bincim_app_cost(app).energy_j
        out[app] = {"CMOS SC": {}, "ReRAM SC": {}}
        for n in lengths:
            out[app]["CMOS SC"][n] = ref / cmos_app_cost(app, n).energy_j
            out[app]["ReRAM SC"][n] = ref / reram_app_cost(app, n).energy_j
    return out


# Mats operating concurrently on different row batches.  Both in-memory
# designs (ReRAM SC and binary CIM) scale with the memory's internal
# parallelism; the CMOS design has a fixed number of SC datapath units.
CIM_PARALLEL_MATS = 4


def fig5_throughput(lengths: Sequence[int] = TABLE4_LENGTHS,
                    cim_mats: int = CIM_PARALLEL_MATS
                    ) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Normalized throughput vs binary CIM (Fig. 5).

    ``result[app][design][N] = T_design / T_bincim`` with T = pixels/s
    (inverse of per-pixel latency).  Both CIM designs get ``cim_mats``-way
    mat parallelism, which cancels in the ReRAM-vs-binary ratio but not for
    the CMOS design.
    """
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app in APP_NAMES:
        ref = cim_mats / bincim_app_cost(app).latency_s
        out[app] = {"CMOS SC": {}, "ReRAM SC": {}}
        for n in lengths:
            out[app]["CMOS SC"][n] = (1.0 / cmos_app_cost(app, n).latency_s) / ref
            out[app]["ReRAM SC"][n] = (cim_mats / reram_app_cost(app, n).latency_s) / ref
    return out


def summarize_figures(fig4: Dict, fig5: Dict) -> Dict[str, float]:
    """Geometric means backing the abstract's headline factors."""
    def gmean(vals: List[float]) -> float:
        return float(np.exp(np.mean(np.log(vals))))

    reram_e = [v for app in fig4.values() for v in app["ReRAM SC"].values()]
    cmos_e = [v for app in fig4.values() for v in app["CMOS SC"].values()]
    reram_t = [v for app in fig5.values() for v in app["ReRAM SC"].values()]
    cmos_t = [v for app in fig5.values() for v in app["CMOS SC"].values()]
    return {
        "reram_energy_savings_vs_bincim": gmean(reram_e),
        "reram_vs_cmos_energy": gmean(reram_e) / gmean(cmos_e),
        "reram_throughput_vs_bincim": gmean(reram_t),
        "reram_vs_cmos_throughput": gmean(reram_t) / gmean(cmos_t),
    }


# ---------------------------------------------------------------------------
# In-text ablation: IMSNG-naive vs IMSNG-opt
# ---------------------------------------------------------------------------
def imsng_variants(segment_bits: int = 8,
                   costs: ReRamStepCosts = DEFAULT_RERAM_COSTS
                   ) -> Dict[str, Dict[str, float]]:
    """Per-conversion latency/energy of the two IMSNG designs (Sec. IV-B)."""
    out = {}
    for mode in ("naive", "opt"):
        led = imsng_conversion_cost(segment_bits, mode, costs)
        out[f"IMSNG-{mode}"] = {"latency_ns": led.latency_ns,
                                "energy_nj": led.energy_nj}
    return out


def write_based_sng_comparison(length: int = 256, segment_bits: int = 8,
                               costs: ReRamStepCosts = DEFAULT_RERAM_COSTS
                               ) -> Dict[str, Dict[str, float]]:
    """IMSNG vs SCRIMP-style write-based SBS generation (Sec. II-C).

    Prior in-memory designs (SCRIMP et al.) generate every stream bit with
    the *probabilistic switching of a write pulse*: a RESET plus a
    50%-probability SET attempt per cell — "not only extremely slow but
    also affects write endurance".  IMSNG instead consumes cheap reads of
    resident TRNG rows plus the greater-than scan.

    Returns per-``length``-bit-stream figures: latency, energy, and cell
    writes (the endurance driver).
    """
    out: Dict[str, Dict[str, float]] = {}
    # IMSNG-opt: the greater-than scan itself, plus the M TRNG row fills
    # amortised over the conversions that reuse them (one random-row fill
    # serves a whole image's worth of conversions; 64 is conservative).
    amortize_over = 64
    led = imsng_conversion_cost(segment_bits, "opt", costs, width=length)
    fill_energy_nj = segment_bits * costs.write_energy(length) * 1e9
    out["IMSNG-opt (read-based)"] = {
        "latency_ns": led.latency_ns,
        "energy_nj": led.energy_nj + fill_energy_nj / amortize_over,
        # One result-row write per conversion + amortised random fills.
        "cell_writes": float(length * (1 + segment_bits / amortize_over)),
    }
    # Write-based: every stream bit costs RESET + probabilistic SET.  The
    # row writes in parallel, so latency is 2 write pulses; energy and
    # endurance scale with 2 pulses per cell.
    out["SCRIMP-style (write-based)"] = {
        "latency_ns": 2 * costs.t_write * 1e9,
        "energy_nj": 2 * costs.write_energy(length) * 1e9,
        "cell_writes": float(2 * length),
    }
    # The target probability still has to be shaped: write-based designs
    # need one probabilistic write round per operand bit (tuning pulse
    # amplitudes per bit plane), so a fair per-conversion figure multiplies
    # by the operand precision.
    per_conv = out["SCRIMP-style (write-based)"]
    out["SCRIMP-style (per 8-bit operand)"] = {
        k: v * segment_bits for k, v in per_conv.items()}
    return out
