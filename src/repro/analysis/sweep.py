"""Parameter-sweep helpers for sensitivity studies and ablations."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

__all__ = ["grid", "run_sweep"]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of keyword dicts.

    >>> grid(n=[32, 64], m=[5, 8])
    [{'n': 32, 'm': 5}, {'n': 32, 'm': 8}, {'n': 64, 'm': 5}, {'n': 64, 'm': 8}]
    """
    names = list(axes)
    out = []
    for combo in itertools.product(*(axes[k] for k in names)):
        out.append(dict(zip(names, combo)))
    return out


def run_sweep(fn: Callable[..., Any],
              points: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Evaluate ``fn(**point)`` at every grid point.

    Returns a list of records ``{**point, "result": value}``; exceptions
    propagate (a sweep that errors should fail loudly, not silently skip).
    """
    records: List[Dict[str, Any]] = []
    for point in points:
        result = fn(**point)
        rec = dict(point)
        rec["result"] = result
        records.append(rec)
    return records
