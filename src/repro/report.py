"""Machine-readable benchmark records (``BENCH_*.json``).

``benchmarks/run_report.py`` historically appended a one-shot text report
(``reproduction_report.txt``) and nothing else — no machine-readable
perf trajectory existed, so a re-anchor reading the repo could not tell
whether a speedup guard had drifted.  Every ``bench_*.py`` guard and the
load harness now also write one small JSON record per run at the repo
root, all sharing schema version 1::

    {
      "schema": 1,                      # BENCH_SCHEMA_VERSION
      "bench": "serve",                 # short [a-z0-9_]+ name
      "utc": "2026-08-07T12:34:56Z",    # write time, UTC
      "config": {...},                  # workload parameters (JSON scalars)
      "run_config": {...},              # resolved RunConfig.to_dict()
      "results": {...}                  # speedups / percentiles / seconds
    }

``config`` and ``results`` are free-form JSON objects, but the whole
record must survive ``json.dumps(..., allow_nan=False)`` — a NaN speedup
must fail the writing benchmark, not poison the trajectory file.
``run_config`` is the resolved :class:`repro.config.RunConfig` the guard
measured under (its headline configuration), so a trajectory reader can
tell an oracle run from a fast-preset run; when present it must
round-trip through :meth:`RunConfig.from_dict`.
:func:`validate_bench_record` enforces all of this; ``run_report.py``
validates every ``BENCH_*.json`` it finds after a run (and refuses two
records that report different resolved configs for the same benchmark
name), and a tier-1 test pins the validator itself.
"""

from __future__ import annotations

import json
import pathlib
import re
import time
from typing import Any, Dict, Union

import numpy as np

__all__ = ["BENCH_SCHEMA_VERSION", "bench_record", "validate_bench_record",
           "write_bench_record", "load_bench_record"]

BENCH_SCHEMA_VERSION = 1

_BENCH_NAME = re.compile(r"^[a-z0-9_]+$")
_UTC_STAMP = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")


def _pyify(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays to JSON-native types.

    Benchmark result dicts routinely hold ``np.float64`` speedups or mean
    arrays; those must not make an otherwise-valid record fail strict
    serialization.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _pyify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pyify(v) for v in value]
    return value


def bench_record(bench: str, config: Dict[str, Any],
                 results: Dict[str, Any],
                 run_config: Any = None) -> Dict[str, Any]:
    """Assemble (and validate) one schema-1 record ready to write.

    ``run_config`` is the resolved run configuration the benchmark
    measured under — a :class:`repro.config.RunConfig` or its
    ``to_dict()`` form; every in-tree guard supplies one.
    """
    record = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": bench,
        # benchmark-record timestamp: metadata only, never feeds results
        # repro-lint: disable=RL001 -- BENCH_*.json provenance stamp; no computed value depends on it
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": _pyify(config),
        "results": _pyify(results),
    }
    if run_config is not None:
        if hasattr(run_config, "to_dict"):
            run_config = run_config.to_dict()
        record["run_config"] = _pyify(run_config)
    return validate_bench_record(record)


def validate_bench_record(record: Any) -> Dict[str, Any]:
    """Check one parsed record against schema 1; returns it unchanged.

    Raises :class:`ValueError` naming the offending field — the caller
    (benchmark guard, ``run_report.py``, or the tier-1 schema test)
    decides whether that is fatal.
    """
    if not isinstance(record, dict):
        raise ValueError(f"bench record must be a JSON object, "
                         f"got {type(record).__name__}")
    missing = {"schema", "bench", "utc", "config", "results"} - set(record)
    if missing:
        raise ValueError(
            f"bench record is missing key(s): {', '.join(sorted(missing))}")
    if record["schema"] != BENCH_SCHEMA_VERSION:
        raise ValueError(f"unsupported bench schema {record['schema']!r} "
                         f"(expected {BENCH_SCHEMA_VERSION})")
    if (not isinstance(record["bench"], str)
            or not _BENCH_NAME.match(record["bench"])):
        raise ValueError(f"bench name must match [a-z0-9_]+, "
                         f"got {record['bench']!r}")
    if (not isinstance(record["utc"], str)
            or not _UTC_STAMP.match(record["utc"])):
        raise ValueError(f"utc must be an ISO-8601 Z timestamp, "
                         f"got {record['utc']!r}")
    for key in ("config", "results"):
        if not isinstance(record[key], dict):
            raise ValueError(f"{key} must be a JSON object, "
                             f"got {type(record[key]).__name__}")
    if "run_config" in record:
        if not isinstance(record["run_config"], dict):
            raise ValueError(f"run_config must be a JSON object, "
                             f"got {type(record['run_config']).__name__}")
        from .config import RunConfig
        try:
            RunConfig.from_dict(record["run_config"])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"run_config is not a valid resolved "
                             f"RunConfig: {exc}") from exc
    try:
        json.dumps(record, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bench record is not strict JSON: {exc}") from exc
    return record


def write_bench_record(path: Union[str, pathlib.Path], bench: str,
                       config: Dict[str, Any],
                       results: Dict[str, Any],
                       run_config: Any = None) -> Dict[str, Any]:
    """Validate and write one record to ``path``; returns the record.

    The write is replace-based (temp file + rename) so a reader never
    sees a half-written trajectory file.
    """
    record = bench_record(bench, config, results, run_config=run_config)
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(record, indent=2, allow_nan=False,
                              sort_keys=True) + "\n")
    tmp.replace(path)
    return record


def load_bench_record(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read and validate one ``BENCH_*.json``; raises ValueError if bad."""
    try:
        record = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not parseable JSON: {exc}") from exc
    return validate_bench_record(record)
