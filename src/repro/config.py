"""The one picklable description of *how to run*: :class:`RunConfig`.

Every fast path in this stack — the packed word backend, the batched
column S-to-B readout, sparse fault-mask scatter, the shared-memory scene
transport, the tiled process-pool executor — used to be selected by loose
kwargs threaded hand-to-hand through ``imsc/engine.py`` →
``apps/executor.py`` → ``serve/`` → ``cli.py``.  :class:`RunConfig`
replaces those kwarg fans with one frozen, validated value that crosses
process and wire boundaries intact: it is picklable (workers), JSON
round-trippable (``to_dict``/``from_dict``, with the same unknown-key
strictness as the serving front-end), and hashable (caches).

Presets
-------
* :meth:`RunConfig.fast` — the **package default** since the fast-path
  release: packed words, column S-to-B, sparse fault sampling, shm scene
  transport.  ``RunConfig.default()`` is an alias; ``run_app()`` with no
  arguments, ``python -m repro serve`` and every benchmark guard resolve
  to it.
* :meth:`RunConfig.oracle` — the paper-faithful slow reference: per-bit
  S-to-B cell sampling and dense Bernoulli fault masks.  For a given seed
  it reproduces the pre-release pinned golden values bit-exactly
  (``tests/test_backend_equivalence.py`` holds it to that), so the
  historical numbers stay one preset away.

The two presets differ only in *statistically conformant* axes: the
conformance suites (``tests/test_imsc.py``, ``tests/test_fault_sampling
.py``) bridge them, and every bit-exact axis (backend, fault domain,
transport, jobs/tile sharding) is identical across presets by
construction.

Resolution contract
-------------------
Entry points take ``config=None`` plus their historical per-field kwargs.
``None`` fields mean "take the config's value"; an explicitly passed
field *overrides* the config (the CLI's ``--cell-model`` etc. build on
this).  One deliberate coercion: a caller explicitly selecting the
per-bit fault **domain** oracle without naming a sampling mode gets
``'dense'`` (the per-bit oracle is dense by definition), never a
``sparse``/``'bit'`` conflict error from an implicit default.

This module also owns the cached request-validation introspection that
``apps/executor.py`` and the serving scheduler previously each carried:
:func:`validate_task_kwargs` / :meth:`RunConfig.validate_for` are the
single copy.
"""

from __future__ import annotations

import dataclasses
import inspect
from functools import lru_cache
from typing import (Any, Callable, ClassVar, Dict, Optional, Sequence,
                    Tuple, Union)

__all__ = ["RunConfig", "validate_task_kwargs"]

_CELL_MODELS = ("per-bit", "column")
_FAULT_SAMPLING = ("dense", "sparse")
_FAULT_DOMAINS = ("word", "bit")
_TRANSPORTS = ("shm", "copy")
_MP_CONTEXTS = ("fork", "forkserver", "spawn")


def _check_choice(name: str, value: Any, choices: Tuple[str, ...],
                  optional: bool = False) -> None:
    if optional and value is None:
        return
    if value not in choices:
        raise ValueError(f"{name} must be one of "
                         f"{', '.join(map(repr, choices))}"
                         f"{' or None' if optional else ''}, "
                         f"got {value!r}")


def _check_int(name: str, value: Any, minimum: int,
               optional: bool = False) -> None:
    if optional and value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer"
                         f"{' or None' if optional else ''}, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Frozen, validated description of how to execute SC work.

    Fields
    ------
    backend:
        Execution backend name (``'unpacked'`` / ``'packed'``), or
        ``None`` to inherit the process-active backend (which itself
        defaults to ``packed`` since the fast-path release; the
        ``REPRO_BACKEND`` environment variable still overrides it).
        Stream bits are identical across backends, so this axis never
        changes results — only speed.
    cell_model:
        S-to-B device-variability model: ``'column'`` (batched popcount
        readout — the default) or ``'per-bit'`` (the sampling oracle).
    fault_sampling:
        Fault-mask model: ``'sparse'`` (Binomial site scatter — the
        default) or ``'dense'`` (the bit-exact Bernoulli oracle).
    fault_domain:
        ``'word'`` (packed fault application, default) or ``'bit'`` (the
        per-bit conformance oracle; bit-identical to ``'word'`` per seed
        and forces dense sampling).
    transport:
        Serving scene transport: ``'shm'`` (content-addressed
        shared-memory store, default) or ``'copy'`` (pickled tile
        slices).  Bit-identical either way.
    jobs:
        Worker processes for sharded paths (``1`` = in-process; output
        is jobs-invariant).
    tile:
        Tile edge length for the tiled executor, or ``None`` for
        whole-image batch runs (serving always requires a tile).
    mp_context:
        Multiprocessing start-method name (``'fork'`` / ``'forkserver'``
        / ``'spawn'``) or ``None`` for the pinned platform default.
        Kept as a *name*, not a context object, so configs stay
        picklable and JSON-serializable.
    seed:
        Root seed for the deterministic per-tile / per-chunk
        ``SeedSequence`` spawn.  Must be a real integer — ``None``
        (OS entropy) is rejected for the same reason the JSON front-end
        rejects ``"seed": null``: silent nondeterminism.
    """

    backend: Optional[str] = None
    cell_model: str = "column"
    fault_sampling: str = "sparse"
    fault_domain: str = "word"
    transport: str = "shm"
    jobs: int = 1
    tile: Optional[int] = None
    mp_context: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend is not None:
            from .core.backend import get_backend
            get_backend(self.backend)   # raises naming the bad backend
        _check_choice("cell_model", self.cell_model, _CELL_MODELS)
        _check_choice("fault_sampling", self.fault_sampling, _FAULT_SAMPLING)
        _check_choice("fault_domain", self.fault_domain, _FAULT_DOMAINS)
        if self.fault_sampling == "sparse" and self.fault_domain == "bit":
            raise ValueError(
                "conflicting keys: fault_sampling='sparse' requires "
                "fault_domain='word' (the per-bit oracle is dense by "
                "definition)")
        _check_choice("transport", self.transport, _TRANSPORTS)
        _check_choice("mp_context", self.mp_context, _MP_CONTEXTS,
                      optional=True)
        _check_int("jobs", self.jobs, 1)
        _check_int("tile", self.tile, 1, optional=True)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                f"seed must be an integer, got {self.seed!r}: a None/float "
                f"seed would make output silently nondeterministic")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    #: Every preset names *every* field explicitly, even where it matches
    #: the dataclass default.  That redundancy is deliberate: a new field
    #: cannot silently ride a preset on its default value, and the lint
    #: config-coherence rule (RL007) checks this table for completeness
    #: so a missing entry fails the gate, not a user.
    PRESET_FIELDS: ClassVar[Dict[str, Dict[str, Any]]] = {
        "fast": {
            "backend": None,          # inherit process-active (packed)
            "cell_model": "column",
            "fault_sampling": "sparse",
            "fault_domain": "word",
            "transport": "shm",
            "jobs": 1,
            "tile": None,
            "mp_context": None,
            "seed": 0,
        },
        "oracle": {
            "backend": None,
            "cell_model": "per-bit",
            "fault_sampling": "dense",
            "fault_domain": "word",
            "transport": "shm",
            "jobs": 1,
            "tile": None,
            "mp_context": None,
            "seed": 0,
        },
    }

    @classmethod
    def _from_preset_table(cls, name: str, overrides: Dict[str, Any]
                           ) -> "RunConfig":
        fields = dict(cls.PRESET_FIELDS[name])
        missing = sorted(set(cls.field_names()) - set(fields))
        if missing:   # belt-and-braces behind the RL007 static check
            raise RuntimeError(
                f"preset {name!r} is missing field(s): {', '.join(missing)}")
        return cls(**fields).replace(**overrides)

    @classmethod
    def fast(cls, **overrides: Any) -> "RunConfig":
        """The fast-path preset: packed + column + sparse (+ shm)."""
        return cls._from_preset_table("fast", overrides)

    @classmethod
    def oracle(cls, **overrides: Any) -> "RunConfig":
        """The paper-faithful reference: per-bit S-to-B, dense masks.

        Reproduces the pre-release pinned golden quality values
        bit-exactly for a given seed.
        """
        return cls._from_preset_table("oracle", overrides)

    @classmethod
    def default(cls) -> "RunConfig":
        """The package default — :meth:`fast` since the defaults flip."""
        return cls.fast()

    PRESETS = ("fast", "oracle")

    @classmethod
    def preset(cls, name: str, **overrides: Any) -> "RunConfig":
        """Look up a preset by name (``'fast'`` / ``'oracle'``)."""
        if name not in cls.PRESETS:
            raise ValueError(f"unknown preset {name!r}; expected one of: "
                             f"{', '.join(cls.PRESETS)}")
        return (cls.fast if name == "fast" else cls.oracle)(**overrides)

    @classmethod
    def resolve(cls, config: Optional["RunConfig"]) -> "RunConfig":
        """``config`` itself, or :meth:`default` when ``None``."""
        if config is None:
            return cls.default()
        if not isinstance(config, cls):
            raise TypeError(f"config must be a RunConfig or None, "
                            f"got {type(config).__name__}")
        return config

    # ------------------------------------------------------------------
    # round-tripping
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON field dict; ``from_dict(to_dict())`` is identity."""
        return dataclasses.asdict(self)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_dict(cls, data: Any) -> "RunConfig":
        """Build a validated config from a plain dict.

        Strictness matches the JSON front-end: unknown keys are rejected
        *by name* (a silently dropped key means a client believes it
        configured something it didn't), and every field value is
        validated before the config is returned.
        """
        if not isinstance(data, dict):
            raise ValueError(f"config must be a JSON object of RunConfig "
                             f"fields, got {type(data).__name__}")
        unknown = sorted(set(data) - set(cls.field_names()))
        if unknown:
            raise ValueError(
                f"unknown config key(s): {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(cls.field_names())}")
        return cls(**data)

    def replace(self, **overrides: Any) -> "RunConfig":
        """A copy with fields replaced; unknown names rejected by name."""
        unknown = sorted(set(overrides) - set(self.field_names()))
        if unknown:
            raise ValueError(
                f"unknown config key(s): {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(self.field_names())}")
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # engine-kwarg resolution
    # ------------------------------------------------------------------
    def engine_kwargs(self) -> Dict[str, Any]:
        """The engine-constructor kwargs this config pins."""
        return {"cell_model": self.cell_model,
                "fault_sampling": self.fault_sampling,
                "fault_domain": self.fault_domain}

    def merged_engine_kwargs(self, extra: Optional[Dict[str, Any]] = None
                             ) -> Dict[str, Any]:
        """Config-pinned engine kwargs with explicit ``extra`` overrides.

        Explicit keys win over the config.  One coercion keeps the
        override surface ergonomic: selecting ``fault_domain='bit'`` (the
        per-bit oracle) without naming a sampling mode falls back to
        ``'dense'`` instead of inheriting a conflicting config-level
        ``'sparse'`` — the oracle is dense by definition, and an error
        from an *implicit* default would be unactionable.
        """
        merged = self.engine_kwargs()
        extra = dict(extra or {})
        merged.update(extra)
        if (merged.get("fault_domain") == "bit"
                and "fault_sampling" not in extra
                and merged.get("fault_sampling") == "sparse"):
            merged["fault_sampling"] = "dense"
        return merged

    def validate_for(self, kernel: Union[str, Callable],
                     input_names: Sequence[str] = (),
                     kernel_kwargs: Optional[Dict[str, Any]] = None,
                     engine_kwargs: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """Validate this config (plus overrides) against one tile kernel.

        Returns the merged engine kwargs the workers would see.  Raises
        :class:`ValueError` naming the offending key on an unknown engine
        kwarg, an invalid engine value, an unknown kernel kwarg, an
        input/kwarg collision, or a missing required input — all in the
        caller's process, before anything is pickled to a worker.
        """
        merged = self.merged_engine_kwargs(engine_kwargs)
        validate_task_kwargs(kernel, input_names, merged,
                             dict(kernel_kwargs or {}))
        return merged


# ---------------------------------------------------------------------------
# Cached task-kwarg validation (the single copy; executor re-exports it)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=1)
def _engine_param_names() -> frozenset:
    """Constructor kwargs of ``InMemorySCEngine``, introspected once."""
    from .imsc.engine import InMemorySCEngine
    return frozenset(
        inspect.signature(InMemorySCEngine.__init__).parameters) - {"self"}


@lru_cache(maxsize=256)
def _kernel_sig_info(fn: Callable) -> Tuple[bool, frozenset, frozenset]:
    """``(has_var_keyword, param_names, required_names)`` for one kernel.

    Keyed on the function object (not the registry name) so re-binding a
    name in ``KERNELS`` — the test suite does — can never serve a stale
    signature.
    """
    sig = inspect.signature(fn)
    has_var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD
                     for p in sig.parameters.values())
    params = frozenset(sig.parameters) - {"engine", "length"}
    required = frozenset(
        name for name, p in sig.parameters.items()
        if name not in ("engine", "length")
        and p.default is inspect.Parameter.empty
        and p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                       inspect.Parameter.KEYWORD_ONLY))
    return has_var_kw, params, required


#: Engine-kwarg combinations already probed OK (a throwaway engine was
#: constructed without raising).  Serving hot path: re-probing the same
#: frozen kwargs on every request would rebuild an engine per request.
_ENGINE_PROBE_CACHE: set = set()
_ENGINE_PROBE_CACHE_MAX = 1024


def _probe_engine_kwargs(engine_kwargs: Dict[str, Any]) -> None:
    """Reject bad engine kwarg *values* with the engine's own message.

    Constructing a throwaway engine (no stream state) validates values
    like ``fault_sampling``; combinations that pass are remembered (keyed
    on the frozen kwargs) so repeated requests skip the probe.  Failures
    are never cached, and unhashable values fall back to probing every
    time.
    """
    try:
        key = tuple(sorted(engine_kwargs.items()))
        hash(key)
    except TypeError:
        key = None
    if key is not None and key in _ENGINE_PROBE_CACHE:
        return
    from .imsc.engine import InMemorySCEngine
    InMemorySCEngine(**engine_kwargs)
    if key is not None:
        if len(_ENGINE_PROBE_CACHE) >= _ENGINE_PROBE_CACHE_MAX:
            _ENGINE_PROBE_CACHE.clear()
        _ENGINE_PROBE_CACHE.add(key)


def _kernel_fn(kernel: Union[str, Callable]) -> Callable:
    if callable(kernel):
        return kernel
    from .apps.executor import KERNELS   # deferred: apps sits above config
    if kernel not in KERNELS:
        raise ValueError(f"unknown tile kernel {kernel!r}")
    return KERNELS[kernel]


def validate_task_kwargs(kernel: Union[str, Callable],
                         input_names: Sequence[str],
                         engine_kwargs: Dict[str, Any],
                         kernel_kwargs: Dict[str, Any]) -> None:
    """Fail fast, in the parent, on kwargs the workers would choke on.

    A bad key would otherwise surface only inside a worker process as an
    opaque pickled ``TypeError``; checking against the engine constructor
    and the kernel signature here names the offending key directly.
    Engine kwarg *values* are probed too (:func:`_probe_engine_kwargs`).
    All introspection is cached — this runs once per served request, and
    re-running ``inspect.signature`` plus an engine construction per
    request was measurable in the serving hot path.

    ``kernel`` may be a registry name or the kernel function itself.
    This is the single copy of the acceptable-key derivation;
    ``apps/executor.py`` and the serving path both route through it.
    """
    engine_params = _engine_param_names()
    for key in engine_kwargs:
        if key == "rng":
            raise ValueError("engine_kwargs must not contain 'rng': each "
                             "tile engine derives its generator from the "
                             "per-tile SeedSequence child")
        if key == "config":
            raise ValueError("engine_kwargs must not contain 'config': "
                             "pass the RunConfig itself via config=")
        if key not in engine_params:
            raise ValueError(
                f"unknown engine kwarg {key!r}; valid keys: "
                f"{', '.join(sorted(engine_params - {'rng', 'config'}))}")
    _probe_engine_kwargs(engine_kwargs)
    reserved = set(input_names)
    for key in kernel_kwargs:
        if key in reserved:
            raise ValueError(f"kernel kwarg {key!r} collides with a tiled "
                             f"input array of the same name")
    kernel_name = kernel if isinstance(kernel, str) else getattr(
        kernel, "__name__", repr(kernel))
    has_var_kw, kernel_params, required = _kernel_sig_info(
        _kernel_fn(kernel))
    if has_var_kw:
        return
    for key in input_names:
        if key not in kernel_params:
            raise ValueError(
                f"unknown input {key!r} for kernel {kernel_name!r}; "
                f"expected arrays named from: "
                f"{', '.join(sorted(kernel_params))}")
    for key in kernel_kwargs:
        if key not in kernel_params:
            raise ValueError(
                f"unknown kwarg {key!r} for kernel {kernel_name!r}; valid "
                f"keys: {', '.join(sorted(kernel_params - reserved)) or '(none)'}")
    missing = required - reserved - set(kernel_kwargs)
    if missing:
        raise ValueError(
            f"kernel {kernel_name!r} is missing required input array(s): "
            f"{', '.join(sorted(missing))}")
