"""Pluggable execution backends for bit-stream storage and bulk logic.

Every SC primitive in this library is a bulk bitwise operation over the
stream axis, so the *representation* of a stream decides how much memory
each op moves.  An :class:`ExecutionBackend` owns that decision: it packs
0/1 bit arrays into an opaque per-backend payload and executes the logic
primitives (AND/OR/XOR/NOT/MAJ/MUX), popcount-based value recovery, and
comparator-style generation directly on that payload.

Two backends ship with the library:

* ``unpacked`` — the historical representation: one ``uint8`` byte per bit.
  Zero conversion cost, byte-level memory traffic.
* ``packed`` — 64 stream bits per ``uint64`` word (``numpy.packbits`` bit
  order, i.e. MSB-first within each byte).  Bulk logic and popcount run on
  words, moving 8x less memory than the unpacked path; tail bits past the
  stream length are kept at zero (the *canonical form* every method relies
  on), so NOT is implemented as XOR with a cached tail-masked all-ones
  vector.

The active backend is resolved, in order, from :func:`set_backend` /
:func:`use_backend` calls, the ``REPRO_BACKEND`` environment variable, and
finally the ``packed`` default (the fast-path release flipped it from
``unpacked``; both remain registered and the streams they produce are
bit-identical).  :class:`~repro.core.bitstream.Bitstream`
consults the registry on construction, so flipping the environment variable
re-routes the whole library — ops, SNGs, correlation, the in-memory engine —
without touching call sites.

Adding a third backend is three steps: subclass :class:`ExecutionBackend`,
implement the abstract methods (the structural defaults — ``roll`` etc. —
fall back to unpack/transform/pack and may be overridden for speed), and
call :func:`register_backend`.  ``tests/test_backend_equivalence.py`` is the
conformance suite: parametrise it over the new name and every op is checked
bit-exactly against the unpacked reference.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ExecutionBackend",
    "UnpackedBackend",
    "PackedBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "DEFAULT_BACKEND_ENV",
    "DEFAULT_BACKEND_NAME",
]

DEFAULT_BACKEND_ENV = "REPRO_BACKEND"
#: Fallback when neither set_backend/use_backend nor REPRO_BACKEND picked
#: one.  ``packed`` since the fast-path release: bit-exact with
#: ``unpacked`` (the conformance suite holds every op to that), 8x less
#: memory traffic.
DEFAULT_BACKEND_NAME = "packed"

_WORD_BITS = 64
_WORD_BYTES = 8

# numpy < 2.0 has no np.bitwise_count; fall back to a byte lookup table.
if hasattr(np, "bitwise_count"):
    def _word_popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
else:  # pragma: no cover - exercised only on numpy 1.x
    _POPCOUNT_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1,
                                                             dtype=np.int64)

    def _word_popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _POPCOUNT_TABLE[as_bytes].sum(axis=-1)


class ExecutionBackend:
    """Storage layout + bulk logic executor for bit-stream payloads.

    A payload is an ndarray whose leading axes are the batch and whose last
    axis is the backend's unit of storage (bytes-as-bits for ``unpacked``,
    64-bit words for ``packed``).  All methods are pure; payloads are never
    mutated in place.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: True when the payload *is* the unpacked uint8 bit array (lets
    #: :class:`Bitstream` serve ``.bits`` without a conversion).
    stores_bits: bool = False

    # -- representation ------------------------------------------------
    def pack(self, bits: np.ndarray) -> np.ndarray:
        """Payload from a contiguous uint8 array of 0/1 values."""
        raise NotImplementedError

    def unpack(self, data: np.ndarray, length: int) -> np.ndarray:
        """Contiguous uint8 0/1 array (last axis = ``length``) from payload."""
        raise NotImplementedError

    def from_bool(self, mask: np.ndarray) -> np.ndarray:
        """Payload from a boolean array — the comparator-output fast path.

        SNG generation ends in a vectorised comparison (``RN < X``); routing
        the boolean result straight into the payload skips the intermediate
        uint8 materialisation the constructor would need.
        """
        raise NotImplementedError

    def from_packed_bytes(self, packed: np.ndarray, length: int) -> np.ndarray:
        """Payload from ``numpy.packbits`` output; stray tail bits ignored."""
        raise NotImplementedError

    def to_packed_bytes(self, data: np.ndarray, length: int) -> np.ndarray:
        """Fresh ``numpy.packbits``-layout byte array for the payload."""
        raise NotImplementedError

    def zeros(self, batch_shape: Tuple[int, ...], length: int) -> np.ndarray:
        raise NotImplementedError

    def ones(self, batch_shape: Tuple[int, ...], length: int) -> np.ndarray:
        raise NotImplementedError

    # -- bulk logic ----------------------------------------------------
    def bitwise_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def bitwise_or(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def bitwise_xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def bitwise_not(self, data: np.ndarray, length: int) -> np.ndarray:
        raise NotImplementedError

    def maj3(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """3-input majority: ``ab + ac + bc`` bit-wise."""
        x = self.bitwise_and(a, b)
        y = self.bitwise_and(a, c)
        z = self.bitwise_and(b, c)
        return self.bitwise_or(self.bitwise_or(x, y), z)

    def mux2(self, sel: np.ndarray, a: np.ndarray, b: np.ndarray,
             length: int) -> np.ndarray:
        """2-to-1 multiplexer: ``b`` where ``sel`` is 1, else ``a``."""
        return self.bitwise_or(
            self.bitwise_and(self.bitwise_not(sel, length), a),
            self.bitwise_and(sel, b),
        )

    # -- value recovery ------------------------------------------------
    def popcount(self, data: np.ndarray, length: int) -> np.ndarray:
        """Number of '1's per stream as an int64 array of batch shape."""
        raise NotImplementedError

    def mean(self, data: np.ndarray, length: int) -> np.ndarray:
        """Popcount-based value estimate ``popcount / N`` per stream."""
        return self.popcount(data, length) / float(length)

    # -- sparse fault injection ----------------------------------------
    def scatter_flip(self, data: np.ndarray, flat_sites: np.ndarray,
                     length: int) -> np.ndarray:
        """XOR-flip individual bits addressed by flat bit-domain indices.

        ``flat_sites`` indexes the C-order bit-domain view ``batch_shape +
        (length,)`` of the payload; duplicate indices cancel pairwise (XOR
        semantics).  This is the primitive behind sparse fault-mask
        sampling: a handful of flip sites touch a handful of storage
        units instead of materialising a full-size Bernoulli mask.
        Returns a new payload; ``data`` is never mutated.  An empty
        ``flat_sites`` returns the payload unchanged (and uncopied) —
        low-fault-rate Binomial draws hit zero sites on most tiles, and
        the no-op must not pay a round-trip.  The generic default
        round-trips through the bit domain — backends override it to
        scatter directly into their native layout.
        """
        if np.asarray(flat_sites).size == 0:
            return data
        bits = np.array(self.unpack(data, length), dtype=np.uint8, copy=True)
        np.bitwise_xor.at(bits.reshape(-1), flat_sites, np.uint8(1))
        return self.pack(bits)

    # -- structural ops (generic defaults via unpack/pack) -------------
    def roll(self, data: np.ndarray, shift: int, length: int) -> np.ndarray:
        return self.pack(np.roll(self.unpack(data, length), shift, axis=-1))

    def batch_reshape(self, data: np.ndarray,
                      batch_shape: Tuple[int, ...], length: int) -> np.ndarray:
        """Reshape batch axes only; the stream axis is untouched."""
        return data.reshape(batch_shape + (data.shape[-1],))

    def batch_stack(self, payloads: Sequence[np.ndarray]) -> np.ndarray:
        """Stack equal-shape payloads along a new leading batch axis."""
        return np.stack(list(payloads), axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class UnpackedBackend(ExecutionBackend):
    """One uint8 byte per bit — the historical, conversion-free layout."""

    name = "unpacked"
    stores_bits = True

    def pack(self, bits: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(bits, dtype=np.uint8)

    def unpack(self, data: np.ndarray, length: int) -> np.ndarray:
        return data

    def from_bool(self, mask: np.ndarray) -> np.ndarray:
        return mask.astype(np.uint8)

    def from_packed_bytes(self, packed: np.ndarray, length: int) -> np.ndarray:
        bits = np.unpackbits(packed, axis=-1)[..., :length]
        return np.ascontiguousarray(bits)

    def to_packed_bytes(self, data: np.ndarray, length: int) -> np.ndarray:
        return np.packbits(data, axis=-1)

    def zeros(self, batch_shape: Tuple[int, ...], length: int) -> np.ndarray:
        return np.zeros(batch_shape + (length,), dtype=np.uint8)

    def ones(self, batch_shape: Tuple[int, ...], length: int) -> np.ndarray:
        return np.ones(batch_shape + (length,), dtype=np.uint8)

    def bitwise_and(self, a, b):
        return np.bitwise_and(a, b)

    def bitwise_or(self, a, b):
        return np.bitwise_or(a, b)

    def bitwise_xor(self, a, b):
        return np.bitwise_xor(a, b)

    def bitwise_not(self, data, length):
        return np.bitwise_xor(data, np.uint8(1))

    def popcount(self, data, length):
        return data.sum(axis=-1, dtype=np.int64)

    def scatter_flip(self, data, flat_sites, length):
        # The payload *is* the bit array, so bit-domain flat indices are
        # payload flat indices.
        if np.asarray(flat_sites).size == 0:
            return data
        out = np.array(data, dtype=np.uint8, copy=True)
        np.bitwise_xor.at(out.reshape(-1), flat_sites, np.uint8(1))
        return out

    def roll(self, data, shift, length):
        return np.roll(data, shift, axis=-1)


class PackedBackend(ExecutionBackend):
    """64 stream bits per uint64 word, ``numpy.packbits`` bit order.

    Canonical form: bits at positions >= ``length`` inside the final word
    are zero.  AND/OR/XOR of canonical payloads stay canonical for free;
    NOT restores it by XOR-ing with a tail-masked all-ones vector (which
    also *is* the complement, so canonicalisation costs nothing extra).
    """

    name = "packed"
    stores_bits = False

    def __init__(self) -> None:
        # Per-length cache of the tail-masked all-ones word vector.  A
        # handful of stream lengths dominate any run, so an unbounded dict
        # is fine (entries are ~N/8 bytes each).
        self._ones_cache: Dict[int, np.ndarray] = {}

    # -- layout helpers ------------------------------------------------
    @staticmethod
    def words_per_stream(length: int) -> int:
        return (length + _WORD_BITS - 1) // _WORD_BITS

    def _bytes_to_words(self, packed: np.ndarray, length: int) -> np.ndarray:
        """View packbits output as uint64 words, zero-padding to 8 bytes."""
        want = self.words_per_stream(length) * _WORD_BYTES
        if packed.shape[-1] != want:
            padded = np.zeros(packed.shape[:-1] + (want,), dtype=np.uint8)
            padded[..., :packed.shape[-1]] = packed
            packed = padded
        else:
            packed = np.ascontiguousarray(packed)
        return packed.view(np.uint64)

    def _ones_words(self, length: int) -> np.ndarray:
        """All-ones payload vector for one stream: the canonical tail mask."""
        cached = self._ones_cache.get(length)
        if cached is None:
            cached = self._bytes_to_words(
                np.packbits(np.ones(length, dtype=np.uint8)), length)
            cached.setflags(write=False)
            self._ones_cache[length] = cached
        return cached

    # -- representation ------------------------------------------------
    def pack(self, bits: np.ndarray) -> np.ndarray:
        return self._bytes_to_words(np.packbits(bits, axis=-1), bits.shape[-1])

    def unpack(self, data: np.ndarray, length: int) -> np.ndarray:
        as_bytes = np.ascontiguousarray(data).view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=-1)[..., :length]
        return np.ascontiguousarray(bits)

    def from_bool(self, mask: np.ndarray) -> np.ndarray:
        return self._bytes_to_words(np.packbits(mask, axis=-1), mask.shape[-1])

    def from_packed_bytes(self, packed: np.ndarray, length: int) -> np.ndarray:
        if length % 8:
            # Zero stray bits beyond the stream length so the payload is
            # canonical (packbits order: valid bits are the byte's MSBs).
            tail = length % 8
            packed = packed.copy()
            packed[..., -1] &= np.uint8((0xFF << (8 - tail)) & 0xFF)
        else:
            # Word-aligned inputs would otherwise be *viewed* in place,
            # aliasing the caller's buffer into the payload.
            packed = packed.copy()
        return self._bytes_to_words(packed, length)

    def to_packed_bytes(self, data: np.ndarray, length: int) -> np.ndarray:
        n_bytes = (length + 7) // 8
        return np.ascontiguousarray(data).view(np.uint8)[..., :n_bytes].copy()

    def zeros(self, batch_shape, length):
        return np.zeros(batch_shape + (self.words_per_stream(length),),
                        dtype=np.uint64)

    def ones(self, batch_shape, length):
        ones = self._ones_words(length)
        return np.broadcast_to(ones, batch_shape + ones.shape).copy()

    # -- bulk logic ----------------------------------------------------
    def bitwise_and(self, a, b):
        return np.bitwise_and(a, b)

    def bitwise_or(self, a, b):
        return np.bitwise_or(a, b)

    def bitwise_xor(self, a, b):
        return np.bitwise_xor(a, b)

    def bitwise_not(self, data, length):
        # XOR with the tail-masked all-ones vector flips every valid bit
        # and leaves the (zero) tail bits zero — complement and
        # canonicalisation in a single pass.
        return np.bitwise_xor(data, self._ones_words(length))

    def popcount(self, data, length):
        return _word_popcount(data)

    def scatter_flip(self, data, flat_sites, length):
        # Bit-index -> byte shifts against the memory-order uint8 view of
        # the word payload: packbits stores stream byte k at memory
        # position k, so viewing the uint64 words as bytes recovers the
        # packbits layout regardless of host endianness.  Flip sites are
        # always < length, so the canonical zero tail is preserved.
        if np.asarray(flat_sites).size == 0:
            return data
        out = np.array(data, dtype=np.uint64, copy=True)
        idx = np.asarray(flat_sites, dtype=np.int64)
        row, bit = np.divmod(idx, length)
        byte_in_stream = bit >> 3
        masks = (np.uint8(0x80) >> (bit & 7).astype(np.uint8))
        stream_bytes = out.shape[-1] * _WORD_BYTES
        np.bitwise_xor.at(out.view(np.uint8).reshape(-1),
                          row * stream_bytes + byte_in_stream, masks)
        return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ExecutionBackend] = {}
_ACTIVE: Optional[ExecutionBackend] = None


def register_backend(backend: ExecutionBackend, *,
                     overwrite: bool = False) -> ExecutionBackend:
    """Add a backend instance to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def get_backend(name: Optional[str] = None) -> ExecutionBackend:
    """Look up a backend by name, or resolve the active one.

    With ``name=None`` the active backend is returned, resolving on first
    use from the ``REPRO_BACKEND`` environment variable (default
    ``packed`` since the fast-path release).
    """
    if name is None:
        global _ACTIVE
        if _ACTIVE is None:
            _ACTIVE = get_backend(
                os.environ.get(DEFAULT_BACKEND_ENV,
                               DEFAULT_BACKEND_NAME).strip().lower())
        return _ACTIVE
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(available_backends())}") from None


def set_backend(name: str) -> ExecutionBackend:
    """Make ``name`` the active backend for subsequently created streams."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


@contextmanager
def use_backend(name: str) -> Iterator[ExecutionBackend]:
    """Context manager scoping the active backend to a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


register_backend(UnpackedBackend())
register_backend(PackedBackend())
