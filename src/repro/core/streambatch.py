"""Batched word-domain stream arrays.

:class:`StreamBatch` is the bulk execution container the application
pipelines and the in-memory engine operate on: an n-d batch of equal-length
bit-streams stored *directly in the active backend's payload layout* (shape
``batch_shape + (words,)`` under the packed backend, ``batch_shape +
(length,)`` under the unpacked one).  Every method below — construction from
comparator output, logic ops, fault-mask application, popcount readout,
SCC, batch slicing/stacking — executes in that native layout; nothing ever
round-trips through an unpacked ``uint8`` bit array unless ``.bits`` is
explicitly requested.

Relationship to :class:`~repro.core.bitstream.Bitstream`
--------------------------------------------------------
The two classes share the same payload format, so conversion either way
(:meth:`from_bitstream` / :meth:`to_bitstream`) is zero-copy.  ``Bitstream``
remains the user-facing scalar/stream container with validation and legacy
conveniences; ``StreamBatch`` is the lean whole-image workhorse: its batch
accessors (``select``, ``__getitem__``) slice the payload's leading axes
instead of unpacking, which is what lets the ``repro.apps`` pipelines split
a generated ``(k, n_pixels, N)`` operand stack into per-role stream arrays
without leaving the word domain.

Typical pipeline use::

    fb = StreamBatch.from_bitstream(engine.generate_correlated(stack, N))
    sf, sb = fb.select(0), fb.select(1)       # payload slices, no unpack
    out = StreamBatch.maj(sf, sb, sel)        # word-domain logic
    value = out.value()                       # popcount readout

Fault injection (:mod:`repro.imsc.engine`) uses :meth:`flip`: a boolean
per-bit fault mask — sampled in the bit domain so the RNG consumption
matches the per-bit conformance oracle — is packed once and XOR-ed into the
payload, keeping faulty execution at word-level memory traffic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from .backend import ExecutionBackend, get_backend
from .bitstream import Bitstream

__all__ = ["StreamBatch"]


def _resolve(backend: Union[ExecutionBackend, str, None]) -> ExecutionBackend:
    if isinstance(backend, ExecutionBackend):
        return backend
    return get_backend(backend)


class StreamBatch:
    """An n-d batch of bit-streams held in the backend's native payload.

    Parameters
    ----------
    data:
        A *canonical* backend payload (as produced by the backend's own
        ``pack`` / ``from_bool`` / logic methods).  Not validated — use the
        classmethod constructors for anything user-supplied.
    length:
        Stream length ``N`` in bits.
    backend:
        Owning execution backend (instance or registry name).
    """

    __slots__ = ("backend", "data", "length")

    def __init__(self, data: np.ndarray, length: int,
                 backend: Union[ExecutionBackend, str, None] = None):
        self.backend = _resolve(backend)
        self.data = data
        self.length = int(length)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bitstream(cls, stream: Bitstream) -> "StreamBatch":
        """Zero-copy view of a ``Bitstream``'s payload."""
        return cls(stream._data, stream.length, stream.backend)

    @classmethod
    def from_bits(cls, bits: np.ndarray,
                  backend: Union[ExecutionBackend, str, None] = None
                  ) -> "StreamBatch":
        """Pack an unpacked uint8 0/1 array (last axis = stream)."""
        be = _resolve(backend)
        arr = np.ascontiguousarray(bits, dtype=np.uint8)
        return cls(be.pack(arr), arr.shape[-1], be)

    @classmethod
    def from_bool(cls, mask: np.ndarray,
                  backend: Union[ExecutionBackend, str, None] = None
                  ) -> "StreamBatch":
        """Pack a boolean array — the comparator-output fast path."""
        be = _resolve(backend)
        arr = np.asarray(mask)
        if arr.dtype != np.bool_:
            arr = arr.astype(np.bool_)
        return cls(be.from_bool(arr), arr.shape[-1], be)

    @classmethod
    def zeros(cls, batch_shape: Tuple[int, ...], length: int,
              backend: Union[ExecutionBackend, str, None] = None
              ) -> "StreamBatch":
        be = _resolve(backend)
        return cls(be.zeros(tuple(batch_shape), length), length, be)

    @classmethod
    def ones(cls, batch_shape: Tuple[int, ...], length: int,
             backend: Union[ExecutionBackend, str, None] = None
             ) -> "StreamBatch":
        be = _resolve(backend)
        return cls(be.ones(tuple(batch_shape), length), length, be)

    @classmethod
    def constant(cls, bits: np.ndarray, length: int,
                 backend: Union[ExecutionBackend, str, None] = None
                 ) -> "StreamBatch":
        """Per-element constant streams: all-ones where ``bits`` is 1.

        This is the word-domain form of broadcasting an operand bit-plane
        along the stream axis (one payload row per element instead of
        ``length`` repeated bits), used by the faulty IMSNG scan.
        """
        be = _resolve(backend)
        sel = np.asarray(bits) != 0
        one = be.ones((), length)
        zero = be.zeros((), length)
        return cls(np.where(sel[..., None], one, zero), length, be)

    @classmethod
    def compare(cls, codes: np.ndarray, rn: np.ndarray,
                backend: Union[ExecutionBackend, str, None] = None
                ) -> "StreamBatch":
        """Batched SNG comparator: stream bit ``j`` is 1 iff ``codes > rn_j``.

        ``rn`` carries the stream axis last and broadcasts against
        ``codes[..., None]`` — one vectorised greater-than over the whole
        operand batch, packed straight into the payload.
        """
        return cls.from_bool(np.asarray(codes)[..., None] > rn, backend)

    # ------------------------------------------------------------------
    # Shape / views
    # ------------------------------------------------------------------
    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return self.data.shape[:-1]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Bit-domain shape ``batch_shape + (length,)``."""
        return self.data.shape[:-1] + (self.length,)

    @property
    def bits(self) -> np.ndarray:
        """Unpacked uint8 view — debugging/conformance only, never the hot path."""
        return self.backend.unpack(self.data, self.length)

    def select(self, index) -> "StreamBatch":
        """Slice batch axes directly on the payload (no unpacking).

        ``index`` may be anything that indexes the *leading* axes of an
        ndarray (ints, slices, tuples thereof); the storage axis is
        untouched.
        """
        data = self.data[index]
        if data.ndim == 0 or data.shape[-1:] != self.data.shape[-1:]:
            raise IndexError("select() must preserve the storage axis")
        return StreamBatch(data, self.length, self.backend)

    __getitem__ = select

    def reshape(self, *batch_shape: int) -> "StreamBatch":
        return StreamBatch(
            self.backend.batch_reshape(self.data, tuple(batch_shape),
                                       self.length),
            self.length, self.backend)

    @staticmethod
    def stack(batches: Iterable["StreamBatch"]) -> "StreamBatch":
        group = list(batches)
        if not group:
            raise ValueError("cannot stack zero stream batches")
        first = group[0]
        if any(b.backend is not first.backend or b.length != first.length
               for b in group):
            raise ValueError("stacked batches must share backend and length")
        return StreamBatch(
            first.backend.batch_stack([b.data for b in group]),
            first.length, first.backend)

    def to_bitstream(self) -> Bitstream:
        """Zero-copy ``Bitstream`` wrapper around the same payload."""
        return Bitstream._from_payload(self.data, self.length, self.backend)

    # ------------------------------------------------------------------
    # Word-domain logic
    # ------------------------------------------------------------------
    def _coerce(self, other: "StreamBatch") -> np.ndarray:
        if not isinstance(other, StreamBatch):
            raise TypeError("expected a StreamBatch operand")
        if other.length != self.length:
            raise ValueError(
                f"stream length mismatch: {self.length} vs {other.length}")
        if other.backend is not self.backend:
            raise ValueError("operands must share an execution backend")
        return other.data

    def __and__(self, other: "StreamBatch") -> "StreamBatch":
        return StreamBatch(
            self.backend.bitwise_and(self.data, self._coerce(other)),
            self.length, self.backend)

    def __or__(self, other: "StreamBatch") -> "StreamBatch":
        return StreamBatch(
            self.backend.bitwise_or(self.data, self._coerce(other)),
            self.length, self.backend)

    def __xor__(self, other: "StreamBatch") -> "StreamBatch":
        return StreamBatch(
            self.backend.bitwise_xor(self.data, self._coerce(other)),
            self.length, self.backend)

    def __invert__(self) -> "StreamBatch":
        return StreamBatch(self.backend.bitwise_not(self.data, self.length),
                           self.length, self.backend)

    @staticmethod
    def maj(a: "StreamBatch", b: "StreamBatch", c: "StreamBatch"
            ) -> "StreamBatch":
        return StreamBatch(
            a.backend.maj3(a.data, a._coerce(b), a._coerce(c)),
            a.length, a.backend)

    @staticmethod
    def mux(sel: "StreamBatch", a: "StreamBatch", b: "StreamBatch"
            ) -> "StreamBatch":
        return StreamBatch(
            sel.backend.mux2(sel.data, sel._coerce(a), sel._coerce(b),
                             sel.length),
            sel.length, sel.backend)

    @staticmethod
    def exact_count(streams: Sequence["StreamBatch"]) -> "list[StreamBatch]":
        """One-hot count indicators over parallel stream batches.

        Given ``d`` equal-shape batches, returns ``d + 1`` batches
        ``E[0] .. E[d]`` where bit ``j`` of ``E[k]`` is 1 iff *exactly*
        ``k`` of the inputs have bit ``j`` set — the symmetric function
        behind the Bernstein MUX network (the select population count of
        :func:`repro.apps.filters.gamma_correct_sc`).  Evaluated by
        word-domain dynamic programming (two ANDs + an OR per input and
        count), so packed payloads never unpack.
        """
        group = list(streams)
        if not group:
            raise ValueError("exact_count needs at least one stream batch")
        first = group[0]
        e = [StreamBatch.ones(first.batch_shape, first.length, first.backend)]
        for x in group:
            nx = ~x
            nxt = [e[0] & nx]
            nxt.extend((e[k] & nx) | (e[k - 1] & x) for k in range(1, len(e)))
            nxt.append(e[-1] & x)
            e = nxt
        return e

    def flip(self, mask: np.ndarray) -> "StreamBatch":
        """XOR a boolean per-bit fault mask into the payload.

        The mask lives in the bit domain (shape ``batch + (length,)``, as
        sampled by the fault model); it is packed once and applied as a
        word-domain XOR, so the stream data itself never unpacks.
        """
        return self ^ StreamBatch.from_bool(mask, self.backend)

    def flip_at(self, flat_sites: np.ndarray) -> "StreamBatch":
        """XOR-flip individual bits addressed by flat bit-domain indices.

        ``flat_sites`` indexes the C-order bit view ``batch_shape +
        (length,)`` (site ``i`` is bit ``i % length`` of batch element
        ``i // length``).  Duplicate sites cancel pairwise — XOR semantics,
        matching :meth:`flip` of a mask with those bits set.  This is the
        sparse fault path: the engine draws the flip *count* from a
        Binomial and scatters that many sites straight into the payload,
        instead of materialising a full ``shape``-sized Bernoulli mask.
        """
        sites = np.asarray(flat_sites, dtype=np.int64).reshape(-1)
        if sites.size == 0:
            return self
        n_sites = int(np.prod(self.shape))
        if sites.min() < 0 or sites.max() >= n_sites:
            raise IndexError(
                f"flip sites must lie in [0, {n_sites}) for shape "
                f"{self.shape}")
        return StreamBatch(
            self.backend.scatter_flip(self.data, sites, self.length),
            self.length, self.backend)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def popcount(self) -> np.ndarray:
        return self.backend.popcount(self.data, self.length)

    def value(self) -> np.ndarray:
        return self.backend.mean(self.data, self.length)

    def scc(self, other: "StreamBatch") -> np.ndarray:
        """Pairwise stochastic cross-correlation, element-wise over the batch.

        Delegates to :func:`repro.core.correlation.scc`, which itself runs on
        backend-routed AND + popcount — no unpacking under any backend.
        """
        from .correlation import scc as _scc
        self._coerce(other)
        return _scc(self.to_bitstream(), other.to_bitstream())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamBatch(batch={self.batch_shape}, N={self.length}, "
                f"backend={self.backend.name!r})")
