"""Stochastic-to-binary (S-to-B) conversion models.

The final step of every SC flow counts the '1's in the output stream and
scales by the stream length.  Three hardware models are provided:

* :class:`ExactConverter` — ideal popcount (infinite-precision reference).
* :class:`CounterConverter` — the conventional CMOS design: a ``log2(N)``-bit
  up-counter clocked once per stream bit.  Exact, but serial (N cycles) and
  the dominant CMOS S-to-B cost in Table III.
* :class:`QuantizingConverter` — a generic finite-resolution digitiser with
  optional additive noise; the in-memory ADC-based converter
  (:mod:`repro.imsc.stob`), which senses the accumulated bitline current of a
  reference column, specialises this with the 8-bit ADC model of
  :mod:`repro.reram.adc`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .bitstream import Bitstream

__all__ = [
    "ExactConverter",
    "CounterConverter",
    "QuantizingConverter",
]


class ExactConverter:
    """Ideal S-to-B: value = popcount / N with no quantisation."""

    def convert(self, stream: Bitstream) -> np.ndarray:
        return stream.value()


class CounterConverter:
    """CMOS binary up-counter S-to-B model.

    Parameters
    ----------
    width:
        Counter width in bits.  ``None`` sizes the counter as
        ``ceil(log2(N + 1))`` — just wide enough to never saturate, the
        paper's "log2 N-bit counter".  A narrower counter saturates, which is
        exposed for fault-tolerance studies.
    """

    def __init__(self, width: Optional[int] = None):
        if width is not None and width < 1:
            raise ValueError("counter width must be >= 1")
        self.width = width

    def cycles(self, stream: Bitstream) -> int:
        """Serial conversion latency in clock cycles (= stream length)."""
        return stream.length

    def convert(self, stream: Bitstream) -> np.ndarray:
        counts = stream.popcount()
        if self.width is not None:
            cap = (1 << self.width) - 1
            counts = np.minimum(counts, cap)
        return counts / float(stream.length)


class QuantizingConverter:
    """Finite-resolution S-to-B with optional Gaussian count noise.

    The count is disturbed by ``noise_sigma`` (in counts), then quantised to
    ``resolution_bits`` over the full-scale range ``[0, N]`` — the behaviour
    of an analog accumulation + ADC readout chain.
    """

    def __init__(self, resolution_bits: int = 8, noise_sigma: float = 0.0,
                 rng: Union[np.random.Generator, int, None] = None):
        if resolution_bits < 1:
            raise ValueError("resolution_bits must be >= 1")
        self.resolution_bits = resolution_bits
        self.noise_sigma = noise_sigma
        self._gen = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))

    def convert(self, stream: Bitstream) -> np.ndarray:
        n = stream.length
        counts = stream.popcount().astype(np.float64)
        if self.noise_sigma > 0:
            counts = counts + self._gen.normal(0.0, self.noise_sigma, counts.shape)
        levels = (1 << self.resolution_bits) - 1
        # Map [0, N] onto the ADC code space, quantise, map back.
        codes = np.clip(np.rint(counts / n * levels), 0, levels)
        return codes / float(levels)
