"""Stochastic bit-stream container.

In stochastic computing (SC) a value ``x`` in ``[0, 1]`` is represented by a
random bit-stream in which the probability of observing a '1' equals ``x``
(unipolar encoding).  This module provides :class:`Bitstream`, a thin,
vectorised wrapper around a numpy array of 0/1 values whose *last axis* is the
stream (bit) dimension.  A ``Bitstream`` can therefore hold a single stream,
a vector of streams (e.g. one per image pixel) or an arbitrary n-d batch.

The representation is deliberately *unpacked* (one byte per bit) because every
SC operation in this library is a bulk element-wise logic operation, which
numpy executes at memory bandwidth on ``uint8`` data.  Packed views
(``numpy.packbits``) are available for storage-oriented code paths such as the
ReRAM array model.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = ["Bitstream"]

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[Sequence[int]]]


def _as_bits(data: ArrayLike) -> np.ndarray:
    """Coerce ``data`` into a contiguous uint8 array of 0/1 values."""
    arr = np.asarray(data)
    if arr.dtype == np.bool_:
        arr = arr.astype(np.uint8)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"bit-stream data must be integer or boolean, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.uint8, copy=False)
    if arr.size and (arr.max() > 1):
        raise ValueError("bit-stream data must contain only 0s and 1s")
    return np.ascontiguousarray(arr)


class Bitstream:
    """An n-dimensional batch of stochastic bit-streams.

    Parameters
    ----------
    bits:
        Array-like of 0/1 values.  The last axis is the stream length ``N``;
        leading axes are batch dimensions.

    Examples
    --------
    >>> bs = Bitstream([1, 0, 1, 0, 1])
    >>> bs.length
    5
    >>> float(bs.value())
    0.6
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: ArrayLike):
        arr = _as_bits(bits)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        self._bits = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape: Union[int, tuple]) -> "Bitstream":
        """All-zero stream(s) representing probability 0."""
        return cls(np.zeros(shape, dtype=np.uint8))

    @classmethod
    def ones(cls, shape: Union[int, tuple]) -> "Bitstream":
        """All-one stream(s) representing probability 1."""
        return cls(np.ones(shape, dtype=np.uint8))

    @classmethod
    def from_packed(cls, packed: np.ndarray, length: int) -> "Bitstream":
        """Rebuild a stream batch from ``numpy.packbits`` output.

        Parameters
        ----------
        packed:
            Array produced by :meth:`packed`; last axis holds packed bytes.
        length:
            Original (unpacked) stream length ``N``.
        """
        bits = np.unpackbits(packed, axis=-1)[..., :length]
        return cls(bits)

    @classmethod
    def bernoulli(
        cls,
        p: Union[float, np.ndarray],
        length: int,
        rng: Union[np.random.Generator, int, None] = None,
    ) -> "Bitstream":
        """Draw i.i.d. Bernoulli streams with per-element probability ``p``.

        This is the idealised "software SNG": each bit is an independent coin
        flip.  ``p`` may be a scalar or an array; the result has shape
        ``p.shape + (length,)``.
        """
        gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        prob = np.asarray(p, dtype=np.float64)
        if np.any((prob < 0) | (prob > 1)):
            raise ValueError("probabilities must lie in [0, 1]")
        u = gen.random(prob.shape + (length,))
        return cls((u < prob[..., None]).astype(np.uint8))

    # ------------------------------------------------------------------
    # Views and basic properties
    # ------------------------------------------------------------------
    @property
    def bits(self) -> np.ndarray:
        """Underlying uint8 array of 0/1 values (last axis = stream)."""
        return self._bits

    @property
    def length(self) -> int:
        """Stream length ``N`` (size of the last axis)."""
        return self._bits.shape[-1]

    @property
    def batch_shape(self) -> tuple:
        """Shape of the batch dimensions (everything but the last axis)."""
        return self._bits.shape[:-1]

    @property
    def shape(self) -> tuple:
        return self._bits.shape

    def packed(self) -> np.ndarray:
        """Pack the stream into bytes along the last axis (MSB first)."""
        return np.packbits(self._bits, axis=-1)

    def copy(self) -> "Bitstream":
        return Bitstream(self._bits.copy())

    # ------------------------------------------------------------------
    # Value recovery
    # ------------------------------------------------------------------
    def popcount(self) -> np.ndarray:
        """Number of '1's per stream (integer array of batch shape)."""
        return self._bits.sum(axis=-1, dtype=np.int64)

    def value(self) -> np.ndarray:
        """Estimated unipolar value = popcount / N, per stream."""
        return self.popcount() / float(self.length)

    def bipolar_value(self) -> np.ndarray:
        """Estimated bipolar value = 2*P(1) - 1, per stream."""
        return 2.0 * self.value() - 1.0

    # ------------------------------------------------------------------
    # Logic (the SC arithmetic primitives operate on raw bits; these
    # dunder helpers make interactive exploration pleasant)
    # ------------------------------------------------------------------
    def _binary(self, other: "Bitstream", fn) -> "Bitstream":
        if not isinstance(other, Bitstream):
            raise TypeError("expected a Bitstream operand")
        if other.length != self.length:
            raise ValueError(
                f"stream length mismatch: {self.length} vs {other.length}"
            )
        return Bitstream(fn(self._bits, other._bits))

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, np.bitwise_and)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, np.bitwise_xor)

    def __invert__(self) -> "Bitstream":
        return Bitstream(1 - self._bits)

    # ------------------------------------------------------------------
    # Structural ops
    # ------------------------------------------------------------------
    def __getitem__(self, idx) -> "Bitstream":
        out = self._bits[idx]
        return Bitstream(out)

    def roll(self, shift: int) -> "Bitstream":
        """Circularly rotate every stream by ``shift`` bit positions.

        Rotation is the classic zero-cost decorrelation trick: it preserves
        the encoded value exactly while destroying bit-level alignment with
        other streams generated from the same random source.
        """
        return Bitstream(np.roll(self._bits, shift, axis=-1))

    def reshape(self, *batch_shape: int) -> "Bitstream":
        """Reshape batch dimensions, keeping the stream axis untouched."""
        return Bitstream(self._bits.reshape(tuple(batch_shape) + (self.length,)))

    def concat(self, other: "Bitstream") -> "Bitstream":
        """Concatenate along the stream axis (doubling resolution)."""
        if self.batch_shape != other.batch_shape:
            raise ValueError("batch shapes must match for concat")
        return Bitstream(np.concatenate([self._bits, other._bits], axis=-1))

    @staticmethod
    def stack(streams: Iterable["Bitstream"]) -> "Bitstream":
        """Stack equal-length streams into a new leading batch axis."""
        mats = [s.bits for s in streams]
        return Bitstream(np.stack(mats, axis=0))

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return self._bits.shape == other._bits.shape and bool(
            np.array_equal(self._bits, other._bits)
        )

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Bitstream is not hashable")

    def __len__(self) -> int:
        return self._bits.shape[0]

    def __repr__(self) -> str:
        if self._bits.ndim == 1 and self.length <= 32:
            body = "".join(str(int(b)) for b in self._bits)
            return f"Bitstream('{body}', value={self.value():.4f})"
        return (
            f"Bitstream(batch={self.batch_shape}, N={self.length}, "
            f"mean_value={float(np.mean(self.value())):.4f})"
        )
