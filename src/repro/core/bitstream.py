"""Stochastic bit-stream container.

In stochastic computing (SC) a value ``x`` in ``[0, 1]`` is represented by a
random bit-stream in which the probability of observing a '1' equals ``x``
(unipolar encoding).  This module provides :class:`Bitstream`, a thin,
vectorised wrapper whose *last axis* is the stream (bit) dimension.  A
``Bitstream`` can therefore hold a single stream, a vector of streams (e.g.
one per image pixel) or an arbitrary n-d batch.

Execution backends
------------------
How the bits are *stored and executed* is delegated to a pluggable
:class:`~repro.core.backend.ExecutionBackend` chosen at construction time
from the backend registry:

* ``unpacked`` (default) — one ``uint8`` byte per bit; zero conversion
  cost, and ``.bits`` is a free view of the payload.
* ``packed`` — 64 bits per ``uint64`` word in ``numpy.packbits`` order with
  a canonical zero tail; bulk logic, popcount-based value recovery and SNG
  comparator output all run on words, moving 8x less memory.

Select globally with the ``REPRO_BACKEND`` environment variable (or the
``--backend`` CLI flag), programmatically with
:func:`repro.core.backend.set_backend` /
:func:`~repro.core.backend.use_backend`, or per-stream via the ``backend=``
constructor argument.  All public APIs — including ``.bits``, which unpacks
on demand and caches — behave identically under every backend;
``tests/test_backend_equivalence.py`` asserts bit-exact agreement op by op.
To add a third backend, subclass ``ExecutionBackend``, register it, and run
that suite against its name (see :mod:`repro.core.backend`).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .backend import ExecutionBackend, get_backend

__all__ = ["Bitstream"]

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[Sequence[int]]]


def _as_bits(data: ArrayLike) -> np.ndarray:
    """Coerce ``data`` into a contiguous uint8 array of 0/1 values."""
    arr = np.asarray(data)
    if arr.dtype == np.bool_:
        arr = arr.astype(np.uint8)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"bit-stream data must be integer or boolean, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.uint8, copy=False)
    if arr.size and (arr.max() > 1):
        raise ValueError("bit-stream data must contain only 0s and 1s")
    return np.ascontiguousarray(arr)


class Bitstream:
    """An n-dimensional batch of stochastic bit-streams.

    Parameters
    ----------
    bits:
        Array-like of 0/1 values.  The last axis is the stream length ``N``;
        leading axes are batch dimensions.
    backend:
        Execution backend instance or registry name; defaults to the active
        backend (see :mod:`repro.core.backend`).

    Examples
    --------
    >>> bs = Bitstream([1, 0, 1, 0, 1])
    >>> bs.length
    5
    >>> float(bs.value())
    0.6
    """

    __slots__ = ("_backend", "_data", "_length", "_bits_cache")

    def __init__(self, bits: ArrayLike,
                 backend: Union[ExecutionBackend, str, None] = None):
        arr = _as_bits(bits)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        be = backend if isinstance(backend, ExecutionBackend) \
            else get_backend(backend)
        self._backend = be
        self._length = arr.shape[-1]
        self._data = be.pack(arr)
        self._bits_cache = self._data if be.stores_bits else None

    @classmethod
    def _from_payload(cls, data: np.ndarray, length: int,
                      backend: ExecutionBackend) -> "Bitstream":
        """Wrap an already-canonical backend payload (no validation)."""
        obj = cls.__new__(cls)
        obj._backend = backend
        obj._data = data
        obj._length = length
        obj._bits_cache = data if backend.stores_bits else None
        return obj

    def _payload_for(self, backend: ExecutionBackend) -> np.ndarray:
        """This stream's payload converted to ``backend``'s layout."""
        if self._backend is backend:
            return self._data
        return backend.pack(self.bits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape: Union[int, tuple],
              backend: Union[ExecutionBackend, str, None] = None) -> "Bitstream":
        """All-zero stream(s) representing probability 0."""
        shape = (shape,) if isinstance(shape, (int, np.integer)) else tuple(shape)
        be = backend if isinstance(backend, ExecutionBackend) \
            else get_backend(backend)
        return cls._from_payload(be.zeros(shape[:-1], shape[-1]), shape[-1], be)

    @classmethod
    def ones(cls, shape: Union[int, tuple],
             backend: Union[ExecutionBackend, str, None] = None) -> "Bitstream":
        """All-one stream(s) representing probability 1."""
        shape = (shape,) if isinstance(shape, (int, np.integer)) else tuple(shape)
        be = backend if isinstance(backend, ExecutionBackend) \
            else get_backend(backend)
        return cls._from_payload(be.ones(shape[:-1], shape[-1]), shape[-1], be)

    @classmethod
    def from_bool(cls, mask: np.ndarray,
                  backend: Union[ExecutionBackend, str, None] = None
                  ) -> "Bitstream":
        """Build directly from a boolean array (comparator fast path).

        SNG generation ends in a vectorised comparison; this constructor
        hands the boolean result straight to the backend, which packs it
        without materialising an intermediate uint8 copy.
        """
        arr = np.asarray(mask)
        if arr.dtype != np.bool_:
            arr = arr.astype(np.bool_)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        be = backend if isinstance(backend, ExecutionBackend) \
            else get_backend(backend)
        return cls._from_payload(be.from_bool(arr), arr.shape[-1], be)

    @classmethod
    def from_packed(cls, packed: np.ndarray, length: int,
                    backend: Union[ExecutionBackend, str, None] = None
                    ) -> "Bitstream":
        """Rebuild a stream batch from ``numpy.packbits`` output.

        Parameters
        ----------
        packed:
            Array produced by :meth:`packed`; last axis holds packed bytes
            (exactly ``ceil(length / 8)`` of them).
        length:
            Original (unpacked) stream length ``N``.

        Stray bits beyond ``length`` inside the final byte are ignored, so
        ``Bitstream.from_packed(bs.packed(), bs.length) == bs`` round-trips
        exactly for every length, including non-multiples of 8.
        """
        arr = np.ascontiguousarray(packed, dtype=np.uint8)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if length < 1:
            raise ValueError("length must be a positive integer")
        n_bytes = (length + 7) // 8
        if arr.shape[-1] != n_bytes:
            raise ValueError(
                f"packed last axis has {arr.shape[-1]} bytes, but length "
                f"{length} requires exactly {n_bytes}")
        be = backend if isinstance(backend, ExecutionBackend) \
            else get_backend(backend)
        return cls._from_payload(be.from_packed_bytes(arr, length), length, be)

    @classmethod
    def bernoulli(
        cls,
        p: Union[float, np.ndarray],
        length: int,
        rng: Union[np.random.Generator, int, None] = None,
    ) -> "Bitstream":
        """Draw i.i.d. Bernoulli streams with per-element probability ``p``.

        This is the idealised "software SNG": each bit is an independent coin
        flip.  ``p`` may be a scalar or an array; the result has shape
        ``p.shape + (length,)``.
        """
        gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        prob = np.asarray(p, dtype=np.float64)
        if np.any((prob < 0) | (prob > 1)):
            raise ValueError("probabilities must lie in [0, 1]")
        u = gen.random(prob.shape + (length,))
        return cls.from_bool(u < prob[..., None])

    # ------------------------------------------------------------------
    # Views and basic properties
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend storing and operating on this stream."""
        return self._backend

    @property
    def bits(self) -> np.ndarray:
        """Unpacked uint8 array of 0/1 values (last axis = stream).

        Under the ``unpacked`` backend this is the live payload; other
        backends unpack on first access and cache the result.  That cache is
        marked read-only — writing through it cannot reach the packed
        payload, so mutation raises instead of silently desynchronising.
        """
        if self._bits_cache is None:
            cache = self._backend.unpack(self._data, self._length)
            cache.setflags(write=False)
            self._bits_cache = cache
        return self._bits_cache

    @property
    def length(self) -> int:
        """Stream length ``N`` (size of the last axis)."""
        return self._length

    @property
    def batch_shape(self) -> tuple:
        """Shape of the batch dimensions (everything but the last axis)."""
        return self._data.shape[:-1]

    @property
    def shape(self) -> tuple:
        return self._data.shape[:-1] + (self._length,)

    def packed(self) -> np.ndarray:
        """Pack the stream into bytes along the last axis (MSB first)."""
        return self._backend.to_packed_bytes(self._data, self._length)

    def copy(self) -> "Bitstream":
        return Bitstream._from_payload(self._data.copy(), self._length,
                                       self._backend)

    # ------------------------------------------------------------------
    # Value recovery
    # ------------------------------------------------------------------
    def popcount(self) -> np.ndarray:
        """Number of '1's per stream (integer array of batch shape)."""
        return self._backend.popcount(self._data, self._length)

    def value(self) -> np.ndarray:
        """Estimated unipolar value = popcount / N, per stream."""
        return self._backend.mean(self._data, self._length)

    # Alias kept for symmetry with the backend protocol vocabulary.
    to_value = value

    def bipolar_value(self) -> np.ndarray:
        """Estimated bipolar value = 2*P(1) - 1, per stream."""
        return 2.0 * self.value() - 1.0

    # ------------------------------------------------------------------
    # Logic (the SC arithmetic primitives operate via the backend; these
    # dunder helpers make interactive exploration pleasant)
    # ------------------------------------------------------------------
    def _binary(self, other: "Bitstream", op: str) -> "Bitstream":
        if not isinstance(other, Bitstream):
            raise TypeError("expected a Bitstream operand")
        if other.length != self.length:
            raise ValueError(
                f"stream length mismatch: {self.length} vs {other.length}"
            )
        be = self._backend
        fn = getattr(be, op)
        return Bitstream._from_payload(
            fn(self._data, other._payload_for(be)), self._length, be)

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, "bitwise_and")

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, "bitwise_or")

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return self._binary(other, "bitwise_xor")

    def __invert__(self) -> "Bitstream":
        return Bitstream._from_payload(
            self._backend.bitwise_not(self._data, self._length),
            self._length, self._backend)

    @staticmethod
    def mux(sel: "Bitstream", a: "Bitstream", b: "Bitstream") -> "Bitstream":
        """Backend-routed 2-to-1 MUX: per bit, ``b`` where ``sel`` else ``a``."""
        if not (sel.length == a.length == b.length):
            raise ValueError("stream lengths differ")
        be = sel._backend
        data = be.mux2(sel._data, a._payload_for(be), b._payload_for(be),
                       sel._length)
        return Bitstream._from_payload(data, sel._length, be)

    @staticmethod
    def maj(a: "Bitstream", b: "Bitstream", c: "Bitstream") -> "Bitstream":
        """Backend-routed 3-input majority ``ab + ac + bc`` (bit-wise)."""
        if not (a.length == b.length == c.length):
            raise ValueError("stream lengths differ")
        be = a._backend
        data = be.maj3(a._data, b._payload_for(be), c._payload_for(be))
        return Bitstream._from_payload(data, a._length, be)

    # ------------------------------------------------------------------
    # Structural ops
    # ------------------------------------------------------------------
    def __getitem__(self, idx) -> "Bitstream":
        return Bitstream(self.bits[idx], backend=self._backend)

    def roll(self, shift: int) -> "Bitstream":
        """Circularly rotate every stream by ``shift`` bit positions.

        Rotation is the classic zero-cost decorrelation trick: it preserves
        the encoded value exactly while destroying bit-level alignment with
        other streams generated from the same random source.
        """
        return Bitstream._from_payload(
            self._backend.roll(self._data, shift, self._length),
            self._length, self._backend)

    def reshape(self, *batch_shape: int) -> "Bitstream":
        """Reshape batch dimensions, keeping the stream axis untouched."""
        return Bitstream._from_payload(
            self._backend.batch_reshape(self._data, tuple(batch_shape),
                                        self._length),
            self._length, self._backend)

    def concat(self, other: "Bitstream") -> "Bitstream":
        """Concatenate along the stream axis (doubling resolution)."""
        if self.batch_shape != other.batch_shape:
            raise ValueError("batch shapes must match for concat")
        return Bitstream(np.concatenate([self.bits, other.bits], axis=-1),
                         backend=self._backend)

    @staticmethod
    def stack(streams: Iterable["Bitstream"]) -> "Bitstream":
        """Stack equal-length streams into a new leading batch axis."""
        group = list(streams)
        if not group:
            raise ValueError("cannot stack zero streams")
        first = group[0]
        be = first._backend
        if all(s._backend is be and s.length == first.length for s in group):
            return Bitstream._from_payload(
                be.batch_stack([s._data for s in group]), first.length, be)
        mats = [s.bits for s in group]
        return Bitstream(np.stack(mats, axis=0), backend=be)

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        if self.shape != other.shape:
            return False
        if self._backend is other._backend:
            return bool(np.array_equal(self._data, other._data))
        return bool(np.array_equal(self.bits, other.bits))

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Bitstream is not hashable")

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:
        if self._data.ndim == 1 and self.length <= 32:
            body = "".join(str(int(b)) for b in self.bits)
            return f"Bitstream('{body}', value={self.value():.4f})"
        return (
            f"Bitstream(batch={self.batch_shape}, N={self.length}, "
            f"mean_value={float(np.mean(self.value())):.4f})"
        )
