"""Random-number sources for stochastic number generation.

An SC bit-stream generator compares an n-bit binary operand against a fresh
n-bit random number each cycle.  The quality of those random numbers
dominates SC accuracy (Table I of the paper), so this module implements every
source the paper evaluates:

* :class:`SoftwareRng` — a high-quality uniform PRNG (the paper's
  "Software - MATLAB" baseline; we use numpy's PCG64, which is statistically
  equivalent for this purpose).
* :class:`Lfsr` — a Fibonacci linear-feedback shift register, the classic
  CMOS pseudo-RNG.  The paper's footnote names the polynomial
  ``x^8 + x^5 + x^3 + 1``; that polynomial factors as ``(x^5+1)(x^3+1)`` and
  is *not* primitive, so the library defaults to the primitive
  ``x^8 + x^4 + x^3 + x^2 + 1`` (period 255) and exposes
  :meth:`Lfsr.is_maximal` so callers can check any candidate.
* :class:`SobolRng` — a quasi-random (low-discrepancy) source.  Dimension 0
  is the van der Corput radical-inverse sequence in base 2 (the classic
  1-D Sobol sequence); higher dimensions use Joe–Kuo direction numbers.
* :class:`CounterRng` — a deterministic ramp, useful for unary streams and
  as a degenerate baseline.

All sources share the :class:`RandomSource` interface: they produce unsigned
integers of a configurable bit width, vectorised over numpy arrays.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "RandomSource",
    "SoftwareRng",
    "Lfsr",
    "SobolRng",
    "P2lsgRng",
    "CounterRng",
    "PRIMITIVE_POLY_8",
    "PAPER_POLY_8",
    "lfsr_period",
]

# Polynomial given in the paper's Table I footnote: x^8 + x^5 + x^3 + 1.
# Encoded as a tap mask over bit positions 1..degree (bit i set => tap x^i).
PAPER_POLY_8 = (8, 5, 3)
# A genuinely primitive degree-8 polynomial: x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY_8 = (8, 4, 3, 2)


class RandomSource:
    """Interface for n-bit random-number sources.

    Subclasses implement :meth:`integers`, returning unsigned integers in
    ``[0, 2**bits)``.  Sources are stateful: consecutive calls continue the
    underlying sequence, exactly like a hardware RNG free-running across
    stream bits.
    """

    def __init__(self, bits: int):
        if bits < 1 or bits > 32:
            raise ValueError("bits must be in [1, 32]")
        self.bits = bits

    @property
    def max_value(self) -> int:
        """Exclusive upper bound of generated values (``2**bits``)."""
        return 1 << self.bits

    def integers(self, count: int) -> np.ndarray:
        """Return the next ``count`` values as an int64 array."""
        raise NotImplementedError

    def uniforms(self, count: int) -> np.ndarray:
        """Return the next ``count`` values scaled to ``[0, 1)``."""
        return self.integers(count) / float(self.max_value)

    def reset(self) -> None:
        """Rewind the source to its initial state."""
        raise NotImplementedError


class SoftwareRng(RandomSource):
    """High-quality software PRNG (paper's MATLAB ``rand`` baseline)."""

    def __init__(self, bits: int = 8, seed: Optional[int] = None):
        super().__init__(bits)
        self._seed = seed
        self._gen = np.random.default_rng(seed)

    def integers(self, count: int) -> np.ndarray:
        return self._gen.integers(0, self.max_value, size=count, dtype=np.int64)

    def reset(self) -> None:
        self._gen = np.random.default_rng(self._seed)


def _taps_to_mask(taps: Sequence[int], degree: int) -> int:
    mask = 0
    for t in taps:
        if t < 1 or t > degree:
            raise ValueError(f"tap {t} outside [1, {degree}]")
        mask |= 1 << (t - 1)
    return mask


def lfsr_period(taps: Sequence[int], degree: int, seed: int = 1) -> int:
    """Brute-force the cycle length of an LFSR from ``seed``.

    A maximal-length register visits all ``2**degree - 1`` nonzero states.
    """
    mask = _taps_to_mask(taps, degree)
    state = seed & ((1 << degree) - 1)
    if state == 0:
        raise ValueError("LFSR seed must be nonzero")
    start = state
    period = 0
    limit = 1 << degree
    while True:
        fb = bin(state & mask).count("1") & 1
        state = ((state << 1) | fb) & ((1 << degree) - 1)
        period += 1
        if state == start or period > limit:
            break
    return period


class Lfsr(RandomSource):
    """Fibonacci LFSR producing ``degree``-bit pseudo-random integers.

    Each call shifts the register once per output value and emits the full
    register contents, mirroring the common SC-hardware arrangement where the
    LFSR state feeds the comparator directly.

    Parameters
    ----------
    taps:
        Exponents of the feedback polynomial (excluding the constant term),
        e.g. ``(8, 4, 3, 2)`` for ``x^8 + x^4 + x^3 + x^2 + 1``.
    degree:
        Register width in bits; defaults to ``max(taps)``.
    seed:
        Initial nonzero register state.
    """

    def __init__(
        self,
        taps: Sequence[int] = PRIMITIVE_POLY_8,
        degree: Optional[int] = None,
        seed: int = 0xACE1 & 0xFF,
    ):
        deg = degree if degree is not None else max(taps)
        super().__init__(deg)
        self.taps = tuple(sorted(taps, reverse=True))
        self._mask = _taps_to_mask(taps, deg)
        if seed == 0:
            raise ValueError("LFSR seed must be nonzero")
        self._seed = seed & (self.max_value - 1)
        if self._seed == 0:
            self._seed = 1
        # Precompute one full cycle; generation then tiles the cycle, which
        # is exactly what the free-running hardware register produces.
        self._cycle = self._compute_cycle()
        self._pos = 0

    def _compute_cycle(self) -> np.ndarray:
        states: List[int] = []
        state = self._seed
        limit = self.max_value
        for _ in range(limit):
            states.append(state)
            fb = bin(state & self._mask).count("1") & 1
            state = ((state << 1) | fb) & (self.max_value - 1)
            if state == self._seed:
                break
        return np.asarray(states, dtype=np.int64)

    @property
    def period(self) -> int:
        """Cycle length from the configured seed."""
        return int(self._cycle.size)

    def is_maximal(self) -> bool:
        """True when the register visits all ``2**degree - 1`` nonzero states."""
        return self.period == self.max_value - 1

    def integers(self, count: int) -> np.ndarray:
        idx = (self._pos + np.arange(count, dtype=np.int64)) % self.period
        self._pos = int((self._pos + count) % self.period)
        return self._cycle[idx]

    def reset(self) -> None:
        self._pos = 0


def _van_der_corput(indices: np.ndarray, bits: int) -> np.ndarray:
    """Radical-inverse (bit-reversal) of ``indices`` within ``bits`` bits."""
    idx = indices.astype(np.uint64) & np.uint64((1 << bits) - 1)
    out = np.zeros_like(idx)
    for b in range(bits):
        out = (out << np.uint64(1)) | ((idx >> np.uint64(b)) & np.uint64(1))
    return out.astype(np.int64)


# Joe-Kuo "new-joe-kuo-6" direction-number seeds for Sobol dimensions 1..8
# (dimension 0 is van der Corput and needs no table).  Each entry is
# (polynomial degree s, polynomial coefficient a, initial m values).
_JOE_KUO: Sequence = (
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
    (5, 4, (1, 1, 5, 5, 5)),
)


def _sobol_direction_numbers(dim: int, bits: int) -> np.ndarray:
    """Direction numbers ``v_k`` (as integers scaled to ``bits``) for ``dim``."""
    if dim == 0:
        return np.asarray([1 << (bits - 1 - k) for k in range(bits)], dtype=np.int64)
    if dim - 1 >= len(_JOE_KUO):
        raise ValueError(
            f"Sobol dimension {dim} unsupported (have {len(_JOE_KUO) + 1})"
        )
    s, a, m_init = _JOE_KUO[dim - 1]
    m = list(m_init)
    for k in range(s, bits):
        new = m[k - s] ^ (m[k - s] << s)
        for i in range(1, s):
            if (a >> (s - 1 - i)) & 1:
                new ^= m[k - i] << i
        m.append(new)
    v = [(m[k] << (bits - 1 - k)) for k in range(bits)]
    return np.asarray(v, dtype=np.int64)


class SobolRng(RandomSource):
    """Quasi-random Sobol sequence source (paper's 8-bit QRNG).

    The Sobol sequence stratifies ``[0, 1)`` so that the first ``N`` points
    hit every length-``1/N`` interval exactly once when ``N`` is a power of
    two — that is why the QRNG column in Table I collapses to (almost pure)
    quantisation error.

    Parameters
    ----------
    bits:
        Output precision; 8 in the paper.
    dim:
        Sobol dimension (0 = van der Corput).  Independent operands should
        use distinct dimensions, mirroring parallel Sobol hardware.
    scramble_seed:
        Optional digital-shift scrambling (XOR with a fixed random word),
        used to decorrelate repeated use of the same dimension.
    """

    def __init__(self, bits: int = 8, dim: int = 0, scramble_seed: Optional[int] = None):
        super().__init__(bits)
        self.dim = dim
        self._v = _sobol_direction_numbers(dim, bits)
        self._index = 0
        if scramble_seed is None:
            self._shift = 0
        else:
            self._shift = int(
                np.random.default_rng(scramble_seed).integers(0, self.max_value)
            )

    def _point(self, indices: np.ndarray) -> np.ndarray:
        # Gray-code construction: x_i = XOR of direction numbers at set bits
        # of gray(i).
        gray = indices ^ (indices >> 1)
        out = np.zeros_like(indices)
        for k in range(self.bits):
            bit_set = (gray >> k) & 1
            out = out ^ (bit_set * self._v[k])
        return (out ^ self._shift).astype(np.int64)

    def integers(self, count: int) -> np.ndarray:
        idx = self._index + np.arange(count, dtype=np.int64)
        self._index += count
        # Sequence repeats with period 2**bits; wrap indices like hardware
        # counters do.
        return self._point(idx % self.max_value)

    def reset(self) -> None:
        self._index = 0


class P2lsgRng(RandomSource):
    """Powers-of-2 low-discrepancy sequence generator (P2LSG).

    A hardware-cheap quasi-random source (Moghadam et al., ASP-DAC'24 — the
    paper's reference [27]): instead of Sobol direction-number logic, the
    output is the bit-reversed counter XOR-ed with a per-instance constant
    offset, giving a van-der-Corput-class low-discrepancy sequence from a
    counter and wires only.

    Distinct ``offset`` values play the role of Sobol dimensions for
    independent operands.
    """

    def __init__(self, bits: int = 8, offset: int = 0):
        super().__init__(bits)
        self.offset = offset & (self.max_value - 1)
        self._index = 0

    def integers(self, count: int) -> np.ndarray:
        idx = (self._index + np.arange(count, dtype=np.int64)) % self.max_value
        self._index = int((self._index + count) % self.max_value)
        return _van_der_corput(idx, self.bits) ^ self.offset

    def reset(self) -> None:
        self._index = 0


class CounterRng(RandomSource):
    """Deterministic ramp 0, 1, 2, ... (mod 2**bits).

    Comparing against a ramp yields *unary* (thermometer-like) streams:
    deterministic, maximally correlated encodings used by unary-coding
    accelerators and handy as a worst-case correlation baseline.
    """

    def __init__(self, bits: int = 8, start: int = 0):
        super().__init__(bits)
        self._start = start % self.max_value
        self._pos = self._start

    def integers(self, count: int) -> np.ndarray:
        vals = (self._pos + np.arange(count, dtype=np.int64)) % self.max_value
        self._pos = int((self._pos + count) % self.max_value)
        return vals

    def reset(self) -> None:
        self._pos = self._start
