"""Deterministic stochastic computing (Najafi et al., TVLSI'19 — ref [9]).

The paper's related work notes that deterministic SC removes random
fluctuation entirely: operands are encoded as *unary* streams and the
pairing between operand bits is made exhaustive, so AND-based
multiplication, XOR subtraction etc. become exact — at the price of stream
lengths that grow as the product of operand resolutions.

Three classic pairing schemes are implemented; all take unipolar values and
return :class:`~repro.core.bitstream.Bitstream` pairs whose bit-level
pairing enumerates the full cross product:

* **relatively-prime lengths** — operand A uses length ``la``, operand B
  ``lb`` with ``gcd(la, lb) = 1``; repeating both to ``la * lb`` bits pairs
  every A-bit with every B-bit exactly once;
* **rotation** — B's unary stream advances (rotates) by one position after
  every ``la`` bits;
* **clock division** — B holds each bit for ``la`` cycles (B is "clock
  divided" by A's length).

These generators let the library check SC arithmetic against exact results
and provide the deterministic baseline some CIM designs (e.g. exact
in-memory multiplication, Riahi Alam et al.) build on.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .bitstream import Bitstream

__all__ = [
    "unary_bits",
    "relatively_prime_pair",
    "rotation_pair",
    "clock_division_pair",
    "deterministic_multiply",
]


def unary_bits(value: float, length: int) -> np.ndarray:
    """First-``k``-ones unary pattern for ``value`` at ``length`` bits."""
    if not 0.0 <= value <= 1.0:
        raise ValueError("value must lie in [0, 1]")
    k = int(round(value * length))
    out = np.zeros(length, dtype=np.uint8)
    out[:k] = 1
    return out


def relatively_prime_pair(x: float, y: float, len_x: int,
                          len_y: int) -> Tuple[Bitstream, Bitstream]:
    """Exhaustive pairing via relatively-prime stream lengths.

    Both streams are tiled to ``len_x * len_y`` bits; because the lengths
    are coprime, bit ``i`` of the result pairs position ``i mod len_x`` of x
    with ``i mod len_y`` of y, covering the full cross product exactly once.
    """
    if math.gcd(len_x, len_y) != 1:
        raise ValueError(f"lengths must be coprime, got {len_x}, {len_y}")
    total = len_x * len_y
    ux = unary_bits(x, len_x)
    uy = unary_bits(y, len_y)
    sx = np.tile(ux, len_y)
    sy = np.tile(uy, len_x)
    assert sx.size == sy.size == total
    return Bitstream(sx), Bitstream(sy)


def rotation_pair(x: float, y: float,
                  length: int) -> Tuple[Bitstream, Bitstream]:
    """Exhaustive pairing via stream rotation.

    x repeats its unary pattern ``length`` times; y's pattern rotates by one
    position per repetition, so every (i, j) offset combination occurs.
    """
    ux = unary_bits(x, length)
    uy = unary_bits(y, length)
    sx = np.tile(ux, length)
    sy = np.concatenate([np.roll(uy, -r) for r in range(length)])
    return Bitstream(sx), Bitstream(sy)


def clock_division_pair(x: float, y: float,
                        length: int) -> Tuple[Bitstream, Bitstream]:
    """Exhaustive pairing via clock division.

    x repeats per-bit; y holds each of its bits for a full repetition of x.
    """
    ux = unary_bits(x, length)
    uy = unary_bits(y, length)
    sx = np.tile(ux, length)
    sy = np.repeat(uy, length)
    return Bitstream(sx), Bitstream(sy)


def deterministic_multiply(x: float, y: float, length: int = 16,
                           scheme: str = "rotation") -> float:
    """Exact unipolar multiplication on deterministic streams.

    The AND of any exhaustively paired encoding computes
    ``round(x * L) / L * round(y * L) / L`` with zero random error.
    """
    if scheme == "rotation":
        a, b = rotation_pair(x, y, length)
    elif scheme == "clock_division":
        a, b = clock_division_pair(x, y, length)
    elif scheme == "relatively_prime":
        b_len = length + 1
        if math.gcd(length, b_len) != 1:   # pragma: no cover - always coprime
            b_len += 1
        a, b = relatively_prime_pair(x, y, length, b_len)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return float((a & b).value())
