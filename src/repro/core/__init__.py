"""SC core: bit-streams, RNG sources, SNGs, arithmetic, conversion.

This package contains the technology-independent half of the library — the
stochastic-computing semantics that both the CMOS baseline and the in-ReRAM
engine implement.
"""

from .backend import (
    ExecutionBackend,
    PackedBackend,
    UnpackedBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .bitstream import Bitstream
from .streambatch import StreamBatch
from .encoding import (
    binary_to_prob,
    bipolar_to_prob,
    prob_to_binary,
    prob_to_bipolar,
    prob_to_unipolar,
    quantize,
    unipolar_to_prob,
)
from .rng import (
    CounterRng,
    Lfsr,
    P2lsgRng,
    PAPER_POLY_8,
    PRIMITIVE_POLY_8,
    RandomSource,
    SobolRng,
    SoftwareRng,
    lfsr_period,
)
from .sng import (
    BiasedBitSource,
    BitSource,
    ComparatorSng,
    IdealBitSource,
    SegmentSng,
    unary_stream,
)
from .correlation import correlation_matrix, decorrelate, overlap_probability, scc
from .conversion import CounterConverter, ExactConverter, QuantizingConverter
from .accuracy import OP_SPECS, OpSpec, op_mse, sng_mse
from .deterministic import (
    clock_division_pair,
    deterministic_multiply,
    relatively_prime_pair,
    rotation_pair,
    unary_bits,
)
from .polynomial import (
    bernstein_eval_exact,
    bernstein_eval_sc,
    bernstein_from_power,
)
from .flow import FlowResult, ScFlow
from . import ops

__all__ = [
    "ExecutionBackend", "PackedBackend", "UnpackedBackend",
    "available_backends", "get_backend", "register_backend", "set_backend",
    "use_backend",
    "Bitstream",
    "StreamBatch",
    "binary_to_prob", "bipolar_to_prob", "prob_to_binary", "prob_to_bipolar",
    "prob_to_unipolar", "quantize", "unipolar_to_prob",
    "CounterRng", "Lfsr", "P2lsgRng", "PAPER_POLY_8", "PRIMITIVE_POLY_8", "RandomSource",
    "SobolRng", "SoftwareRng", "lfsr_period",
    "BiasedBitSource", "BitSource", "ComparatorSng", "IdealBitSource",
    "SegmentSng", "unary_stream",
    "correlation_matrix", "decorrelate", "overlap_probability", "scc",
    "CounterConverter", "ExactConverter", "QuantizingConverter",
    "OP_SPECS", "OpSpec", "op_mse", "sng_mse",
    "clock_division_pair", "deterministic_multiply",
    "relatively_prime_pair", "rotation_pair", "unary_bits",
    "bernstein_eval_exact", "bernstein_eval_sc", "bernstein_from_power",
    "FlowResult", "ScFlow",
    "ops",
]
