"""Value encodings for stochastic computing.

Two standard encodings map real values onto bit-stream probabilities:

* **unipolar** — ``x in [0, 1]`` maps directly to ``P(1) = x``;
* **bipolar** — ``x in [-1, 1]`` maps to ``P(1) = (x + 1) / 2``.

The paper operates on 8-bit image data in the unipolar domain, so this module
also provides the fixed-point quantisation helpers used throughout the
pipeline (images are ``uint8``; probabilities are ``pixel / 255`` or
``pixel / 256`` depending on the comparator convention).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "unipolar_to_prob",
    "prob_to_unipolar",
    "bipolar_to_prob",
    "prob_to_bipolar",
    "quantize",
    "binary_to_prob",
    "prob_to_binary",
]

Number = Union[float, np.ndarray]


def _check_range(x: np.ndarray, lo: float, hi: float, name: str) -> None:
    if np.any((x < lo) | (x > hi)):
        raise ValueError(f"{name} values must lie in [{lo}, {hi}]")


def unipolar_to_prob(x: Number) -> np.ndarray:
    """Map a unipolar value ``x in [0, 1]`` to a stream probability."""
    arr = np.asarray(x, dtype=np.float64)
    _check_range(arr, 0.0, 1.0, "unipolar")
    return arr


def prob_to_unipolar(p: Number) -> np.ndarray:
    """Inverse of :func:`unipolar_to_prob` (identity with validation)."""
    arr = np.asarray(p, dtype=np.float64)
    _check_range(arr, 0.0, 1.0, "probability")
    return arr


def bipolar_to_prob(x: Number) -> np.ndarray:
    """Map a bipolar value ``x in [-1, 1]`` to ``P(1) = (x + 1) / 2``."""
    arr = np.asarray(x, dtype=np.float64)
    _check_range(arr, -1.0, 1.0, "bipolar")
    return (arr + 1.0) / 2.0


def prob_to_bipolar(p: Number) -> np.ndarray:
    """Map a stream probability back to a bipolar value ``2p - 1``."""
    arr = np.asarray(p, dtype=np.float64)
    _check_range(arr, 0.0, 1.0, "probability")
    return 2.0 * arr - 1.0


def quantize(x: Number, bits: int) -> np.ndarray:
    """Quantise ``x in [0, 1]`` to ``bits``-bit fixed point (floor).

    Returns integer codes in ``[0, 2**bits - 1]``.  This mirrors what a
    hardware SNG sees: the binary operand register holds ``floor(x * 2^n)``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    arr = np.asarray(x, dtype=np.float64)
    _check_range(arr, 0.0, 1.0, "value")
    scale = float(1 << bits)
    codes = np.floor(arr * scale).astype(np.int64)
    return np.minimum(codes, (1 << bits) - 1)


def binary_to_prob(code: Number, bits: int) -> np.ndarray:
    """Map an n-bit integer code to the probability ``code / 2^n``."""
    arr = np.asarray(code, dtype=np.float64)
    scale = float(1 << bits)
    out = arr / scale
    _check_range(out, 0.0, 1.0, "code/2^n")
    return out


def prob_to_binary(p: Number, bits: int) -> np.ndarray:
    """Round a probability to the nearest representable n-bit code."""
    arr = np.asarray(p, dtype=np.float64)
    _check_range(arr, 0.0, 1.0, "probability")
    scale = float(1 << bits)
    return np.clip(np.rint(arr * scale), 0, (1 << bits) - 1).astype(np.int64)
