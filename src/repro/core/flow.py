"""End-to-end SC flow orchestration.

An :class:`ScFlow` ties together the three SC stages — SNG, stochastic
computation, S-to-B conversion — behind one call, with correlation groups
handled declaratively.  The software backend below executes the flow on
numpy; the in-memory backend (:class:`repro.imsc.engine.InMemorySCEngine`)
implements the same contract with scouting-logic cost accounting and fault
injection, so applications can switch substrates without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from .bitstream import Bitstream
from .conversion import ExactConverter
from .sng import ComparatorSng

__all__ = ["ScFlow", "FlowResult"]


@dataclass
class FlowResult:
    """Output of one flow execution."""

    value: np.ndarray
    streams: Dict[str, Bitstream] = field(default_factory=dict)
    output_stream: Optional[Bitstream] = None


class ScFlow:
    """Declarative SC pipeline: inputs -> compute -> conversion.

    Parameters
    ----------
    compute:
        Function mapping a dict of named input :class:`Bitstream` objects to
        the output stream.
    correlated_groups:
        Iterable of name groups whose streams must share the RNG (SCC = +1).
        Names not mentioned get independent streams.
    sng:
        Stream generator (defaults to a software comparator SNG).
    converter:
        S-to-B converter (defaults to exact popcount).

    Examples
    --------
    >>> from repro.core import ops
    >>> flow = ScFlow(lambda s: ops.mul_and(s["a"], s["b"]))
    >>> res = flow.run({"a": 0.5, "b": 0.5}, length=1024)
    >>> abs(float(res.value) - 0.25) < 0.1
    True
    """

    def __init__(
        self,
        compute: Callable[[Dict[str, Bitstream]], Bitstream],
        correlated_groups: Iterable[Sequence[str]] = (),
        sng=None,
        converter=None,
    ):
        self.compute = compute
        self.correlated_groups = [tuple(g) for g in correlated_groups]
        seen: set = set()
        for group in self.correlated_groups:
            for name in group:
                if name in seen:
                    raise ValueError(f"input {name!r} in two correlated groups")
                seen.add(name)
        self.sng = sng if sng is not None else ComparatorSng()
        self.converter = converter if converter is not None else ExactConverter()

    def _generate_inputs(self, values: Dict[str, Union[float, np.ndarray]],
                         length: int) -> Dict[str, Bitstream]:
        streams: Dict[str, Bitstream] = {}
        grouped = {n for g in self.correlated_groups for n in g}
        for group in self.correlated_groups:
            members = [n for n in group if n in values]
            if len(members) == 2:
                a, b = members
                sa, sb = self.sng.generate_pair(
                    values[a], values[b], length, correlated=True)
                streams[a], streams[b] = sa, sb
            else:
                # Larger groups share a single RNG draw across members.
                for name in members:
                    streams[name] = self.sng.generate_correlated(
                        values[name], length)
        for name, val in values.items():
            if name not in grouped:
                streams[name] = self.sng.generate(val, length)
        return streams

    def run(self, values: Dict[str, Union[float, np.ndarray]], length: int,
            keep_streams: bool = False) -> FlowResult:
        """Execute the flow at stream length ``length``.

        ``values`` maps input names to probabilities (scalars or arrays; all
        arrays must share a batch shape).
        """
        streams = self._generate_inputs(values, length)
        out = self.compute(streams)
        value = self.converter.convert(out)
        return FlowResult(
            value=value,
            streams=streams if keep_streams else {},
            output_stream=out if keep_streams else None,
        )
