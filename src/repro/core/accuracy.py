"""Monte-Carlo accuracy harness for SNGs and SC operations.

Reproduces the methodology behind Tables I and II of the paper: draw operand
values from a uniform distribution, run the SC flow at a given stream length,
and report the mean squared error (in percent, i.e. ``MSE x 100``) between
the recovered and the exact result.

The harness is chunked so that million-sample sweeps at N = 512 stay within
a modest memory budget.

Sharded execution (``jobs``)
----------------------------
:func:`op_mse` and :func:`sng_mse` can fan their Monte-Carlo chunks over
the tile executor's process pool (:func:`repro.apps.executor.pool_map`).
Because the classic path threads one stateful generator through the chunks
sequentially, the sharded path instead gives every chunk a deterministic
child of ``SeedSequence(seed)`` and builds a *fresh* generator from a
caller-supplied picklable factory — pass a callable
``factory(seed_sequence) -> sng`` as the ``sng`` argument
(:class:`repro.imsc.engine.EngineFactory` wraps the in-memory engine this
way, so faulty sweeps — including ``fault_sampling='sparse'`` — shard
too).  Chunk results are reduced in chunk order, so ``jobs=1`` and
``jobs=N`` are bit-identical (the regression suite asserts this); both
differ from the legacy shared-object path, which remains untouched for the
pinned Table I/II values.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from .backend import get_backend, set_backend
from .bitstream import Bitstream
from . import ops

__all__ = [
    "sng_mse",
    "OpSpec",
    "OP_SPECS",
    "op_mse",
]

SngLike = object  # duck-typed: .generate / .generate_pair


def _sng_chunk_sq_err(sng, gen: np.random.Generator, n: int,
                      length: int) -> float:
    """Sum of squared generation errors over one operand chunk."""
    x = gen.random(n)
    streams = sng.generate(x, length)
    err = streams.value() - x
    return float(np.sum(err * err))


def _sng_mse_chunk(task) -> float:
    """Worker for the sharded path: one chunk, fresh deterministic state."""
    backend_name, factory, length, n, child = task
    set_backend(backend_name)
    operand_seed, sng_seed = child.spawn(2)
    gen = np.random.default_rng(operand_seed)
    sng = factory(sng_seed)
    return _sng_chunk_sq_err(sng, gen, n, length)


def _sng_mse_sharded(factory, length: int, samples: int,
                     seed: Optional[int], chunk: int, jobs: int,
                     pool) -> float:
    n_chunks = ceil(samples / chunk)
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    sizes = [min(chunk, samples - i * chunk) for i in range(n_chunks)]
    backend_name = get_backend().name
    tasks = [(backend_name, factory, length, n, child)
             for n, child in zip(sizes, children)]
    from ..apps.executor import pool_map  # deferred: core must not need apps
    totals = pool_map(_sng_mse_chunk, tasks, jobs, pool=pool)
    return float(sum(totals)) / samples * 100.0


def sng_mse(sng, length: int, samples: int = 100_000,
            seed: Optional[int] = 0, chunk: int = 8192,
            jobs: int = 1, *, pool=None) -> float:
    """MSE(%) of bit-stream generation for a given SNG (Table I cell).

    Draws ``samples`` operand values uniformly from ``[0, 1]``, generates one
    stream of ``length`` bits per value, recovers the value by popcount and
    returns ``mean((recovered - exact)^2) * 100``.

    Like :func:`op_mse`, ``sng`` may be a picklable factory callable
    ``factory(seed_sequence) -> sng`` instead of a generator object, in
    which case the chunks get deterministic per-chunk ``SeedSequence``
    children and may fan out over ``jobs`` worker processes; the result is
    independent of ``jobs`` (but differs from the legacy shared-object
    path, which stays untouched for the pinned Table I values).  ``pool``
    runs the chunks over a resident :class:`repro.serve.pool.WorkerPool`
    instead of a one-shot pool — a sweep of many cells should create one
    pool and share it (the table runners do).
    """
    if callable(sng) and not hasattr(sng, "generate"):
        return _sng_mse_sharded(sng, length, samples, seed, chunk, jobs,
                                pool)
    if jobs != 1 or pool is not None:
        raise ValueError("sng_mse(jobs=N / pool=...) requires an sng "
                         "*factory* (callable(seed_sequence) -> sng); a "
                         "shared sng object cannot be sharded "
                         "deterministically")
    gen = np.random.default_rng(seed)
    total = 0.0
    done = 0
    while done < samples:
        n = min(chunk, samples - done)
        total += _sng_chunk_sq_err(sng, gen, n, length)
        done += n
    return total / samples * 100.0


@dataclass(frozen=True)
class OpSpec:
    """Recipe for measuring one SC operation's accuracy (Table II row).

    Attributes
    ----------
    name:
        Row label as used in the paper.
    correlated:
        Whether the operand pair must share the RNG (SCC = +1).
    exact:
        Ground-truth function of the operand probabilities.
    compute:
        Function ``(x_stream, y_stream, aux_streams) -> Bitstream``.
    needs_half_stream:
        Whether an auxiliary independent 0.5 stream is required (MAJ/MUX).
    domain:
        Operand-sampling transform applied to uniform draws ``(u, v)``.
    """

    name: str
    correlated: bool
    exact: Callable[[np.ndarray, np.ndarray], np.ndarray]
    compute: Callable[[Bitstream, Bitstream, Optional[Bitstream]], Bitstream]
    needs_half_stream: bool = False
    domain: Callable[[np.ndarray, np.ndarray],
                     Tuple[np.ndarray, np.ndarray]] = staticmethod(
                         lambda u, v: (u, v))


def _div_domain(u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    # CORDIV needs x <= y and a divisor bounded away from zero.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    hi = np.maximum(hi, 0.05)
    lo = np.minimum(lo, hi)
    return lo, hi


OP_SPECS: Dict[str, OpSpec] = {
    "multiplication": OpSpec(
        name="Multiplication",
        correlated=False,
        exact=lambda x, y: x * y,
        compute=lambda sx, sy, aux: ops.mul_and(sx, sy),
    ),
    "scaled_addition": OpSpec(
        name="Scaled Addition",
        correlated=False,
        exact=lambda x, y: (x + y) / 2.0,
        compute=lambda sx, sy, aux: ops.scaled_add_maj(sx, sy, aux),
        needs_half_stream=True,
    ),
    "scaled_addition_mux": OpSpec(
        name="Scaled Addition (MUX)",
        correlated=False,
        exact=lambda x, y: (x + y) / 2.0,
        compute=lambda sx, sy, aux: ops.scaled_add_mux(sx, sy, aux),
        needs_half_stream=True,
    ),
    "approx_addition": OpSpec(
        name="Approx. Addition",
        correlated=False,
        exact=lambda x, y: x + y,
        compute=lambda sx, sy, aux: ops.add_or(sx, sy),
        domain=staticmethod(lambda u, v: (u * 0.5, v * 0.5)),
    ),
    "abs_subtraction": OpSpec(
        name="Abs. Subtraction",
        correlated=True,
        exact=lambda x, y: np.abs(x - y),
        compute=lambda sx, sy, aux: ops.sub_xor(sx, sy),
    ),
    "division": OpSpec(
        name="Division",
        correlated=True,
        exact=lambda x, y: x / y,
        compute=lambda sx, sy, aux: ops.div_cordiv(sx, sy),
        domain=staticmethod(_div_domain),
    ),
    "minimum": OpSpec(
        name="Minimum",
        correlated=True,
        exact=lambda x, y: np.minimum(x, y),
        compute=lambda sx, sy, aux: ops.min_and(sx, sy),
    ),
    "maximum": OpSpec(
        name="Maximum",
        correlated=True,
        exact=lambda x, y: np.maximum(x, y),
        compute=lambda sx, sy, aux: ops.max_or(sx, sy),
    ),
}


def _op_chunk_sq_err(spec: OpSpec, sng, gen: np.random.Generator,
                     n: int, length: int) -> float:
    """Sum of squared recovery errors over one operand chunk."""
    u = gen.random(n)
    v = gen.random(n)
    x, y = spec.domain(u, v)
    sx, sy = sng.generate_pair(x, y, length, correlated=spec.correlated)
    aux = None
    if spec.needs_half_stream:
        aux = sng.generate(np.full(n, 0.5), length)
    out = spec.compute(sx, sy, aux)
    err = out.value() - spec.exact(x, y)
    return float(np.sum(err * err))


def _op_mse_chunk(task) -> float:
    """Worker for the sharded path: one chunk, fresh deterministic state."""
    backend_name, op_key, factory, length, n, child = task
    set_backend(backend_name)
    spec = OP_SPECS[op_key]
    operand_seed, sng_seed = child.spawn(2)
    gen = np.random.default_rng(operand_seed)
    sng = factory(sng_seed)
    return _op_chunk_sq_err(spec, sng, gen, n, length)


def _op_mse_sharded(op: Union[str, OpSpec], factory, length: int,
                    samples: int, seed: Optional[int], chunk: int,
                    jobs: int, pool) -> float:
    if not isinstance(op, str):
        raise ValueError("the sharded op_mse path needs an OP_SPECS key "
                         "(workers resolve the spec by name)")
    n_chunks = ceil(samples / chunk)
    children = np.random.SeedSequence(seed).spawn(n_chunks)
    sizes = [min(chunk, samples - i * chunk) for i in range(n_chunks)]
    backend_name = get_backend().name
    tasks = [(backend_name, op, factory, length, n, child)
             for n, child in zip(sizes, children)]
    from ..apps.executor import pool_map  # deferred: core must not need apps
    totals = pool_map(_op_mse_chunk, tasks, jobs, pool=pool)
    return float(sum(totals)) / samples * 100.0


def op_mse(op: Union[str, OpSpec], sng, length: int, samples: int = 50_000,
           seed: Optional[int] = 0, chunk: int = 4096,
           jobs: int = 1, *, pool=None) -> float:
    """MSE(%) of one SC arithmetic operation (Table II cell).

    Parameters
    ----------
    op:
        Key into :data:`OP_SPECS` or an :class:`OpSpec`.
    sng:
        Any generator exposing ``generate`` and ``generate_pair`` (the
        classic sequential path), *or* a picklable factory callable
        ``factory(seed_sequence) -> sng`` — in which case every chunk gets
        a fresh generator seeded from a deterministic per-chunk
        ``SeedSequence`` child and chunks may fan out over worker
        processes (see module docs).
    length:
        Stream length N.
    samples / chunk:
        Monte-Carlo sample count and processing chunk size.
    jobs:
        Worker processes for the sharded (factory) path; the result is
        independent of ``jobs``.  Requires a factory: the sequential path
        threads one stateful generator and cannot be split.
    pool:
        Optional resident :class:`repro.serve.pool.WorkerPool` for the
        sharded path (see :func:`sng_mse`).
    """
    if callable(sng) and not hasattr(sng, "generate"):
        return _op_mse_sharded(op, sng, length, samples, seed, chunk,
                               jobs, pool)
    if jobs != 1 or pool is not None:
        raise ValueError("op_mse(jobs=N / pool=...) requires an sng "
                         "*factory* (callable(seed_sequence) -> sng); a "
                         "shared sng object cannot be sharded "
                         "deterministically")
    spec = OP_SPECS[op] if isinstance(op, str) else op
    gen = np.random.default_rng(seed)
    total = 0.0
    done = 0
    while done < samples:
        n = min(chunk, samples - done)
        total += _op_chunk_sq_err(spec, sng, gen, n, length)
        done += n
    return total / samples * 100.0
