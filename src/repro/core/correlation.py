"""Stochastic cross-correlation (SCC) and correlation manipulation.

SC operations are only correct at a specific input correlation: AND-based
multiplication needs *uncorrelated* streams, while XOR-based subtraction,
CORDIV division, AND-minimum and OR-maximum need *maximally correlated*
(SCC = +1) streams.  The SCC metric of Alaghi & Hayes quantifies where a pair
of streams sits on that axis:

* ``SCC = +1`` — overlap is maximal (``P(x=1, y=1) = min(px, py)``);
* ``SCC =  0`` — streams are independent;
* ``SCC = -1`` — overlap is minimal (``max(px + py - 1, 0)``).

This module implements the metric (vectorised over stream batches) plus the
standard correlation-manipulation tools: rotation-based decorrelation and
regeneration-based correlation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .bitstream import Bitstream

__all__ = ["scc", "overlap_probability", "decorrelate", "correlation_matrix"]


def overlap_probability(x: Bitstream, y: Bitstream) -> np.ndarray:
    """Empirical ``P(x=1 AND y=1)`` per stream pair."""
    if x.length != y.length:
        raise ValueError("stream lengths differ")
    # Backend-routed AND + popcount: under the packed backend this runs
    # on uint64 words instead of unpacked bytes.
    return (x & y).value()


def scc(x: Bitstream, y: Bitstream) -> np.ndarray:
    """Stochastic cross-correlation of two stream batches.

    Returns values in ``[-1, +1]`` (0 where either stream is constant, by
    convention, since correlation is undefined there).
    """
    if x.length != y.length:
        raise ValueError("stream lengths differ")
    px = x.value()
    py = y.value()
    p11 = overlap_probability(x, y)
    delta = p11 - px * py

    pos_norm = np.minimum(px, py) - px * py
    neg_norm = px * py - np.maximum(px + py - 1.0, 0.0)

    out = np.zeros(np.broadcast(px, py).shape, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        pos = delta > 0
        out = np.where(pos & (pos_norm > 0), delta / np.where(pos_norm > 0, pos_norm, 1), out)
        neg = delta < 0
        out = np.where(neg & (neg_norm > 0), delta / np.where(neg_norm > 0, neg_norm, 1), out)
    return np.clip(out, -1.0, 1.0)


def decorrelate(x: Bitstream, shift: Union[int, None] = None) -> Bitstream:
    """Break correlation with other streams by circular rotation.

    Rotation preserves the encoded value exactly (the multiset of bits is
    unchanged) while destroying bitwise alignment; a shift of about half the
    stream length is the conventional choice.
    """
    if shift is None:
        shift = max(1, x.length // 2 + 1)
    return x.roll(shift)


def correlation_matrix(streams: Bitstream) -> np.ndarray:
    """Pairwise SCC matrix for a batch of streams.

    Parameters
    ----------
    streams:
        A ``Bitstream`` whose batch is 1-D (shape ``(k, N)``).

    Returns
    -------
    ``(k, k)`` symmetric matrix of SCC values with unit diagonal (where
    defined).
    """
    if streams.bits.ndim != 2:
        raise ValueError("expected a flat batch of streams (k, N)")
    k = streams.bits.shape[0]
    out = np.eye(k, dtype=np.float64)
    for i in range(k):
        xi = Bitstream(streams.bits[i][None, :])
        rest = Bitstream(streams.bits[i:])
        row = scc(Bitstream(np.broadcast_to(xi.bits, rest.bits.shape).copy()), rest)
        out[i, i:] = row
        out[i:, i] = row
    return out
