"""Stochastic arithmetic operations (Fig. 2 of the paper).

Every basic arithmetic operation is a bitwise logic operation on bit-streams:

====================  =====================  =======================  ==========
Operation             Logic                  Result (probabilities)   Inputs
====================  =====================  =======================  ==========
Multiplication        AND                    ``x * y``                uncorrelated
Scaled addition       2-to-1 MUX             ``(x + y) / 2``          uncorr., s=0.5
Scaled addition (CIM) 3-input MAJ            ``(x + y) / 2``          uncorr., r=0.5
Approximate addition  OR                     ``~ x + y`` (x,y<=0.5)   uncorrelated
Absolute subtraction  XOR                    ``|x - y|``              correlated
Division              CORDIV (MUX + DFF)     ``x / y`` (x<=y)         correlated
Division              JK flip-flop           ``x / (x + y)``          uncorrelated
Minimum               AND                    ``min(x, y)``            correlated
Maximum               OR                     ``max(x, y)``            correlated
====================  =====================  =======================  ==========

The MAJ-based scaled addition is the paper's CIM-friendly replacement for the
MUX: scouting logic computes a 3-input majority in a single sensing cycle by
reusing the 2-input AND reference current, whereas a MUX needs per-bit
selection.  Both are implemented so the substitution can be ablated.

All functions are pure and vectorised; they operate on
:class:`~repro.core.bitstream.Bitstream` batches of identical length.
"""

from __future__ import annotations


import numpy as np

from .bitstream import Bitstream

__all__ = [
    "mul_and",
    "mul_xnor",
    "scaled_add_mux",
    "scaled_add_maj",
    "mux2",
    "mux4",
    "add_or",
    "sub_xor",
    "min_and",
    "max_or",
    "div_cordiv",
    "div_jk",
    "not_stream",
]


def _check_same_length(*streams: Bitstream) -> int:
    lengths = {s.length for s in streams}
    if len(lengths) != 1:
        raise ValueError(f"stream lengths differ: {sorted(lengths)}")
    return lengths.pop()


def mul_and(x: Bitstream, y: Bitstream) -> Bitstream:
    """Unipolar multiplication: bitwise AND of *uncorrelated* streams."""
    _check_same_length(x, y)
    return x & y


def mul_xnor(x: Bitstream, y: Bitstream) -> Bitstream:
    """Bipolar multiplication: bitwise XNOR of *uncorrelated* streams.

    With bipolar encoding (``value = 2 P(1) - 1``) the XNOR of independent
    streams multiplies the encoded values: ``P(out) = pq + (1-p)(1-q)``
    gives ``2 P(out) - 1 = (2p - 1)(2q - 1)``.  Scouting logic senses XNOR
    in the same enhanced two-reference cycle as XOR.
    """
    _check_same_length(x, y)
    return ~(x ^ y)


def not_stream(x: Bitstream) -> Bitstream:
    """Complement: NOT computes ``1 - x`` in the unipolar domain.

    In the bipolar domain the same gate negates the value.
    """
    return ~x


def mux2(sel: Bitstream, a: Bitstream, b: Bitstream) -> Bitstream:
    """2-to-1 multiplexer: bit-wise ``b if sel else a``.

    With ``P(sel) = s`` and independent inputs the output probability is
    ``(1 - s) * a + s * b`` — the general convex combination.
    """
    _check_same_length(sel, a, b)
    return Bitstream.mux(sel, a, b)


def scaled_add_mux(x: Bitstream, y: Bitstream, select: Bitstream) -> Bitstream:
    """Scaled addition ``(x + y) / 2`` via a MUX with a 0.5 select stream."""
    return mux2(select, x, y)


def scaled_add_maj(x: Bitstream, y: Bitstream, r: Bitstream) -> Bitstream:
    """Scaled addition via a 3-input majority gate (the paper's CIM variant).

    ``MAJ(x, y, r) = xy + xr + yr - 2xyr`` bit-wise; with an independent
    ``P(r) = 0.5`` stream the expectation is exactly ``(x + y) / 2``, matching
    the MUX while being computable in one scouting-logic sensing cycle.
    """
    _check_same_length(x, y, r)
    return Bitstream.maj(x, y, r)


def mux4(s0: Bitstream, s1: Bitstream, i00: Bitstream, i01: Bitstream,
         i10: Bitstream, i11: Bitstream) -> Bitstream:
    """4-to-1 multiplexer used by bilinear interpolation (Fig. 3b).

    ``s0``/``s1`` select between the four inputs; with independent selects of
    probabilities ``p0``/``p1`` the output is the bilinear blend
    ``(1-p0)(1-p1) i00 + (1-p0) p1 i01 + p0 (1-p1) i10 + p0 p1 i11``.
    """
    lo = mux2(s1, i00, i01)
    hi = mux2(s1, i10, i11)
    return mux2(s0, lo, hi)


def add_or(x: Bitstream, y: Bitstream) -> Bitstream:
    """Approximate (non-scaled) addition via OR.

    Exact result is ``x + y - x*y``; for operands in ``[0, 0.5]`` the product
    term is small and the output approximates ``x + y`` without exceeding 1.
    """
    _check_same_length(x, y)
    return x | y


def sub_xor(x: Bitstream, y: Bitstream) -> Bitstream:
    """Absolute subtraction ``|x - y|`` via XOR of *correlated* streams.

    With SCC = +1 the streams overlap maximally, so the XOR fires exactly on
    the ``|px - py|`` probability mass where they differ.
    """
    _check_same_length(x, y)
    return x ^ y


def min_and(x: Bitstream, y: Bitstream) -> Bitstream:
    """Minimum via AND of *correlated* streams (overlap = min(px, py))."""
    _check_same_length(x, y)
    return x & y


def max_or(x: Bitstream, y: Bitstream) -> Bitstream:
    """Maximum via OR of *correlated* streams."""
    _check_same_length(x, y)
    return x | y


# ----------------------------------------------------------------------
# Sequential dividers: word-level state propagation
# ----------------------------------------------------------------------
# The sequential SC ops (CORDIV, the JK divider) are 1-bit finite-state
# machines clocked once per stream position.  Instead of a python loop over
# N bit positions, both run a *byte-level scan*: every (state, x_byte,
# y_byte) combination is precomputed into transition tables, so the scan
# advances 8 stream bits per step with one vectorised table gather over the
# batch.  The packbits byte layout (MSB-first inside each byte) matches the
# stream order under both backends, so the same scan serves `unpacked` and
# `packed` payloads via `Bitstream.packed()` / `Bitstream.from_packed`.

_BYTE_BITS = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)


class _ByteScanner:
    """Transition tables for a 1-bit FSM advanced one byte at a time.

    ``step(state, x_bit, y_bit) -> (out_bit, next_state)`` defines the
    per-cycle recurrence; the constructor unrolls it over all ``2 * 256 *
    256`` (state, x_byte, y_byte) combinations into an output-byte table and
    a next-state table.
    """

    def __init__(self, step) -> None:
        out = np.zeros((2, 256, 256), dtype=np.uint8)
        nxt = np.zeros((2, 256, 256), dtype=np.uint8)
        xb = _BYTE_BITS[:, None, :]      # (256, 1, 8)
        yb = _BYTE_BITS[None, :, :]      # (1, 256, 8)
        for s in (0, 1):
            state = np.full((256, 256), s, dtype=np.uint8)
            acc = np.zeros((256, 256), dtype=np.uint8)
            for k in range(8):
                bit, state = step(state, xb[..., k], yb[..., k])
                acc |= (bit.astype(np.uint8) << (7 - k)).astype(np.uint8)
            out[s] = acc
            nxt[s] = state
        self._out = out
        self._next = nxt

    def scan(self, x: Bitstream, y: Bitstream, init: int = 0) -> Bitstream:
        """Run the FSM over a stream pair, one table gather per byte."""
        xb = x.packed()
        yb = y.packed()
        res = np.empty_like(xb)
        state = np.full(xb.shape[:-1], init, dtype=np.uint8)
        for k in range(xb.shape[-1]):
            col = (state, xb[..., k], yb[..., k])
            res[..., k] = self._out[col]
            state = self._next[col]
        # from_packed masks the stray bits the FSM produced past N in the
        # final byte (the held state leaks into the zero padding).
        return Bitstream.from_packed(res, x.length, backend=x.backend)


def _cordiv_step(state, x_bit, y_bit):
    out = (y_bit & x_bit) | ((1 - y_bit) & state)
    return out, out


def _jk_step(state, j_bit, k_bit):
    state = (j_bit & (1 - state)) | ((1 - k_bit) & state)
    return state, state


_CORDIV_SCANNER = _ByteScanner(_cordiv_step)
_JK_SCANNER = _ByteScanner(_jk_step)


def div_cordiv(x: Bitstream, y: Bitstream) -> Bitstream:
    """CORDIV division ``x / y`` for correlated streams with ``x <= y``.

    The CORDIV circuit (Chen & Hayes, ISVLSI'16) is a 2-to-1 MUX selected by
    the divisor bit plus a D flip-flop:

    * when ``y_i = 1`` the quotient bit is ``x_i`` and the flip-flop samples
      ``x_i``;
    * when ``y_i = 0`` the quotient bit replays the stored value.

    With maximally correlated inputs, ``P(x=1 | y=1) = px / py``, so the
    quotient stream converges to ``x / y``.  This is inherently sequential
    (O(N) cycles in hardware) — the in-memory engine maps the flip-flop onto
    the peripheral write-driver latches (Sec. III-B) to avoid intermediate
    writes; see :mod:`repro.imsc.engine` for the cost model.  In software
    the recurrence executes as a byte-level table scan (8 stream bits per
    step) under both backends.
    """
    _check_same_length(x, y)
    return _CORDIV_SCANNER.scan(x, y, init=0)


def div_jk(j: Bitstream, k: Bitstream,
           init: int = 0) -> Bitstream:
    """JK-flip-flop divider: output probability ``j / (j + k)``.

    The classic Gaines stochastic divider: a JK flip-flop toggles towards 1
    on ``J`` pulses and towards 0 on ``K`` pulses, settling at
    ``P(Q) = pj / (pj + pk)`` for independent inputs.  The paper cites this
    flip-flop structure as directly implementable in the ReRAM peripheral
    latches.

    Truth table per cycle: ``Q' = J·~Q + ~K·Q`` (J=K=1 toggles); like
    :func:`div_cordiv`, the recurrence runs as a byte-level table scan.
    """
    _check_same_length(j, k)
    if init not in (0, 1):
        raise ValueError("init must be 0 or 1")
    return _JK_SCANNER.scan(j, k, init=init)
